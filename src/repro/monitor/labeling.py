"""Ground-truth labels for detector and localizer training.

Labels are derived purely from the attack scenario geometry and XY routing —
not from the simulator — so they are exact:

* the **victim mask** marks the target victim and every Routing-Path Victim
  (RPV), i.e. every router an attack flow traverses;
* the **directional masks** mark, for each cardinal direction, the routers
  whose input port of that direction carries attack traffic.  These are the
  per-frame segmentation targets of the localizer.
"""

from __future__ import annotations

import numpy as np

from repro.monitor.features import frame_shape
from repro.noc.routing import xy_route_path
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario

__all__ = ["victim_mask", "attack_port_loads", "attack_direction_masks"]


def victim_mask(topology: MeshTopology, scenario: AttackScenario) -> np.ndarray:
    """Full-mesh binary mask (rows x columns) of all victims of a scenario."""
    mask = np.zeros((topology.rows, topology.columns), dtype=np.float64)
    for node in scenario.ground_truth_victims(topology):
        x, y = topology.coordinates(node)
        mask[y, x] = 1.0
    return mask


def _entry_direction(topology: MeshTopology, from_node: int, to_node: int) -> Direction:
    """Input-port direction at ``to_node`` for traffic arriving from ``from_node``."""
    fx, fy = topology.coordinates(from_node)
    tx, ty = topology.coordinates(to_node)
    if fx == tx + 1 and fy == ty:
        return Direction.EAST
    if fx == tx - 1 and fy == ty:
        return Direction.WEST
    if fy == ty + 1 and fx == tx:
        return Direction.NORTH
    if fy == ty - 1 and fx == tx:
        return Direction.SOUTH
    raise ValueError(f"nodes {from_node} and {to_node} are not adjacent")


def attack_port_loads(
    topology: MeshTopology, scenario: AttackScenario
) -> dict[Direction, np.ndarray]:
    """Number of attack flows crossing each directional input port.

    Returns one full-mesh (rows x columns) integer matrix per cardinal
    direction; entry ``[y, x]`` counts how many attacker->victim flows enter
    router ``(x, y)`` through that direction's input port.
    """
    loads = {
        direction: np.zeros((topology.rows, topology.columns), dtype=np.float64)
        for direction in Direction.cardinal()
    }
    for attacker in scenario.attackers:
        path = xy_route_path(topology, attacker, scenario.victim)
        for upstream, downstream in zip(path[:-1], path[1:]):
            direction = _entry_direction(topology, upstream, downstream)
            x, y = topology.coordinates(downstream)
            loads[direction][y, x] += 1.0
    return loads


def attack_direction_masks(
    topology: MeshTopology, scenario: AttackScenario
) -> dict[Direction, np.ndarray]:
    """Per-direction segmentation ground truth in directional-frame geometry.

    For each cardinal direction the mask has the natural frame shape of
    :func:`repro.monitor.features.frame_shape`; a pixel is 1 when the
    corresponding router's input port of that direction carries at least one
    attack flow.
    """
    loads = attack_port_loads(topology, scenario)
    masks: dict[Direction, np.ndarray] = {}
    rows, cols = topology.rows, topology.columns
    for direction in Direction.cardinal():
        full = (loads[direction] > 0).astype(np.float64)
        if direction is Direction.EAST:
            masks[direction] = full[:, : cols - 1]
        elif direction is Direction.WEST:
            masks[direction] = full[:, 1:]
        elif direction is Direction.NORTH:
            masks[direction] = full[: rows - 1, :]
        else:  # SOUTH
            masks[direction] = full[1:, :]
        if masks[direction].shape != frame_shape(topology, direction):
            raise AssertionError("directional mask shape mismatch")  # pragma: no cover
    return masks
