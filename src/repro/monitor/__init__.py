"""Runtime monitoring substrate: feature frames, sampling and datasets.

DL2Fence visualises NoC runtime state as image-like frames (Section 3 of the
paper).  This package extracts those frames from the simulator:

* :mod:`repro.monitor.features` — raw VCO / BOC extraction per input port;
* :mod:`repro.monitor.frames` — directional R x (R-1) feature frames, frame
  sets, binarization and zero-padding to the full mesh geometry;
* :mod:`repro.monitor.sampler` — the periodic global performance monitor that
  attaches to a :class:`repro.noc.NoCSimulator`;
* :mod:`repro.monitor.labeling` — ground-truth masks for detection and
  segmentation training;
* :mod:`repro.monitor.dataset` — end-to-end dataset generation across
  benchmarks and attack scenarios.
"""

from repro.monitor.features import FeatureKind, extract_feature_frame, normalize_frame
from repro.monitor.frames import (
    DirectionalFrame,
    FrameSample,
    FrameSet,
    pad_to_full_mesh,
)
from repro.monitor.labeling import (
    attack_direction_masks,
    attack_port_loads,
    victim_mask,
)
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.monitor.dataset import (
    DatasetBuilder,
    DatasetConfig,
    DetectionDataset,
    LocalizationDataset,
    ScenarioRun,
)

__all__ = [
    "DatasetBuilder",
    "DatasetConfig",
    "DetectionDataset",
    "DirectionalFrame",
    "FeatureKind",
    "FrameSample",
    "FrameSet",
    "GlobalPerformanceMonitor",
    "LocalizationDataset",
    "MonitorConfig",
    "ScenarioRun",
    "attack_direction_masks",
    "attack_port_loads",
    "extract_feature_frame",
    "normalize_frame",
    "pad_to_full_mesh",
    "victim_mask",
]
