"""Directional feature frames, frame sets and full-mesh padding.

A :class:`DirectionalFrame` is one R x (R-1) (or (R-1) x R) matrix of VCO or
BOC values for a single input-port direction; a :class:`FrameSample` bundles
the four directional frames of both features taken at the same sampling
instant, which is the unit the DL2Fence detector consumes.  Zero-padding back
to the full mesh geometry (Algorithm 1, line 3) lives here because both the
ground-truth labelling and the Multi-Frame Fusion stage need it.

How the ``values`` arrays are produced depends on the simulator backend:
the object mesh walks every router's input ports, while the default SoA
backend slices the frames straight out of its flat per-port counter arrays
(:meth:`repro.noc.soa.SoAMeshNetwork.feature_frames`) with no router walk —
both yield bit-identical matrices, so everything downstream of this module
is backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.monitor.features import FeatureKind, frame_shape, normalize_frame
from repro.noc.topology import Direction, MeshTopology

__all__ = [
    "DirectionalFrame",
    "FrameSet",
    "FrameSample",
    "pad_to_full_mesh",
    "to_canonical",
    "from_canonical",
]


def to_canonical(values: np.ndarray, direction: Direction) -> np.ndarray:
    """Rotate a directional frame into the canonical R x (R-1) orientation.

    East/West frames are already canonical; North/South frames are transposed
    so a single CNN can process frames from any direction.  On a square mesh
    all four canonical frames share the same shape.
    """
    values = np.asarray(values, dtype=np.float64)
    if direction in (Direction.NORTH, Direction.SOUTH):
        return values.T.copy()
    return values.copy()


def from_canonical(values: np.ndarray, direction: Direction) -> np.ndarray:
    """Inverse of :func:`to_canonical`: restore the natural orientation."""
    values = np.asarray(values, dtype=np.float64)
    if direction in (Direction.NORTH, Direction.SOUTH):
        return values.T.copy()
    return values.copy()


def pad_to_full_mesh(
    frame: np.ndarray, topology: MeshTopology, direction: Direction
) -> np.ndarray:
    """Zero-pad a directional frame back to the full ``rows x columns`` mesh.

    The padding side follows Algorithm 1's ``Zero_Pad_R/L/T/B``: the missing
    column/row corresponds to the mesh edge whose routers lack that input
    port (e.g. the east-most column has no EAST input port, so the EAST frame
    is padded with a zero column on the right/east side).
    """
    frame = np.asarray(frame, dtype=np.float64)
    expected = frame_shape(topology, direction)
    if frame.shape != expected:
        raise ValueError(
            f"{direction.value} frame has shape {frame.shape}, expected {expected}"
        )
    rows, cols = topology.rows, topology.columns
    full = np.zeros((rows, cols), dtype=np.float64)
    if direction is Direction.EAST:
        full[:, : cols - 1] = frame
    elif direction is Direction.WEST:
        full[:, 1:] = frame
    elif direction is Direction.NORTH:
        full[: rows - 1, :] = frame
    elif direction is Direction.SOUTH:
        full[1:, :] = frame
    else:  # pragma: no cover - guarded by frame_shape
        raise ValueError("cannot pad a local-port frame")
    return full


@dataclass
class DirectionalFrame:
    """A single feature frame of one direction at one sampling instant."""

    direction: Direction
    kind: FeatureKind
    values: np.ndarray
    cycle: int = 0

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("frame values must be a 2-D matrix")

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape  # type: ignore[return-value]

    def normalized(self, method: str = "max") -> "DirectionalFrame":
        """Return a copy with normalised values (BOC requires this)."""
        return DirectionalFrame(
            direction=self.direction,
            kind=self.kind,
            values=normalize_frame(self.values, method=method),
            cycle=self.cycle,
        )

    def to_full_mesh(self, topology: MeshTopology) -> np.ndarray:
        """Zero-pad the frame to the full mesh geometry."""
        return pad_to_full_mesh(self.values, topology, self.direction)

    def max_value(self) -> float:
        return float(self.values.max()) if self.values.size else 0.0

    def mean_value(self) -> float:
        return float(self.values.mean()) if self.values.size else 0.0


@dataclass
class FrameSet:
    """The four directional frames of one feature at one sampling instant."""

    kind: FeatureKind
    frames: dict[Direction, DirectionalFrame]
    cycle: int = 0

    def __post_init__(self) -> None:
        missing = [d for d in Direction.cardinal() if d not in self.frames]
        if missing:
            raise ValueError(f"frame set missing directions: {missing}")

    def __getitem__(self, direction: Direction) -> DirectionalFrame:
        return self.frames[direction]

    def directions(self) -> tuple[Direction, ...]:
        return Direction.cardinal()

    def as_detector_input(self, normalize: str = "none") -> np.ndarray:
        """Stack the four frames into the detector's (H, W, 4) input tensor.

        The paper's detector consumes the E, N, W, S frames together.  North
        and South frames are transposed so all four channels share the
        R x (R-1) geometry of the East/West frames (valid on square meshes).
        """
        channels = []
        target_shape = self.frames[Direction.EAST].shape
        for direction in Direction.cardinal():
            values = self.frames[direction].values
            if direction in (Direction.NORTH, Direction.SOUTH):
                values = values.T
            if values.shape != target_shape:
                raise ValueError(
                    "directional frames disagree on shape; detector input "
                    "requires a square mesh"
                )
            if normalize != "none":
                values = normalize_frame(values, method=normalize)
            channels.append(values)
        return np.stack(channels, axis=-1)

    def max_value(self) -> float:
        return max(frame.max_value() for frame in self.frames.values())


@dataclass
class FrameSample:
    """Everything the monitor captured at one sampling instant."""

    cycle: int
    vco: FrameSet
    boc: FrameSet
    attack_active: bool = False
    metadata: dict = field(default_factory=dict)

    def feature(self, kind: FeatureKind) -> FrameSet:
        """Select the VCO or BOC frame set."""
        return self.vco if kind is FeatureKind.VCO else self.boc
