"""Dataset generation across benchmarks and attack scenarios.

The paper collects its training/evaluation data by simulating 18 attack
scenarios at FIR 0.8 over 6 synthetic + 3 PARSEC benchmarks and extracting
directional VCO/BOC feature frames with the global performance monitor.  The
:class:`DatasetBuilder` reproduces that flow end to end:

1. for every benchmark, run a benign simulation and one or more attacked
   simulations (1- and 2-attacker scenarios);
2. sample frames periodically with :class:`GlobalPerformanceMonitor`;
3. assemble a frame-level **detection dataset** (four-direction stacks with a
   binary attack label) and a per-direction **localization dataset**
   (directional frames with segmentation ground-truth masks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.monitor.features import FeatureKind, normalize_frame
from repro.monitor.frames import FrameSample, to_canonical
from repro.monitor.labeling import attack_direction_masks
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.parsec import PARSEC_WORKLOADS, make_parsec_workload
from repro.traffic.scenario import AttackScenario, ScenarioGenerator, benchmark_names
from repro.traffic.synthetic import SYNTHETIC_PATTERNS, make_synthetic_traffic

__all__ = [
    "DatasetConfig",
    "ScenarioRun",
    "DetectionDataset",
    "LocalizationDataset",
    "DatasetBuilder",
]


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of the dataset-generation pipeline.

    The defaults are scaled down from the paper's 16x16 / 1000-cycle setup so
    dataset generation completes quickly inside tests; the benchmark harness
    raises them via its own configuration.
    """

    rows: int = 8
    benign_injection_rate: float = 0.02
    fir: float = 0.8
    sample_period: int = 192
    samples_per_run: int = 6
    warmup_cycles: int = 64
    packet_size_flits: int = 4
    num_vcs: int = 4
    vc_depth: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 3:
            raise ValueError("rows must be >= 3 for meaningful frames")
        if self.samples_per_run < 1:
            raise ValueError("samples_per_run must be >= 1")
        if not 0.0 <= self.fir <= 1.0:
            raise ValueError("fir must be in [0, 1]")

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            rows=self.rows,
            num_vcs=self.num_vcs,
            vc_depth=self.vc_depth,
            warmup_cycles=self.warmup_cycles,
            seed=self.seed,
        )

    def topology(self) -> MeshTopology:
        return MeshTopology(rows=self.rows)

    @property
    def run_cycles(self) -> int:
        """Simulated cycles per run: warmup plus all sampling windows."""
        return self.warmup_cycles + self.sample_period * self.samples_per_run + 1


@dataclass
class ScenarioRun:
    """The monitor output of one simulated run (benign or attacked)."""

    benchmark: str
    scenario: AttackScenario | None
    samples: list[FrameSample]
    topology: MeshTopology

    @property
    def is_attack(self) -> bool:
        return self.scenario is not None

    @property
    def num_samples(self) -> int:
        return len(self.samples)


@dataclass
class DetectionDataset:
    """Frame-level classification dataset: (N, H, W, 4) inputs, (N, 1) labels."""

    inputs: np.ndarray
    labels: np.ndarray
    benchmarks: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.inputs.shape[0] != self.labels.shape[0]:
            raise ValueError("inputs and labels must align")

    @property
    def num_samples(self) -> int:
        return int(self.inputs.shape[0])

    @property
    def positive_fraction(self) -> float:
        """Fraction of samples captured during an active attack."""
        if self.labels.size == 0:
            return 0.0
        return float(self.labels.mean())

    def subset(self, indices: np.ndarray) -> "DetectionDataset":
        """Select a subset of samples by index."""
        benchmarks = [self.benchmarks[i] for i in indices] if self.benchmarks else []
        return DetectionDataset(self.inputs[indices], self.labels[indices], benchmarks)


@dataclass
class LocalizationDataset:
    """Per-direction segmentation dataset: (M, H, W, 1) inputs and masks."""

    inputs: np.ndarray
    masks: np.ndarray
    directions: list[Direction] = field(default_factory=list)
    benchmarks: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.inputs.shape[0] != self.masks.shape[0]:
            raise ValueError("inputs and masks must align")

    @property
    def num_samples(self) -> int:
        return int(self.inputs.shape[0])

    def subset(self, indices: np.ndarray) -> "LocalizationDataset":
        """Select a subset of samples by index."""
        directions = [self.directions[i] for i in indices] if self.directions else []
        benchmarks = [self.benchmarks[i] for i in indices] if self.benchmarks else []
        return LocalizationDataset(
            self.inputs[indices], self.masks[indices], directions, benchmarks
        )


class DatasetBuilder:
    """Runs simulations and assembles DL2Fence training/evaluation datasets."""

    def __init__(self, config: DatasetConfig | None = None) -> None:
        self.config = config or DatasetConfig()
        self.topology = self.config.topology()

    # -- workloads -------------------------------------------------------------
    def make_workload(self, benchmark: str, seed: int | None = None):
        """Instantiate the benign traffic source for a benchmark name."""
        seed = self.config.seed if seed is None else seed
        key = benchmark.lower()
        if key in SYNTHETIC_PATTERNS:
            return make_synthetic_traffic(
                key,
                self.topology,
                injection_rate=self.config.benign_injection_rate,
                packet_size_flits=self.config.packet_size_flits,
                seed=seed,
            )
        if key in PARSEC_WORKLOADS:
            return make_parsec_workload(
                key,
                self.topology,
                total_cycles=self.config.run_cycles,
                packet_size_flits=self.config.packet_size_flits,
                seed=seed,
            )
        raise KeyError(f"unknown benchmark {benchmark!r}")

    # -- simulation -------------------------------------------------------------
    def run_benchmark(
        self,
        benchmark: str,
        scenario: AttackScenario | None = None,
        seed: int | None = None,
    ) -> ScenarioRun:
        """Simulate one benchmark, optionally overlaid with a flooding attack."""
        seed = self.config.seed if seed is None else seed
        simulator = NoCSimulator(self.config.simulation_config())
        simulator.add_source(self.make_workload(benchmark, seed=seed))
        if scenario is not None:
            attacker = scenario.attacker_source(
                self.topology,
                seed=seed + 1,
                packet_size_flits=self.config.packet_size_flits,
            )
            simulator.add_source(attacker)
        monitor = GlobalPerformanceMonitor(
            MonitorConfig(sample_period=self.config.sample_period)
        ).attach(simulator)
        simulator.run(self.config.run_cycles)
        samples = monitor.samples[: self.config.samples_per_run]
        return ScenarioRun(
            benchmark=benchmark,
            scenario=scenario,
            samples=samples,
            topology=self.topology,
        )

    def build_runs(
        self,
        benchmarks: list[str] | None = None,
        scenarios_per_benchmark: int = 1,
        attacker_counts: tuple[int, ...] = (1, 2),
        include_benign: bool = True,
        seed: int | None = None,
    ) -> list[ScenarioRun]:
        """Simulate benign and attacked runs for every benchmark."""
        seed = self.config.seed if seed is None else seed
        if benchmarks is None:
            benchmarks = benchmark_names()
        generator = ScenarioGenerator(self.topology, seed=seed)
        runs: list[ScenarioRun] = []
        for b_index, benchmark in enumerate(benchmarks):
            run_seed = seed + 101 * (b_index + 1)
            if include_benign:
                runs.append(self.run_benchmark(benchmark, scenario=None, seed=run_seed))
            for s_index in range(scenarios_per_benchmark):
                count = attacker_counts[s_index % len(attacker_counts)]
                scenario = generator.random_scenario(
                    num_attackers=count, fir=self.config.fir, benchmark=benchmark
                )
                runs.append(
                    self.run_benchmark(
                        benchmark, scenario=scenario, seed=run_seed + s_index + 1
                    )
                )
        return runs

    # -- dataset assembly ---------------------------------------------------------
    def detection_dataset(
        self,
        runs: list[ScenarioRun],
        feature: FeatureKind = FeatureKind.VCO,
        normalize: str | None = None,
    ) -> DetectionDataset:
        """Stack four-direction frames into the detector's training data.

        ``normalize`` defaults to ``"none"`` for VCO (the paper feeds raw VCO
        to the detector) and ``"max"`` for BOC.
        """
        if normalize is None:
            normalize = "none" if feature is FeatureKind.VCO else "max"
        inputs = []
        labels = []
        benchmarks = []
        for run in runs:
            for sample in run.samples:
                frame_set = sample.feature(feature)
                inputs.append(frame_set.as_detector_input(normalize=normalize))
                labels.append([1.0 if sample.attack_active else 0.0])
                benchmarks.append(run.benchmark)
        if not inputs:
            raise ValueError("no samples available to build a detection dataset")
        return DetectionDataset(
            inputs=np.stack(inputs, axis=0),
            labels=np.asarray(labels, dtype=np.float64),
            benchmarks=benchmarks,
        )

    def localization_dataset(
        self,
        runs: list[ScenarioRun],
        feature: FeatureKind = FeatureKind.BOC,
        normalize: str | None = None,
        include_normal_fraction: float = 0.25,
        seed: int | None = None,
    ) -> LocalizationDataset:
        """Per-direction segmentation dataset from attacked runs.

        Each sample is one directional frame (canonical orientation, single
        channel) paired with the binary mask of routers whose input port of
        that direction carries attack traffic.  Directions that carry no
        attack traffic are included with all-zero masks at a configurable
        fraction so the model also learns to stay silent on clean frames.
        """
        if normalize is None:
            normalize = "max" if feature is FeatureKind.BOC else "none"
        if not 0.0 <= include_normal_fraction <= 1.0:
            raise ValueError("include_normal_fraction must be in [0, 1]")
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        inputs = []
        masks = []
        directions = []
        benchmarks = []
        for run in runs:
            if run.scenario is None:
                continue
            truth = attack_direction_masks(run.topology, run.scenario)
            for sample in run.samples:
                if not sample.attack_active:
                    continue
                frame_set = sample.feature(feature)
                for direction in Direction.cardinal():
                    mask = truth[direction]
                    is_abnormal = bool(mask.any())
                    if not is_abnormal and rng.random() > include_normal_fraction:
                        continue
                    values = frame_set[direction].values
                    if normalize != "none":
                        values = normalize_frame(values, method=normalize)
                    inputs.append(to_canonical(values, direction)[..., None])
                    masks.append(to_canonical(mask, direction)[..., None])
                    directions.append(direction)
                    benchmarks.append(run.benchmark)
        if not inputs:
            raise ValueError("no attacked samples available for localization dataset")
        return LocalizationDataset(
            inputs=np.stack(inputs, axis=0),
            masks=np.stack(masks, axis=0),
            directions=directions,
            benchmarks=benchmarks,
        )
