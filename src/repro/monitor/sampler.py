"""Global performance monitor: periodic VCO/BOC frame sampling.

The paper designs "a global performance monitor to collect the dataset",
sampling features every 1000 cycles for synthetic traffic and every 100000
cycles for PARSEC.  This module provides that monitor as a simulator observer:
every ``sample_period`` cycles (after warmup) it captures one
:class:`~repro.monitor.frames.FrameSample` containing the four VCO frames and
the four BOC frames, then resets the BOC accumulators so the next window
starts fresh.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.monitor.features import FeatureKind, extract_feature_frames
from repro.monitor.frames import DirectionalFrame, FrameSample, FrameSet
from repro.noc.simulator import NoCSimulator
from repro.noc.topology import Direction
from repro.obs.bus import BUS

__all__ = ["MonitorConfig", "GlobalPerformanceMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """Sampling configuration of the global performance monitor."""

    sample_period: int = 256
    reset_boc_after_sample: bool = True

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")


class GlobalPerformanceMonitor:
    """Collects feature frames from a simulator at a fixed period."""

    def __init__(self, config: MonitorConfig | None = None) -> None:
        self.config = config or MonitorConfig()
        self.samples: list[FrameSample] = []
        self._attackers: list = []
        #: (callback, critical) pairs; critical listeners fail fast, the
        #: rest are isolated so one bad consumer cannot abort capture.
        self._listeners: list[
            tuple[Callable[[FrameSample, NoCSimulator], None], bool]
        ] = []
        self._window_start: int | None = None
        # Optional monitor-plane fault injection (repro.faults): transforms
        # the captured stream between capture and store/dispatch.
        self.fault_plane = None

    # -- wiring ------------------------------------------------------------
    def attach(self, simulator: NoCSimulator) -> "GlobalPerformanceMonitor":
        """Register the monitor as a periodic observer of ``simulator``.

        Malicious sources are recognised by their ``is_attack_source``
        marker (both :class:`~repro.traffic.flooding.FloodingAttacker` and
        every :class:`~repro.attacks.AttackSource` of the refined-DoS
        library carry it), so the ground-truth ``attack_active`` flag works
        for any attack shape without the monitor importing attack classes.
        """
        simulator.add_observer(self.config.sample_period, self.sample)
        self._attackers = [
            source
            for source in simulator.sources
            if getattr(source, "is_attack_source", False)
        ]
        return self

    def watch_attacker(self, attacker) -> None:
        """Track an attacker (any ``is_active_at`` source) for ground truth."""
        self._attackers.append(attacker)

    def add_listener(
        self,
        callback: Callable[[FrameSample, NoCSimulator], None],
        critical: bool = False,
    ) -> None:
        """Stream every new sample to ``callback(sample, simulator)``.

        This is the hand-off point for online consumers: a runtime defense
        (:class:`repro.defense.DL2FenceGuard`) subscribes here so each
        sampling window is pushed through detection and mitigation as soon as
        it is captured, instead of being post-processed from ``samples``.

        ``critical`` controls the failure contract.  A critical listener
        (the guard) propagates its exceptions — a defense silently detached
        from its stream is worse than a crash.  Non-critical listeners
        (trace sinks, dashboards, ad-hoc probes) are *isolated*: a raising
        one is reported as a :class:`RuntimeWarning` and dispatch continues,
        so a bad auxiliary consumer cannot abort window capture mid-episode.
        """
        self._listeners.append((callback, critical))

    def set_fault_plane(self, plane) -> "GlobalPerformanceMonitor":
        """Install a monitor-plane fault chain (``None`` restores fault-free).

        ``plane`` is a :class:`repro.faults.base.FaultPlane` (duck-typed: any
        object with ``process(sample) -> list[FrameSample]``).  Faults apply
        *after* frame capture and ground-truth labelling and *before* the
        sample is stored or dispatched to listeners, so both simulator
        backends — which produce bit-identical pristine frames — feed
        consumers bit-identical degraded streams.
        """
        self.fault_plane = plane
        return self

    # -- sampling ------------------------------------------------------------
    def sample(self, simulator: NoCSimulator) -> FrameSample:
        """Capture one frame sample right now; store/dispatch what survives.

        Returns the pristine capture.  With a fault plane installed,
        ``samples`` and the listener stream instead receive whatever the
        plane delivers for this window — possibly nothing (dropped), a
        transformed copy, or several buffered windows released at once.
        """
        network = simulator.network
        cycle = simulator.cycle
        vco_values = extract_feature_frames(network, FeatureKind.VCO)
        boc_values = extract_feature_frames(network, FeatureKind.BOC)
        vco_frames = {}
        boc_frames = {}
        for direction in Direction.cardinal():
            vco_frames[direction] = DirectionalFrame(
                direction=direction,
                kind=FeatureKind.VCO,
                values=vco_values[direction],
                cycle=cycle,
            )
            boc_frames[direction] = DirectionalFrame(
                direction=direction,
                kind=FeatureKind.BOC,
                values=boc_values[direction],
                cycle=cycle,
            )
        # Window-level ground truth: the flag covers every cycle since the
        # previous sample, not just the sampling instant — a pulsed attack
        # bursting between two instants still marks its windows active.
        # Sources without the interval API fall back to the instant probe.
        window_start = (
            self._window_start
            if self._window_start is not None
            else max(0, cycle - self.config.sample_period)
        )
        attack_active = any(
            attacker.is_active_in(window_start, cycle + 1)
            if hasattr(attacker, "is_active_in")
            else attacker.is_active_at(cycle)
            for attacker in self._attackers
        )
        self._window_start = cycle + 1
        sample = FrameSample(
            cycle=cycle,
            vco=FrameSet(kind=FeatureKind.VCO, frames=vco_frames, cycle=cycle),
            boc=FrameSet(kind=FeatureKind.BOC, frames=boc_frames, cycle=cycle),
            attack_active=attack_active,
        )
        # Data-plane fault annotation: with links/routers dead, declare the
        # dead routers unobservable (their monitors died with them) and name
        # the detour carriers so the degraded guard can discount the
        # infrastructure-caused congestion shift.  Annotated at the
        # simulator level, so both backends emit identical metadata.
        provider = getattr(network, "route_provider", None)
        if provider is not None:
            from repro.faults.monitor import (
                DETOUR_KEY,
                LOCAL_BOC_KEY,
                UNOBSERVABLE_KEY,
            )

            if provider.detour_nodes:
                sample.metadata[DETOUR_KEY] = tuple(sorted(provider.detour_nodes))
                # Carrier/injector discrimination telemetry: per-node
                # LOCAL-port buffer operations this window.  Captured
                # before the BOC reset below, identically on every
                # backend (the counters are part of the fingerprint).
                local = getattr(network, "local_boc", None)
                if local is not None:
                    sample.metadata[LOCAL_BOC_KEY] = tuple(local())
            if provider.dead_routers:
                unobservable = set(sample.metadata.get(UNOBSERVABLE_KEY, ()))
                unobservable.update(int(node) for node in provider.dead_routers)
                sample.metadata[UNOBSERVABLE_KEY] = tuple(sorted(unobservable))
        # BOC counters reset unconditionally: the hardware window restarts
        # whether or not the *transport* of this window's report survives
        # the fault plane below.
        if self.config.reset_boc_after_sample:
            network.reset_boc_counters()
        delivered = (
            [sample] if self.fault_plane is None else self.fault_plane.process(sample)
        )
        for item in delivered:
            self.samples.append(item)
            if BUS.active:
                BUS.emit(
                    "window_captured",
                    episode=getattr(simulator, "lane_index", 0),
                    cycle=item.cycle,
                    window=len(self.samples) - 1,
                    attack_active=bool(item.attack_active),
                )
            for listener, critical in self._listeners:
                if critical:
                    listener(item, simulator)
                    continue
                try:
                    listener(item, simulator)
                except Exception as exc:
                    warnings.warn(
                        f"monitor listener {listener!r} raised "
                        f"{type(exc).__name__}: {exc}; listener isolated, "
                        "window capture continues",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        return sample

    # -- results ---------------------------------------------------------------
    def clear(self) -> None:
        """Discard all collected samples."""
        self.samples.clear()

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    def attack_samples(self) -> list[FrameSample]:
        """Samples captured while an attack was active."""
        return [s for s in self.samples if s.attack_active]

    def benign_samples(self) -> list[FrameSample]:
        """Samples captured with no active attack."""
        return [s for s in self.samples if not s.attack_active]
