"""Raw feature extraction from router input ports.

Two features are monitored, exactly as chosen in Section 4 of the paper:

* **VCO** — Virtual Channel Occupancy: an instantaneous float in [0, 1],
  the ratio of occupied VCs to total VCs of an input port.  Used for
  detection because it needs no normalization.
* **BOC** — Buffer Operation Counts: the number of buffer reads + writes an
  input port performed during the current sampling window.  An accumulating
  integer, so it is normalised before being fed to the segmentation model.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.noc.network import MeshNetwork
from repro.noc.topology import Direction, MeshTopology

__all__ = [
    "FeatureKind",
    "extract_feature_frame",
    "extract_feature_frames",
    "normalize_frame",
    "frame_shape",
]


class FeatureKind(str, Enum):
    """Which runtime feature a frame carries."""

    VCO = "vco"
    BOC = "boc"


def frame_shape(topology: MeshTopology, direction: Direction) -> tuple[int, int]:
    """Natural (rows, cols) shape of a directional feature frame.

    East/West input ports exist on ``columns - 1`` columns of routers, and
    North/South ports on ``rows - 1`` rows — hence the paper's R x (R-1)
    frames on a square mesh.
    """
    if direction in (Direction.EAST, Direction.WEST):
        return topology.rows, topology.columns - 1
    if direction in (Direction.NORTH, Direction.SOUTH):
        return topology.rows - 1, topology.columns
    raise ValueError("feature frames exist only for the four cardinal directions")


def _port_coordinates(topology: MeshTopology, direction: Direction, node: int) -> tuple[int, int]:
    """Frame (row, col) index of a node's ``direction`` input port."""
    x, y = topology.coordinates(node)
    if direction is Direction.EAST:
        return y, x
    if direction is Direction.WEST:
        return y, x - 1
    if direction is Direction.NORTH:
        return y, x
    if direction is Direction.SOUTH:
        return y - 1, x
    raise ValueError("no frame coordinates for the local port")


def extract_feature_frame(
    network: MeshNetwork, direction: Direction, kind: FeatureKind
) -> np.ndarray:
    """Extract one directional feature frame from the live network state.

    The returned array has the natural directional shape of
    :func:`frame_shape`; rows index the mesh Y coordinate and columns the X
    coordinate of the router owning the port (shifted for W/S so the frame is
    dense).  A backend exposing a ``feature_frame`` fast path (the SoA
    backend reads frames straight out of its counter arrays) bypasses the
    router walk entirely.
    """
    fast_path = getattr(network, "feature_frame", None)
    if fast_path is not None:
        return fast_path(direction, kind)
    topology = network.topology
    rows, cols = frame_shape(topology, direction)
    frame = np.zeros((rows, cols), dtype=np.float64)
    for node in topology.nodes():
        router = network.router(node)
        port = router.port(direction)
        if port is None:
            continue
        row, col = _port_coordinates(topology, direction, node)
        if kind is FeatureKind.VCO:
            frame[row, col] = port.vc_occupancy
        else:
            frame[row, col] = float(port.buffer_operation_count)
    return frame


def extract_feature_frames(
    network: MeshNetwork, kind: FeatureKind
) -> dict[Direction, np.ndarray]:
    """Extract all four directional frames of one feature in a single pass.

    Equivalent to calling :func:`extract_feature_frame` once per cardinal
    direction, but visits every router exactly once — the batched fast path
    the global performance monitor uses, which matters at the paper's 16x16
    scale where a sample touches ~1200 ports.  On the SoA backend the frames
    are sliced straight out of the flat counter arrays with no per-router
    loop at all.
    """
    fast_path = getattr(network, "feature_frames", None)
    if fast_path is not None:
        return fast_path(kind)
    topology = network.topology
    frames = {
        direction: np.zeros(frame_shape(topology, direction), dtype=np.float64)
        for direction in Direction.cardinal()
    }
    is_vco = kind is FeatureKind.VCO
    for router in network.routers:
        for direction, port in router.input_ports.items():
            if direction is Direction.LOCAL:
                continue
            row, col = _port_coordinates(topology, direction, router.node_id)
            frames[direction][row, col] = (
                port.vc_occupancy if is_vco else float(port.buffer_operation_count)
            )
    return frames


def normalize_frame(frame: np.ndarray, method: str = "max") -> np.ndarray:
    """Normalise a feature frame into [0, 1].

    ``max`` divides by the frame maximum (the paper's BOC normalization);
    ``minmax`` rescales to span the full unit interval; ``none`` returns a
    copy unchanged.  All-zero frames are returned unchanged to avoid division
    by zero.
    """
    frame = np.asarray(frame, dtype=np.float64)
    if method == "none":
        return frame.copy()
    if method == "max":
        peak = float(frame.max())
        return frame / peak if peak > 0 else frame.copy()
    if method == "minmax":
        low, high = float(frame.min()), float(frame.max())
        if high - low <= 0:
            return np.zeros_like(frame)
        return (frame - low) / (high - low)
    raise ValueError(f"unknown normalization method {method!r}")
