"""Area model of the pipelined CNN accelerators.

The paper implements the detector and localizer as lightweight accelerators
"with minimized logic usage, incorporating three convolutional kernels in a
pipeline architecture".  The accelerator area therefore consists of:

* weight/bias storage for every trained parameter (fixed-point);
* a small array of MAC (multiply-accumulate) units — three kernels' worth of
  pipelined MACs, reused across the feature map;
* line buffers holding the input rows a 3x3 convolution window needs;
* fixed control / activation / pooling logic.

This is a *global* (single-instance) cost: unlike the distributed per-router
schemes it does not grow with the NoC, which is the whole point of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.model import Sequential

__all__ = ["AcceleratorParameters", "CNNAcceleratorAreaModel"]


@dataclass(frozen=True)
class AcceleratorParameters:
    """Implementation parameters of a CNN accelerator."""

    weight_bits: int = 16
    activation_bits: int = 16
    pipelined_kernels: int = 3
    macs_per_kernel: int = 9  # a 3x3 kernel's multiply-accumulate lane
    gates_per_weight_bit: float = 1.5  # SRAM-based weight storage
    gates_per_mac: float = 900.0
    gates_per_line_buffer_bit: float = 4.0
    control_gates: float = 9_000.0

    def __post_init__(self) -> None:
        if self.weight_bits < 1 or self.activation_bits < 1:
            raise ValueError("bit widths must be positive")
        if self.pipelined_kernels < 1 or self.macs_per_kernel < 1:
            raise ValueError("kernel/MAC counts must be positive")


class CNNAcceleratorAreaModel:
    """Gate-equivalent area of one CNN accelerator."""

    def __init__(self, params: AcceleratorParameters | None = None) -> None:
        self.params = params or AcceleratorParameters()

    def weight_storage_area(self, num_parameters: int) -> float:
        """Storage for all trained weights and biases."""
        if num_parameters < 0:
            raise ValueError("num_parameters must be non-negative")
        return num_parameters * self.params.weight_bits * self.params.gates_per_weight_bit

    def mac_array_area(self) -> float:
        """The pipelined MAC array (independent of the model size)."""
        return (
            self.params.pipelined_kernels
            * self.params.macs_per_kernel
            * self.params.gates_per_mac
        )

    def line_buffer_area(self, frame_width: int, kernel_size: int = 3) -> float:
        """Line buffers holding ``kernel_size - 1`` input rows of the frame."""
        if frame_width < 1:
            raise ValueError("frame_width must be positive")
        bits = (kernel_size - 1) * frame_width * self.params.activation_bits
        return bits * self.params.gates_per_line_buffer_bit

    def accelerator_area(self, num_parameters: int, frame_width: int) -> float:
        """Total gate count of one accelerator instance."""
        return (
            self.weight_storage_area(num_parameters)
            + self.mac_array_area()
            + self.line_buffer_area(frame_width)
            + self.params.control_gates
        )

    def area_for_model(self, model: Sequential, frame_width: int) -> float:
        """Accelerator area for a built :class:`Sequential` model."""
        return self.accelerator_area(model.num_parameters, frame_width)
