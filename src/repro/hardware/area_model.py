"""Gate-equivalent area model of the NoC fabric.

Router area is dominated by the input buffers (one flip-flop plus mux per
stored bit), followed by the crossbar and the VC/switch allocators; every
router also carries a network interface on its local port.  The model works
in gate equivalents (NAND2-equivalent gates), the conventional technology-
independent unit for this kind of estimate, and accounts for the fact that
edge and corner routers have fewer ports — exactly the effect that makes a
mesh NoC's area grow slightly slower than ``rows * columns``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.topology import MeshTopology

__all__ = ["GateCosts", "RouterParameters", "NoCAreaModel"]


@dataclass(frozen=True)
class GateCosts:
    """Technology-independent gate-equivalent cost constants."""

    gates_per_buffer_bit: float = 5.0
    gates_per_crossbar_bit: float = 4.0
    gates_per_allocator_port: float = 300.0
    gates_per_routing_logic: float = 400.0
    gates_per_ni: float = 15_000.0
    gates_per_link_bit: float = 2.5

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class RouterParameters:
    """Micro-architectural parameters of one router (paper defaults)."""

    num_vcs: int = 4
    vc_depth: int = 4
    flit_width_bits: int = 128

    def __post_init__(self) -> None:
        if self.num_vcs < 1 or self.vc_depth < 1 or self.flit_width_bits < 1:
            raise ValueError("router parameters must be positive")


class NoCAreaModel:
    """Area of routers, network interfaces and links of a mesh NoC."""

    def __init__(
        self,
        router: RouterParameters | None = None,
        costs: GateCosts | None = None,
    ) -> None:
        self.router = router or RouterParameters()
        self.costs = costs or GateCosts()

    # -- per-component areas ------------------------------------------------
    def router_area(self, num_ports: int) -> float:
        """Gate count of a router with ``num_ports`` ports (including local)."""
        if num_ports < 2:
            raise ValueError("a router needs at least two ports")
        router = self.router
        costs = self.costs
        buffer_bits = (
            num_ports * router.num_vcs * router.vc_depth * router.flit_width_bits
        )
        buffers = buffer_bits * costs.gates_per_buffer_bit
        crossbar = num_ports * num_ports * router.flit_width_bits * costs.gates_per_crossbar_bit
        allocators = num_ports * router.num_vcs * costs.gates_per_allocator_port
        routing = num_ports * costs.gates_per_routing_logic
        return buffers + crossbar + allocators + routing

    def network_interface_area(self) -> float:
        """Gate count of one network interface (local-port packetisation)."""
        return self.costs.gates_per_ni

    def link_area(self) -> float:
        """Gate count of one unidirectional inter-router link (repeaters/regs)."""
        return self.router.flit_width_bits * self.costs.gates_per_link_bit

    # -- whole-NoC area ----------------------------------------------------------
    def noc_area(self, topology: MeshTopology) -> float:
        """Total gate count of the NoC fabric (routers + NIs + links).

        Matches the paper's accounting, which excludes the SoC tiles and only
        synthesises the interconnect.
        """
        total = 0.0
        links = 0
        for node in topology.nodes():
            num_ports = topology.degree(node) + 1  # cardinal ports + local
            total += self.router_area(num_ports)
            total += self.network_interface_area()
            links += topology.degree(node)  # one incoming link per cardinal port
        total += links * self.link_area()
        return total

    def mesh_area(self, rows: int, columns: int | None = None) -> float:
        """Convenience wrapper building the topology from dimensions."""
        return self.noc_area(MeshTopology(rows=rows, columns=columns or rows))
