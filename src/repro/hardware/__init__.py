"""Analytical hardware-overhead model.

The paper synthesises two pipelined CNN accelerators next to a ProNoC-generated
NoC (routers + network interfaces + links, no SoC tiles) and reports the area
overhead of DL2Fence for different mesh sizes (Figure 5) and against related
works (Table 4).  RTL synthesis is not available offline, so this package
provides a gate-equivalent analytical model:

* :mod:`repro.hardware.area_model` — router / network-interface / link / NoC
  area from micro-architectural parameters;
* :mod:`repro.hardware.accelerator` — CNN accelerator area from the model's
  parameter count and MAC pipeline configuration;
* :mod:`repro.hardware.overhead` — overhead calculations, the mesh-size sweep
  of Figure 5 and the distributed-scheme comparison;
* :mod:`repro.hardware.related_works` — the published numbers of the
  comparator schemes used in Table 4.

The model is calibrated so the 8x8 operating point lands near the paper's
reported 1.9%; the claims the benches verify are the *ratios* (the ~76%
overhead drop from 8x8 to 16x16 and the >40% saving against the
distributed perceptron scheme), which only depend on the scaling structure:
a fixed accelerator cost amortised over a quadratically growing NoC.
"""

from repro.hardware.area_model import GateCosts, NoCAreaModel, RouterParameters
from repro.hardware.accelerator import AcceleratorParameters, CNNAcceleratorAreaModel
from repro.hardware.overhead import (
    OverheadReport,
    dl2fence_overhead,
    distributed_scheme_overhead,
    overhead_vs_mesh_size,
    relative_saving,
)
from repro.hardware.related_works import RELATED_WORKS, RelatedWork, comparison_table

__all__ = [
    "AcceleratorParameters",
    "CNNAcceleratorAreaModel",
    "GateCosts",
    "NoCAreaModel",
    "OverheadReport",
    "RELATED_WORKS",
    "RelatedWork",
    "RouterParameters",
    "comparison_table",
    "dl2fence_overhead",
    "distributed_scheme_overhead",
    "overhead_vs_mesh_size",
    "relative_saving",
]
