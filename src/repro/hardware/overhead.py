"""Overhead calculations: Figure 5 sweep and distributed-scheme comparison."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DL2FenceConfig
from repro.core.detector import build_detector_model
from repro.core.localizer import build_localizer_model
from repro.hardware.accelerator import AcceleratorParameters, CNNAcceleratorAreaModel
from repro.hardware.area_model import GateCosts, NoCAreaModel, RouterParameters
from repro.noc.topology import MeshTopology

__all__ = [
    "OverheadReport",
    "dl2fence_overhead",
    "distributed_scheme_overhead",
    "overhead_vs_mesh_size",
    "relative_saving",
]


@dataclass
class OverheadReport:
    """Breakdown of a hardware-overhead estimate for one mesh size."""

    rows: int
    noc_area_gates: float
    detector_area_gates: float
    localizer_area_gates: float
    overhead_fraction: float
    details: dict = field(default_factory=dict)

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction

    @property
    def total_accelerator_gates(self) -> float:
        return self.detector_area_gates + self.localizer_area_gates


def _model_parameter_counts(rows: int, config: DL2FenceConfig) -> tuple[int, int]:
    """Trainable parameter counts of the two CNNs for a ``rows`` x ``rows`` mesh."""
    detector = build_detector_model(
        (rows, rows - 1, 4),
        filters=config.detector_filters,
        kernel_size=config.detector_kernel_size,
        pool_size=config.detector_pool_size,
        seed=config.seed,
    )
    localizer = build_localizer_model(
        (rows, rows - 1, 1),
        filters=config.localizer_filters,
        kernel_size=config.localizer_kernel_size,
        conv_layers=config.localizer_conv_layers,
        seed=config.seed,
    )
    return detector.num_parameters, localizer.num_parameters


def dl2fence_overhead(
    rows: int,
    config: DL2FenceConfig | None = None,
    router: RouterParameters | None = None,
    costs: GateCosts | None = None,
    accelerator: AcceleratorParameters | None = None,
) -> OverheadReport:
    """Area overhead of the two DL2Fence accelerators on a ``rows`` x ``rows`` NoC.

    Overhead is the accelerator area divided by the NoC fabric area (routers,
    network interfaces and links, excluding SoC tiles), matching the paper's
    accounting.
    """
    if rows < 4:
        raise ValueError("the smallest mesh evaluated in the paper is 4x4")
    config = config or DL2FenceConfig()
    noc_model = NoCAreaModel(router=router, costs=costs)
    accel_model = CNNAcceleratorAreaModel(accelerator)
    topology = MeshTopology(rows=rows)

    noc_area = noc_model.noc_area(topology)
    detector_params, localizer_params = _model_parameter_counts(rows, config)
    frame_width = rows - 1
    detector_area = accel_model.accelerator_area(detector_params, frame_width)
    localizer_area = accel_model.accelerator_area(localizer_params, frame_width)
    overhead = (detector_area + localizer_area) / noc_area
    return OverheadReport(
        rows=rows,
        noc_area_gates=noc_area,
        detector_area_gates=detector_area,
        localizer_area_gates=localizer_area,
        overhead_fraction=overhead,
        details={
            "detector_parameters": detector_params,
            "localizer_parameters": localizer_params,
        },
    )


def distributed_scheme_overhead(
    rows: int,
    per_router_overhead_fraction: float,
) -> float:
    """Total overhead fraction of a distributed per-router scheme.

    Distributed schemes (Sniffer's per-router perceptron, per-router SVMs)
    add a fixed fraction to every router, so their overhead is constant in
    the NoC size — the contrast the paper draws in Section 5.3.
    """
    if per_router_overhead_fraction < 0:
        raise ValueError("per_router_overhead_fraction must be non-negative")
    if rows < 2:
        raise ValueError("rows must be >= 2")
    return per_router_overhead_fraction


def overhead_vs_mesh_size(
    sizes: tuple[int, ...] = (4, 8, 16, 32),
    config: DL2FenceConfig | None = None,
    **kwargs,
) -> list[OverheadReport]:
    """The Figure 5 sweep: DL2Fence overhead for increasing mesh sizes."""
    return [dl2fence_overhead(rows, config=config, **kwargs) for rows in sizes]


def relative_saving(ours: float, reference: float) -> float:
    """Relative saving of ``ours`` versus ``reference`` (e.g. 0.424 = 42.4%).

    Used for the paper's two headline hardware claims: the 76.3% overhead
    decrease from 8x8 to 16x16 and the 42.4% saving against Sniffer at 8x8.
    """
    if reference <= 0:
        raise ValueError("reference must be positive")
    return (reference - ours) / reference
