"""Published comparison points used in Table 4 of the paper.

Each :class:`RelatedWork` entry records the numbers the paper itself cites
for the comparator schemes — the hardware overhead of the distributed
detectors and their detection/localization metrics — so the comparison bench
can print the full table next to the values measured for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RelatedWork", "RELATED_WORKS", "comparison_table"]


@dataclass(frozen=True)
class RelatedWork:
    """One row of the paper's Table 4."""

    key: str
    reference: str
    ml_model: str
    noc_scale: str
    hardware_overhead_percent: float | None
    detection_accuracy: float | None
    detection_precision: float | None
    localization_accuracy: float | None
    localization_precision: float | None
    distributed: bool
    handles_fdos: bool

    def as_row(self) -> dict:
        """Plain-dict row for table printing."""
        return {
            "work": self.key,
            "model": self.ml_model,
            "scale": self.noc_scale,
            "overhead_%": self.hardware_overhead_percent,
            "det_accuracy": self.detection_accuracy,
            "det_precision": self.detection_precision,
            "loc_accuracy": self.localization_accuracy,
            "loc_precision": self.localization_precision,
            "distributed": self.distributed,
            "fdos": self.handles_fdos,
        }


RELATED_WORKS: dict[str, RelatedWork] = {
    "sniffer": RelatedWork(
        key="sniffer",
        reference="Sinha et al., IEEE JETCAS 2021 [2]",
        ml_model="Perceptron (per router)",
        noc_scale="8x8",
        hardware_overhead_percent=3.3,
        detection_accuracy=0.976,
        detection_precision=None,
        localization_accuracy=0.967,
        localization_precision=None,
        distributed=True,
        handles_fdos=True,
    ),
    "svm_anomaly": RelatedWork(
        key="svm_anomaly",
        reference="Kulkarni et al., ACM JETC 2016 [13]",
        ml_model="SVM (per router)",
        noc_scale="4x4",
        hardware_overhead_percent=9.0,
        detection_accuracy=0.955,
        detection_precision=0.945,
        localization_accuracy=None,
        localization_precision=None,
        distributed=True,
        handles_fdos=False,
    ),
    "xgb_global": RelatedWork(
        key="xgb_global",
        reference="Sudusinghe et al., NOCS 2021 [8]",
        ml_model="XGBoost (global)",
        noc_scale="4x4",
        hardware_overhead_percent=None,
        detection_accuracy=0.96,
        detection_precision=0.948,
        localization_accuracy=None,
        localization_precision=None,
        distributed=False,
        handles_fdos=True,
    ),
    "dl2fence_paper": RelatedWork(
        key="dl2fence_paper",
        reference="Wang et al., DAC 2024 (the reproduced paper)",
        ml_model="CNN classifier + segmentor (global)",
        noc_scale="16x16",
        hardware_overhead_percent=0.45,
        detection_accuracy=0.958,
        detection_precision=0.985,
        localization_accuracy=0.917,
        localization_precision=0.993,
        distributed=False,
        handles_fdos=True,
    ),
}


def comparison_table() -> list[dict]:
    """All published comparison rows in Table 4 order."""
    order = ["sniffer", "svm_anomaly", "xgb_global", "dl2fence_paper"]
    return [RELATED_WORKS[key].as_row() for key in order]
