"""Workload and threat-model substrate.

Contains the traffic generators used in the paper's evaluation:

* the six synthetic traffic patterns (STP) — uniform random, tornado,
  shuffle, neighbor, bit rotation and bit complement;
* PARSEC-like phased workload models (blackscholes, bodytrack, x264) that
  stand in for the Gem5 full-system runs;
* the refined Flooding-DoS model with a finely adjustable Flooding Injection
  Rate (FIR), Section 2.3 of the paper;
* attack-scenario composition utilities used for dataset generation.
"""

from repro.traffic.synthetic import (
    SYNTHETIC_PATTERNS,
    BitComplementTraffic,
    BitRotationTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    SyntheticTraffic,
    TornadoTraffic,
    UniformRandomTraffic,
    make_synthetic_traffic,
)
from repro.traffic.parsec import (
    PARSEC_WORKLOADS,
    ParsecPhase,
    ParsecWorkload,
    make_parsec_workload,
)
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.scenario import (
    AttackScenario,
    MultiAttackScenario,
    ScenarioGenerator,
    benchmark_names,
)

__all__ = [
    "SYNTHETIC_PATTERNS",
    "PARSEC_WORKLOADS",
    "AttackScenario",
    "MultiAttackScenario",
    "BitComplementTraffic",
    "BitRotationTraffic",
    "FloodingAttacker",
    "FloodingConfig",
    "NeighborTraffic",
    "ParsecPhase",
    "ParsecWorkload",
    "ScenarioGenerator",
    "ShuffleTraffic",
    "SyntheticTraffic",
    "TornadoTraffic",
    "UniformRandomTraffic",
    "benchmark_names",
    "make_parsec_workload",
    "make_synthetic_traffic",
]
