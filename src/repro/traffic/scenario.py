"""Attack-scenario composition used for dataset generation and evaluation.

The paper simulates "18 attack scenarios under 0.8 FIR across 6 + 3
benchmarks", mixing single- and dual-attacker patterns.  This module provides
the :class:`AttackScenario` description object plus a reproducible
:class:`ScenarioGenerator` that draws such scenarios for a given mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.noc.routing import xy_route_victims
from repro.noc.topology import MeshTopology
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.parsec import PARSEC_WORKLOADS
from repro.traffic.synthetic import SYNTHETIC_PATTERNS

__all__ = [
    "AttackScenario",
    "MultiAttackScenario",
    "ScenarioGenerator",
    "benchmark_names",
]


def benchmark_names(include_parsec: bool = True) -> list[str]:
    """All benchmark names of the paper's evaluation (6 STP + 3 PARSEC)."""
    names = list(SYNTHETIC_PATTERNS)
    if include_parsec:
        names.extend(PARSEC_WORKLOADS)
    return names


@dataclass(frozen=True)
class AttackScenario:
    """A fully specified flooding scenario on a given mesh.

    Attributes
    ----------
    attackers:
        Malicious node ids (1 or 2 in the paper's evaluation).
    victim:
        Target victim node id.
    fir:
        Flooding Injection Rate for all attackers.
    benchmark:
        Name of the benign workload the attack overlays (one of the 6 STP
        patterns or 3 PARSEC workloads); informational only.
    """

    attackers: tuple[int, ...]
    victim: int
    fir: float = 0.8
    benchmark: str = "uniform_random"

    def __post_init__(self) -> None:
        if not self.attackers:
            raise ValueError("a scenario needs at least one attacker")
        if self.victim in self.attackers:
            raise ValueError("victim cannot be an attacker")
        if not 0.0 <= self.fir <= 1.0:
            raise ValueError("fir must be in [0, 1]")

    @property
    def num_attackers(self) -> int:
        return len(self.attackers)

    def flooding_config(
        self,
        packet_size_flits: int = 4,
        start_cycle: int = 0,
        end_cycle: int | None = None,
    ) -> FloodingConfig:
        """Convert the scenario to a :class:`FloodingConfig`."""
        return FloodingConfig(
            attackers=self.attackers,
            victim=self.victim,
            fir=self.fir,
            packet_size_flits=packet_size_flits,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
        )

    def attacker_source(
        self, topology: MeshTopology, seed: int = 0, **kwargs
    ) -> FloodingAttacker:
        """Build the :class:`FloodingAttacker` traffic source for this scenario."""
        return FloodingAttacker(self.flooding_config(**kwargs), topology, seed=seed)

    def ground_truth_victims(self, topology: MeshTopology) -> set[int]:
        """All Routing-Path Victims plus the target victim of the scenario.

        This is the segmentation ground truth: every router traversed by at
        least one flooding flow under XY routing.
        """
        victims: set[int] = set()
        for attacker in self.attackers:
            victims.update(xy_route_victims(topology, attacker, self.victim))
        return victims

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.num_attackers} attacker(s) {list(self.attackers)} -> victim "
            f"{self.victim} @ FIR {self.fir} on {self.benchmark}"
        )


@dataclass(frozen=True)
class MultiAttackScenario:
    """N simultaneous flooding flows aimed at pairwise-disjoint victims.

    The paper handles multi-attacker cases through iterative sampling rounds:
    quarantining the loudest localized attacker lets the next round's frames
    reveal the rest (Figure 3's multi-attacker rules).  This object composes
    independent :class:`AttackScenario` flows — each with its own victim —
    into one concurrent threat, which is the distributed-DoS shape related
    work (topology-aware NoC DDoS) identifies as the realistic model.

    Attributes
    ----------
    flows:
        The component single-victim scenarios running simultaneously.  Every
        flow keeps its own FIR, so asymmetric ("loud + quiet") attacks are
        expressible.
    benchmark:
        Benign workload the combined attack overlays; informational only.
    """

    flows: tuple[AttackScenario, ...]
    benchmark: str = "uniform_random"

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("a multi-attack scenario needs at least one flow")
        victims = [flow.victim for flow in self.flows]
        if len(set(victims)) != len(victims):
            raise ValueError("flows must target pairwise-disjoint victims")
        attackers: set[int] = set()
        for flow in self.flows:
            overlap = attackers.intersection(flow.attackers)
            if overlap:
                raise ValueError(f"attacker nodes {sorted(overlap)} appear in two flows")
            attackers.update(flow.attackers)
        if attackers.intersection(victims):
            raise ValueError("an attacker of one flow cannot be a victim of another")

    # -- aggregate views ----------------------------------------------------
    @property
    def attackers(self) -> tuple[int, ...]:
        """All malicious node ids across flows, sorted."""
        return tuple(sorted(a for flow in self.flows for a in flow.attackers))

    @property
    def victims(self) -> tuple[int, ...]:
        """The target victim of every flow, sorted."""
        return tuple(sorted(flow.victim for flow in self.flows))

    @property
    def num_attackers(self) -> int:
        return sum(flow.num_attackers for flow in self.flows)

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    def with_fir(self, fir: float) -> "MultiAttackScenario":
        """Copy with every flow's FIR replaced."""
        return MultiAttackScenario(
            flows=tuple(replace(flow, fir=fir) for flow in self.flows),
            benchmark=self.benchmark,
        )

    def with_firs(self, firs: tuple[float, ...]) -> "MultiAttackScenario":
        """Copy with per-flow FIRs — asymmetric ("loud + quiet") attacks."""
        if len(firs) != len(self.flows):
            raise ValueError(
                f"got {len(firs)} FIRs for {len(self.flows)} flows"
            )
        return MultiAttackScenario(
            flows=tuple(
                replace(flow, fir=float(fir)) for flow, fir in zip(self.flows, firs)
            ),
            benchmark=self.benchmark,
        )

    # -- simulation wiring ---------------------------------------------------
    def attacker_sources(
        self, topology: MeshTopology, seed: int = 0, **kwargs
    ) -> list[FloodingAttacker]:
        """One :class:`FloodingAttacker` per flow (independent RNG streams)."""
        return [
            flow.attacker_source(topology, seed=seed + index, **kwargs)
            for index, flow in enumerate(self.flows)
        ]

    def ground_truth_victims(self, topology: MeshTopology) -> set[int]:
        """Union of every flow's Routing-Path Victims plus target victims."""
        victims: set[int] = set()
        for flow in self.flows:
            victims.update(flow.ground_truth_victims(topology))
        return victims

    def describe(self) -> str:
        """One-line human-readable description."""
        flows = "; ".join(
            f"{list(flow.attackers)}->{flow.victim}@{flow.fir:g}" for flow in self.flows
        )
        return f"{self.num_flows} concurrent flows [{flows}] on {self.benchmark}"


class ScenarioGenerator:
    """Reproducible random generator of single/dual-attacker scenarios."""

    def __init__(self, topology: MeshTopology, seed: int = 0) -> None:
        self.topology = topology
        self.rng = np.random.default_rng(seed)

    def random_scenario(
        self,
        num_attackers: int = 1,
        fir: float = 0.8,
        benchmark: str = "uniform_random",
        min_distance: int = 2,
    ) -> AttackScenario:
        """Draw a scenario with distinct attackers at least ``min_distance`` hops away."""
        if num_attackers < 1:
            raise ValueError("num_attackers must be >= 1")
        num_nodes = self.topology.num_nodes
        if num_attackers >= num_nodes:
            raise ValueError("too many attackers for this mesh")
        for _ in range(1000):
            victim = int(self.rng.integers(0, num_nodes))
            candidates = [
                node
                for node in self.topology.nodes()
                if node != victim
                and self.topology.manhattan_distance(node, victim) >= min_distance
            ]
            if len(candidates) < num_attackers:
                continue
            attackers = tuple(
                int(a)
                for a in self.rng.choice(candidates, size=num_attackers, replace=False)
            )
            return AttackScenario(
                attackers=attackers, victim=victim, fir=fir, benchmark=benchmark
            )
        raise RuntimeError("could not sample a valid scenario")  # pragma: no cover

    def random_multi_scenario(
        self,
        num_flows: int = 2,
        fir: float = 0.8,
        benchmark: str = "uniform_random",
        min_distance: int = 2,
        min_victim_separation: int = 3,
        attackers_per_flow: int = 1,
        allow_on_route: bool = False,
    ) -> MultiAttackScenario:
        """Draw ``num_flows`` concurrent flooding flows on disjoint victims.

        Victims are kept at least ``min_victim_separation`` hops apart so the
        flows congest different mesh regions and no node plays two roles
        (attacker or victim) across flows.  By default no attacker sits on
        another flow's XY route either: an attacker inside the fused victim
        set is geometrically indistinguishable from a route turning point,
        the one single-window blind spot of the Table-Like Method.
        ``allow_on_route=True`` lifts that exclusion — the adversarial
        placement the cross-window evidence accumulator exists to catch
        (see :class:`repro.attacks.OnRouteFloodAttack` for the deterministic
        library variant).
        """
        if num_flows < 1:
            raise ValueError("num_flows must be >= 1")
        for _ in range(1000):
            flows: list[AttackScenario] = []
            used: set[int] = set()
            victims: list[int] = []
            for _flow in range(num_flows):
                candidate = self._draw_flow(
                    fir, benchmark, min_distance, attackers_per_flow, used, victims,
                    min_victim_separation,
                )
                if candidate is None:
                    break
                flows.append(candidate)
                used.update(candidate.attackers)
                used.add(candidate.victim)
                victims.append(candidate.victim)
            if len(flows) == num_flows and (
                allow_on_route or not self._routes_cross_attackers(flows)
            ):
                return MultiAttackScenario(flows=tuple(flows), benchmark=benchmark)
        raise RuntimeError("could not sample a valid multi-attack scenario")

    def _routes_cross_attackers(self, flows: list[AttackScenario]) -> bool:
        """True when any attacker lies on another flow's routing path."""
        attackers = {a for flow in flows for a in flow.attackers}
        for flow in flows:
            route = flow.ground_truth_victims(self.topology)
            others = attackers.difference(flow.attackers)
            if route.intersection(others):
                return True
        return False

    def _draw_flow(
        self,
        fir: float,
        benchmark: str,
        min_distance: int,
        attackers_per_flow: int,
        used: set[int],
        victims: list[int],
        min_victim_separation: int,
    ) -> AttackScenario | None:
        """One attempt at drawing a flow avoiding ``used`` nodes."""
        for _ in range(50):
            victim = int(self.rng.integers(0, self.topology.num_nodes))
            if victim in used:
                continue
            if any(
                self.topology.manhattan_distance(victim, other) < min_victim_separation
                for other in victims
            ):
                continue
            candidates = [
                node
                for node in self.topology.nodes()
                if node not in used
                and node != victim
                and self.topology.manhattan_distance(node, victim) >= min_distance
            ]
            if len(candidates) < attackers_per_flow:
                continue
            attackers = tuple(
                int(a)
                for a in self.rng.choice(
                    candidates, size=attackers_per_flow, replace=False
                )
            )
            return AttackScenario(
                attackers=attackers, victim=victim, fir=fir, benchmark=benchmark
            )
        return None

    def scenario_suite(
        self,
        benchmarks: list[str] | None = None,
        scenarios_per_benchmark: int = 2,
        fir: float = 0.8,
        attacker_counts: tuple[int, ...] = (1, 2),
    ) -> list[AttackScenario]:
        """Generate the evaluation suite: scenarios for every benchmark.

        With the defaults (2 scenarios x 9 benchmarks x {1, 2} attackers)
        this mirrors the paper's "18 attack scenarios ... across 6 + 3
        benchmarks" construction.
        """
        if benchmarks is None:
            benchmarks = benchmark_names()
        suite = []
        for benchmark in benchmarks:
            for index in range(scenarios_per_benchmark):
                count = attacker_counts[index % len(attacker_counts)]
                suite.append(
                    self.random_scenario(
                        num_attackers=count, fir=fir, benchmark=benchmark
                    )
                )
        return suite
