"""PARSEC-like phased workload traffic models.

The paper evaluates DL2Fence on three PARSEC applications (blackscholes,
bodytrack, x264) executed in Gem5 full-system mode.  Running PARSEC itself is
not possible offline, so this module provides synthetic stand-ins whose
on-chip communication mimics the published characterisation of those
workloads:

* traffic is **phased**: an initialisation/serial phase with very light
  traffic, a Region-of-Interest (ROI) phase where worker tiles exchange data
  with memory-controller tiles, and a wind-down phase;
* the average injection rate is roughly an order of magnitude lower than the
  synthetic traffic patterns, which is exactly the property the paper relies
  on (the FDoS flooding signature is more prominent under PARSEC);
* a fraction of traffic is hotspot traffic towards memory-controller nodes
  placed at the mesh corners, with the remainder exchanged between
  neighbouring worker tiles.

The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

__all__ = ["ParsecPhase", "ParsecWorkload", "PARSEC_WORKLOADS", "make_parsec_workload"]


@dataclass(frozen=True)
class ParsecPhase:
    """One execution phase of a PARSEC-like workload.

    Attributes
    ----------
    name:
        Human-readable phase label (``init``, ``roi``, ``finish``).
    duration_fraction:
        Fraction of the total simulated window spent in this phase.
    injection_rate:
        Packets per node per cycle while the phase is active.
    hotspot_fraction:
        Probability that a packet targets a memory-controller hotspot node
        rather than a neighbouring worker tile.
    burstiness:
        Probability of being inside a traffic burst; outside bursts the
        injection rate is scaled down by 10x.  Models the compute/communicate
        alternation of the ROI.
    """

    name: str
    duration_fraction: float
    injection_rate: float
    hotspot_fraction: float = 0.5
    burstiness: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0, 1]")
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection_rate must be in [0, 1]")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if not 0.0 < self.burstiness <= 1.0:
            raise ValueError("burstiness must be in (0, 1]")


# Phase profiles loosely derived from the PARSEC communication
# characterisation literature: blackscholes is embarrassingly parallel with
# little communication, bodytrack synchronises more often, x264 has a
# pipeline structure with sustained neighbour exchange.
PARSEC_WORKLOADS: dict[str, tuple[ParsecPhase, ...]] = {
    "blackscholes": (
        ParsecPhase("init", 0.2, 0.004, hotspot_fraction=0.8),
        ParsecPhase("roi", 0.6, 0.008, hotspot_fraction=0.6, burstiness=0.3),
        ParsecPhase("finish", 0.2, 0.003, hotspot_fraction=0.8),
    ),
    "bodytrack": (
        ParsecPhase("init", 0.15, 0.005, hotspot_fraction=0.7),
        ParsecPhase("roi", 0.7, 0.012, hotspot_fraction=0.5, burstiness=0.5),
        ParsecPhase("finish", 0.15, 0.004, hotspot_fraction=0.7),
    ),
    "x264": (
        ParsecPhase("init", 0.1, 0.006, hotspot_fraction=0.6),
        ParsecPhase("roi", 0.8, 0.015, hotspot_fraction=0.35, burstiness=0.6),
        ParsecPhase("finish", 0.1, 0.004, hotspot_fraction=0.6),
    ),
}


class ParsecWorkload:
    """Phased, bursty traffic source standing in for a PARSEC application."""

    def __init__(
        self,
        name: str,
        topology: MeshTopology,
        phases: tuple[ParsecPhase, ...] | None = None,
        total_cycles: int = 4096,
        packet_size_flits: int = 4,
        num_memory_controllers: int = 4,
        seed: int = 0,
    ) -> None:
        key = name.lower()
        if phases is None:
            if key not in PARSEC_WORKLOADS:
                raise KeyError(
                    f"unknown PARSEC workload {name!r}; known: {sorted(PARSEC_WORKLOADS)}"
                )
            phases = PARSEC_WORKLOADS[key]
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        if packet_size_flits < 1:
            raise ValueError("packet_size_flits must be >= 1")
        if num_memory_controllers < 1:
            raise ValueError("num_memory_controllers must be >= 1")
        total_fraction = sum(p.duration_fraction for p in phases)
        if abs(total_fraction - 1.0) > 1e-6:
            raise ValueError("phase duration fractions must sum to 1.0")
        self.name = key
        self.topology = topology
        self.phases = tuple(phases)
        self.total_cycles = int(total_cycles)
        self.packet_size_flits = int(packet_size_flits)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self.memory_controllers = self._place_memory_controllers(num_memory_controllers)
        self._phase_boundaries = self._compute_boundaries()

    # -- layout ---------------------------------------------------------------
    def _place_memory_controllers(self, count: int) -> list[int]:
        """Spread memory-controller tiles over the mesh corners and edges."""
        topo = self.topology
        corners = [
            topo.node_id(0, 0),
            topo.node_id(topo.columns - 1, 0),
            topo.node_id(0, topo.rows - 1),
            topo.node_id(topo.columns - 1, topo.rows - 1),
        ]
        controllers = corners[: min(count, 4)]
        extra = count - len(controllers)
        if extra > 0:
            mid_row = topo.rows // 2
            for i in range(extra):
                x = (i + 1) * topo.columns // (extra + 1)
                controllers.append(topo.node_id(min(x, topo.columns - 1), mid_row))
        return controllers

    def _compute_boundaries(self) -> list[tuple[int, ParsecPhase]]:
        boundaries = []
        start = 0
        for phase in self.phases:
            length = int(round(phase.duration_fraction * self.total_cycles))
            boundaries.append((start, phase))
            start += length
        return boundaries

    def phase_at(self, cycle: int) -> ParsecPhase:
        """Phase active at ``cycle`` (clamped to the last phase afterwards)."""
        wrapped = cycle % self.total_cycles
        current = self.phases[0]
        for start, phase in self._phase_boundaries:
            if wrapped >= start:
                current = phase
        return current

    # -- TrafficSource protocol -------------------------------------------------
    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Create packets for one cycle following the phase profile."""
        phase = self.phase_at(cycle)
        rate = phase.injection_rate
        if phase.burstiness < 1.0 and self.rng.random() > phase.burstiness:
            rate *= 0.1
        if rate <= 0.0:
            return []
        draws = self.rng.random(self.topology.num_nodes) < rate
        packets = []
        for source in np.nonzero(draws)[0]:
            source = int(source)
            destination = self._destination_for(source, phase)
            if destination == source:
                continue
            packets.append(
                Packet(
                    source=source,
                    destination=destination,
                    size_flits=self.packet_size_flits,
                    created_cycle=cycle,
                )
            )
        return packets

    def _destination_for(self, source: int, phase: ParsecPhase) -> int:
        if self.rng.random() < phase.hotspot_fraction:
            # Memory access: pick the nearest memory controller most often.
            distances = [
                self.topology.manhattan_distance(source, mc)
                for mc in self.memory_controllers
            ]
            if self.rng.random() < 0.7:
                return self.memory_controllers[int(np.argmin(distances))]
            return int(self.rng.choice(self.memory_controllers))
        # Worker-to-worker exchange with a nearby tile.
        neighbors = list(self.topology.neighbors(source).values())
        return int(self.rng.choice(neighbors))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParsecWorkload({self.name!r}, phases={len(self.phases)})"


def make_parsec_workload(
    name: str,
    topology: MeshTopology,
    total_cycles: int = 4096,
    packet_size_flits: int = 4,
    seed: int = 0,
) -> ParsecWorkload:
    """Instantiate a PARSEC-like workload by name (blackscholes/bodytrack/x264)."""
    return ParsecWorkload(
        name,
        topology,
        total_cycles=total_cycles,
        packet_size_flits=packet_size_flits,
        seed=seed,
    )
