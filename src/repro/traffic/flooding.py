"""Refined Flooding-DoS model with an adjustable Flooding Injection Rate.

Section 2.3 of the paper defines the threat model this module implements:

* one or more **malicious nodes** simultaneously flood a single **target
  victim** node with superfluous (but protocol-legal) packets;
* the flooding **overlays** normal workload traffic — benign communication is
  slowed down, not halted;
* attackers do not tamper with routing: flooding packets follow the default
  XY routes, so every router on the route becomes a Routing-Path Victim;
* the attack intensity is controlled by the **Flooding Injection Rate (FIR)**
  in [0, 1] — the probability that an attacker injects a flooding packet in a
  given cycle.  At FIR close to 1 the NoC saturates ("system crashed" in
  Figure 1); low FIR values are stealthier but still degrade performance.

In the paper the model is implemented as a malicious ``Tick`` function inside
Gem5 workloads; here it is a :class:`FloodingAttacker` traffic source attached
to the simulator next to the benign workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

__all__ = ["FloodingConfig", "FloodingAttacker"]


@dataclass(frozen=True)
class FloodingConfig:
    """Static parameters of a flooding attack.

    Attributes
    ----------
    attackers:
        Node ids of the malicious tiles.
    victim:
        Node id of the target victim.
    fir:
        Flooding Injection Rate in [0, 1]: per-attacker, per-cycle packet
        injection probability.  ``fir=0`` disables the attack.
    packet_size_flits:
        Size of each flooding packet.  The paper's FDoS variant that extends
        payload length instead of rate can be modelled by raising this.
    start_cycle, end_cycle:
        Attack window; ``end_cycle=None`` keeps the attack active forever.
    """

    attackers: tuple[int, ...]
    victim: int
    fir: float = 0.8
    packet_size_flits: int = 4
    start_cycle: int = 0
    end_cycle: int | None = None

    def __post_init__(self) -> None:
        if not self.attackers:
            raise ValueError("at least one attacker node is required")
        if not 0.0 <= self.fir <= 1.0:
            raise ValueError("fir must be in [0, 1]")
        if self.packet_size_flits < 1:
            raise ValueError("packet_size_flits must be >= 1")
        if self.victim in self.attackers:
            raise ValueError("the victim cannot also be an attacker")
        if self.start_cycle < 0:
            raise ValueError("start_cycle must be non-negative")
        if self.end_cycle is not None and self.end_cycle <= self.start_cycle:
            raise ValueError("end_cycle must be after start_cycle")

    @property
    def num_attackers(self) -> int:
        return len(self.attackers)


class FloodingAttacker:
    """Traffic source injecting flooding packets from attackers to the victim."""

    #: Marker the global performance monitor uses to track ground-truth
    #: "attack active" flags (shared with :class:`repro.attacks.AttackSource`).
    is_attack_source = True

    def __init__(
        self,
        config: FloodingConfig,
        topology: MeshTopology,
        seed: int = 0,
    ) -> None:
        for node in config.attackers + (config.victim,):
            if node not in topology:
                raise ValueError(f"node {node} outside the {topology!r} mesh")
        self.config = config
        self.topology = topology
        self.rng = np.random.default_rng(seed)
        self.packets_generated = 0

    @property
    def active(self) -> bool:
        """True when the attack can inject (FIR > 0)."""
        return self.config.fir > 0.0

    def is_active_at(self, cycle: int) -> bool:
        """True when the attack window covers ``cycle``."""
        if not self.active:
            return False
        if cycle < self.config.start_cycle:
            return False
        if self.config.end_cycle is not None and cycle >= self.config.end_cycle:
            return False
        return True

    def is_active_in(self, start: int, end: int) -> bool:
        """True when the attack window overlaps ``[start, end)`` at all.

        Window-level ground truth for the monitor: a constant-rate flood is
        active in every window its [start_cycle, end_cycle) range touches.
        """
        if not self.active:
            return False
        lo = max(start, self.config.start_cycle)
        hi = end if self.config.end_cycle is None else min(end, self.config.end_cycle)
        return hi > lo

    # -- TrafficSource protocol -------------------------------------------------
    def _draw_batch(self, cycle: int) -> np.ndarray | None:
        """Attacker node ids flooding during ``cycle`` (None when inactive).

        All attackers draw from one vectorized RNG call — the stream is
        identical to per-attacker scalar draws, so results are reproducible
        across both the object-building and the array-batch paths.
        """
        if not self.is_active_at(cycle):
            return None
        draws = self.rng.random(len(self.config.attackers))
        sources = np.asarray(self.config.attackers)[draws < self.config.fir]
        self.packets_generated += int(sources.size)
        return sources

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Flooding packets injected by all attackers during ``cycle``."""
        sources = self._draw_batch(cycle)
        if sources is None:
            return []
        return [
            Packet(
                source=attacker,
                destination=self.config.victim,
                size_flits=self.config.packet_size_flits,
                created_cycle=cycle,
                is_malicious=True,
            )
            for attacker in sources.tolist()
        ]

    def packet_batch_for_cycle(
        self, cycle: int
    ) -> tuple[np.ndarray, np.ndarray, int, bool] | None:
        """Array form of :meth:`packets_for_cycle` for batch-capable backends."""
        sources = self._draw_batch(cycle)
        if sources is None or sources.size == 0:
            return None
        destinations = np.full(sources.size, self.config.victim, dtype=np.int64)
        return sources, destinations, self.config.packet_size_flits, True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FloodingAttacker(attackers={self.config.attackers}, "
            f"victim={self.config.victim}, fir={self.config.fir})"
        )
