"""Synthetic traffic pattern (STP) generators.

The paper's evaluation uses six synthetic benchmarks — Uniform Random,
Tornado, Shuffle, Neighbor, Bit Rotation and Bit Complement — which are the
standard Garnet synthetic patterns.  Each pattern defines a deterministic or
stochastic mapping from a source node to a destination node; the generator
then injects packets following a Bernoulli process with a configurable
injection rate (packets per node per cycle).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

__all__ = [
    "SyntheticTraffic",
    "UniformRandomTraffic",
    "TornadoTraffic",
    "ShuffleTraffic",
    "NeighborTraffic",
    "BitRotationTraffic",
    "BitComplementTraffic",
    "SYNTHETIC_PATTERNS",
    "make_synthetic_traffic",
]


class SyntheticTraffic(ABC):
    """Base class for Bernoulli-injection synthetic traffic generators.

    Parameters
    ----------
    topology:
        The mesh the traffic runs on.
    injection_rate:
        Probability that a node creates a packet in a given cycle.  Typical
        benign operating points are 0.005-0.05 packets/node/cycle; the NoC
        saturates well below 1.0.
    packet_size_flits:
        Number of flits per generated packet.
    seed:
        Seed of the private random generator, so traffic is reproducible.
    """

    name = "synthetic"
    #: Deterministic patterns (no per-packet randomness in the destination
    #: mapping) memoise a source→destination table on first use.
    deterministic = False

    def __init__(
        self,
        topology: MeshTopology,
        injection_rate: float = 0.02,
        packet_size_flits: int = 4,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError("injection_rate must be in [0, 1]")
        if packet_size_flits < 1:
            raise ValueError("packet_size_flits must be >= 1")
        self.topology = topology
        self.injection_rate = float(injection_rate)
        self.packet_size_flits = int(packet_size_flits)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self._dest_table: np.ndarray | None = None

    # -- pattern ----------------------------------------------------------
    @abstractmethod
    def destination_for(self, source: int) -> int:
        """Destination node for a packet created at ``source``.

        May return ``source`` itself, in which case no packet is generated
        (self-traffic never enters the network).
        """

    def destinations_for(self, sources: np.ndarray) -> np.ndarray:
        """Vectorized destination mapping for the chosen sources.

        The default walks :meth:`destination_for` per source (the exact
        per-packet order randomized patterns rely on); deterministic
        patterns answer from a memoised full-mesh table instead.
        """
        if self.deterministic:
            if self._dest_table is None:
                self._dest_table = np.array(
                    [
                        self.destination_for(source)
                        for source in range(self.topology.num_nodes)
                    ],
                    dtype=np.int64,
                )
            return self._dest_table[sources]
        return np.array(
            [self.destination_for(int(source)) for source in sources],
            dtype=np.int64,
        )

    # -- TrafficSource protocol ------------------------------------------------
    def _draw_batch(self, cycle: int) -> tuple[np.ndarray, np.ndarray] | None:
        """One cycle's Bernoulli draw: (sources, destinations) or None.

        Shared by the object-building and the array-batch paths so both
        consume the RNG stream identically.
        """
        if self.injection_rate == 0.0:
            return None
        draws = self.rng.random(self.topology.num_nodes) < self.injection_rate
        sources = np.nonzero(draws)[0]
        if sources.size == 0:
            return None
        destinations = self.destinations_for(sources)
        keep = destinations != sources
        if not keep.all():
            sources = sources[keep]
            destinations = destinations[keep]
        return sources, destinations

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Bernoulli-inject packets across all nodes for one cycle."""
        batch = self._draw_batch(cycle)
        if batch is None:
            return []
        sources, destinations = batch
        size = self.packet_size_flits
        return [
            Packet(
                source=source,
                destination=destination,
                size_flits=size,
                created_cycle=cycle,
            )
            for source, destination in zip(sources.tolist(), destinations.tolist())
        ]

    def packet_batch_for_cycle(
        self, cycle: int
    ) -> tuple[np.ndarray, np.ndarray, int, bool] | None:
        """Array form of :meth:`packets_for_cycle` for batch-capable backends.

        Returns ``(sources, destinations, size_flits, is_malicious)`` with no
        per-packet Python objects; the RNG stream is identical to the object
        path, so both backends simulate the same traffic.
        """
        batch = self._draw_batch(cycle)
        if batch is None:
            return None
        sources, destinations = batch
        return sources, destinations, self.packet_size_flits, False

    # -- helpers -----------------------------------------------------------
    def _id_bits(self) -> int:
        """Number of bits needed to index nodes (bit-permutation patterns)."""
        return max(1, (self.topology.num_nodes - 1).bit_length())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rate={self.injection_rate})"


class UniformRandomTraffic(SyntheticTraffic):
    """Each packet targets a uniformly random node (excluding the source)."""

    name = "uniform_random"

    def destination_for(self, source: int) -> int:
        num = self.topology.num_nodes
        destination = int(self.rng.integers(0, num - 1))
        if destination >= source:
            destination += 1
        return destination

    def destinations_for(self, sources: np.ndarray) -> np.ndarray:
        """One bulk draw per cycle; the PCG64 stream of ``size=k`` bounded
        integer draws is identical to ``k`` scalar draws, so results match
        the per-source path bit for bit (pinned by a regression test)."""
        num = self.topology.num_nodes
        destinations = self.rng.integers(0, num - 1, size=sources.size)
        return destinations + (destinations >= sources)


class TornadoTraffic(SyntheticTraffic):
    """Tornado pattern: shift half-minus-one positions along each dimension."""

    name = "tornado"
    deterministic = True

    def destination_for(self, source: int) -> int:
        x, y = self.topology.coordinates(source)
        columns, rows = self.topology.columns, self.topology.rows
        dest_x = (x + max(1, columns // 2 - 1)) % columns
        dest_y = (y + max(1, rows // 2 - 1)) % rows
        return self.topology.node_id(dest_x, dest_y)


class ShuffleTraffic(SyntheticTraffic):
    """Perfect-shuffle permutation on the node-id bits (rotate left by one)."""

    name = "shuffle"
    deterministic = True

    def destination_for(self, source: int) -> int:
        bits = self._id_bits()
        num = self.topology.num_nodes
        rotated = ((source << 1) | (source >> (bits - 1))) & ((1 << bits) - 1)
        return rotated % num


class NeighborTraffic(SyntheticTraffic):
    """Each node sends to its eastern neighbour (wrapping at the mesh edge)."""

    name = "neighbor"
    deterministic = True

    def destination_for(self, source: int) -> int:
        x, y = self.topology.coordinates(source)
        return self.topology.node_id((x + 1) % self.topology.columns, y)


class BitRotationTraffic(SyntheticTraffic):
    """Rotate the node-id bits right by one position."""

    name = "bit_rotation"
    deterministic = True

    def destination_for(self, source: int) -> int:
        bits = self._id_bits()
        num = self.topology.num_nodes
        rotated = (source >> 1) | ((source & 1) << (bits - 1))
        return rotated % num


class BitComplementTraffic(SyntheticTraffic):
    """Send to the bitwise complement of the node id."""

    name = "bit_complement"
    deterministic = True

    def destination_for(self, source: int) -> int:
        num = self.topology.num_nodes
        return (num - 1) - source


SYNTHETIC_PATTERNS: dict[str, type[SyntheticTraffic]] = {
    cls.name: cls
    for cls in (
        UniformRandomTraffic,
        TornadoTraffic,
        ShuffleTraffic,
        NeighborTraffic,
        BitRotationTraffic,
        BitComplementTraffic,
    )
}


def make_synthetic_traffic(
    name: str,
    topology: MeshTopology,
    injection_rate: float = 0.02,
    packet_size_flits: int = 4,
    seed: int = 0,
) -> SyntheticTraffic:
    """Instantiate a synthetic pattern by its benchmark name."""
    key = name.lower().replace(" ", "_").replace("-", "_")
    if key not in SYNTHETIC_PATTERNS:
        raise KeyError(
            f"unknown synthetic pattern {name!r}; known: {sorted(SYNTHETIC_PATTERNS)}"
        )
    return SYNTHETIC_PATTERNS[key](
        topology,
        injection_rate=injection_rate,
        packet_size_flits=packet_size_flits,
        seed=seed,
    )
