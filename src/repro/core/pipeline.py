"""End-to-end DL2Fence pipeline.

Wires the three stages of Figure 2 into the operational flow described in
Section 3: periodic detection on VCO frames, segmentation of the abnormal BOC
frames, Multi-Frame Fusion + (optional) Victim Completing Enhancement for
victim localization, and the Table-Like Method for attacker localization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.core.detector import DoSDetector
from repro.core.frame_fusion import (
    binarize_frame,
    fuse_direction_masks,
    victims_from_mask,
)
from repro.core.localizer import DoSProfileLocalizer
from repro.core.tlm import TableLikeMethod, estimate_attacker_count
from repro.core.vce import victim_completing_enhancement
from repro.monitor.dataset import (
    DatasetBuilder,
    DetectionDataset,
    LocalizationDataset,
    ScenarioRun,
)
from repro.monitor.features import FeatureKind, normalize_frame
from repro.monitor.frames import FrameSample, from_canonical, pad_to_full_mesh
from repro.monitor.labeling import victim_mask
from repro.nn import ClassificationReport
from repro.noc.topology import Direction, MeshTopology

__all__ = ["LocalizationResult", "DL2Fence"]


@dataclass
class LocalizationResult:
    """Outcome of processing one monitor sample through the full pipeline."""

    cycle: int
    detected: bool
    detection_probability: float
    victims: list[int] = field(default_factory=list)
    attackers: list[int] = field(default_factory=list)
    #: TLM candidates discarded for sitting inside the fused victim set —
    #: route turning points, or on-route attackers posing as one (consumed
    #: by the cross-window evidence accumulator).
    frontier: list[int] = field(default_factory=list)
    abnormal_directions: list[Direction] = field(default_factory=list)
    fused_mask: np.ndarray | None = None
    direction_masks: dict[Direction, np.ndarray] = field(default_factory=dict)
    estimated_attacker_count: int = 0

    @property
    def num_victims(self) -> int:
        return len(self.victims)

    @property
    def num_attackers(self) -> int:
        return len(self.attackers)


class DL2Fence:
    """The complete detection and localization framework."""

    def __init__(
        self,
        topology: MeshTopology,
        config: DL2FenceConfig | None = None,
        detector: DoSDetector | None = None,
        localizer: DoSProfileLocalizer | None = None,
    ) -> None:
        if topology.rows != topology.columns:
            raise ValueError("DL2Fence frame stacking requires a square mesh")
        self.topology = topology
        self.config = config or DL2FenceConfig()
        rows = topology.rows
        self.detector = detector or DoSDetector(
            (rows, rows - 1, 4), config=self.config
        )
        self.localizer = localizer or DoSProfileLocalizer(
            (rows, rows - 1, 1), config=self.config
        )
        self.tlm = TableLikeMethod(topology)
        #: Live fault-aware routing (``None`` = pristine XY mesh).  Set via
        #: :meth:`set_route_provider`; VCE route deduction and TLM candidate
        #: enumeration both follow it so localization stays topology-aware
        #: on a degrading mesh.
        self.route_provider = None

    def set_route_provider(self, provider) -> None:
        """Point the localization stages at the live routing function.

        ``provider`` is a :class:`repro.noc.route_provider.RouteProvider`
        (or ``None`` to restore pristine XY).  Idempotent and cheap, so the
        runtime guard can call it every sampling window.
        """
        self.route_provider = provider
        self.tlm.set_route_provider(provider)

    # -- training -----------------------------------------------------------
    def fit(
        self,
        detection_dataset: DetectionDataset,
        localization_dataset: LocalizationDataset,
        detector_epochs: int = 60,
        localizer_epochs: int = 80,
    ) -> dict:
        """Train both CNNs; returns the two training summaries."""
        det_summary = self.detector.fit(detection_dataset, epochs=detector_epochs)
        loc_summary = self.localizer.fit(localization_dataset, epochs=localizer_epochs)
        return {"detector": det_summary, "localizer": loc_summary}

    def fit_from_runs(
        self,
        builder: DatasetBuilder,
        runs: list[ScenarioRun],
        detector_epochs: int = 60,
        localizer_epochs: int = 80,
    ) -> dict:
        """Convenience: assemble datasets from runs (per config) and train."""
        detection = builder.detection_dataset(
            runs,
            feature=self.config.detection_feature,
            normalize=self.config.detection_normalization,
        )
        localization = builder.localization_dataset(
            runs,
            feature=self.config.localization_feature,
            normalize=self.config.localization_normalization,
        )
        return self.fit(
            detection,
            localization,
            detector_epochs=detector_epochs,
            localizer_epochs=localizer_epochs,
        )

    # -- online processing -------------------------------------------------------
    def process_sample(
        self,
        sample: FrameSample,
        force_localization: bool = False,
        detection: tuple[bool, float] | None = None,
    ) -> LocalizationResult:
        """Run one monitor sample through detection, segmentation and fusion.

        ``detection`` may carry an already-computed ``(detected,
        probability)`` pair for this sample so a caller re-running the
        localization stages (the guard's sub-threshold evidence path) does
        not pay the detector forward pass twice.
        """
        detection_frames = sample.feature(self.config.detection_feature)
        if detection is None:
            detection = self.detector.detect(detection_frames)
        detected, probability = detection
        result = LocalizationResult(
            cycle=sample.cycle, detected=detected, detection_probability=probability
        )
        if not detected and not force_localization:
            return result

        localization_frames = sample.feature(self.config.localization_feature)
        prepared: dict[Direction, np.ndarray] = {}
        for direction in Direction.cardinal():
            values = localization_frames[direction].values
            if self.config.localization_normalization != "none":
                values = normalize_frame(
                    values, method=self.config.localization_normalization
                )
            prepared[direction] = values
        # One batched CNN call for all four directions (the online fast path).
        direction_masks = self.localizer.segment_frames(prepared)
        abnormal: list[Direction] = []
        for direction in Direction.cardinal():
            probability_mask = direction_masks[direction]
            positives = int(
                (probability_mask >= self.config.segmentation_threshold).sum()
            )
            if positives >= self.config.abnormal_frame_threshold:
                abnormal.append(direction)

        result.direction_masks = direction_masks
        result.abnormal_directions = abnormal
        if not abnormal:
            result.fused_mask = np.zeros(
                (self.topology.rows, self.topology.columns), dtype=np.float64
            )
            return result

        fused = fuse_direction_masks(
            {direction: direction_masks[direction] for direction in abnormal},
            self.topology,
            threshold=self.config.binarization_threshold,
            mode=self.config.fusion_mode,
            canonical=True,
        )
        direction_victims = self._direction_victims(direction_masks, abnormal)
        victims = set(victims_from_mask(fused, self.topology))

        if self.config.enable_vce:
            victims = victim_completing_enhancement(
                self.topology,
                victims,
                direction_victims,
                route_provider=self.route_provider,
            )
            fused = self._mask_from_victims(victims)

        result.fused_mask = fused
        result.victims = sorted(victims)
        result.estimated_attacker_count = estimate_attacker_count(
            self.topology, direction_victims
        )
        tlm_results, frontier = self.tlm.localize_with_frontier(
            direction_victims, fused_victims=victims
        )
        result.attackers = sorted(r.attacker for r in tlm_results)
        result.frontier = frontier
        return result

    def _direction_victims(
        self,
        direction_masks: dict[Direction, np.ndarray],
        abnormal: list[Direction],
    ) -> dict[Direction, set[int]]:
        """Node ids flagged per abnormal direction (natural orientation)."""
        out: dict[Direction, set[int]] = {}
        for direction in abnormal:
            binary = binarize_frame(
                direction_masks[direction], self.config.binarization_threshold
            )
            natural = from_canonical(binary, direction)
            full = pad_to_full_mesh(natural, self.topology, direction)
            out[direction] = set(victims_from_mask(full, self.topology))
        return out

    def _mask_from_victims(self, victims: set[int]) -> np.ndarray:
        mask = np.zeros((self.topology.rows, self.topology.columns), dtype=np.float64)
        for node in victims:
            x, y = self.topology.coordinates(node)
            mask[y, x] = 1.0
        return mask

    # -- evaluation ------------------------------------------------------------
    def evaluate_detection(self, dataset: DetectionDataset) -> ClassificationReport:
        """Frame-level detection metrics on a detection dataset."""
        return self.detector.evaluate(dataset)

    def evaluate_localization(
        self, runs: list[ScenarioRun], force_localization: bool = True
    ) -> ClassificationReport:
        """Node-level localization metrics over attacked runs.

        For every attack-active sample the fused victim mask is compared
        against the ground-truth victim mask (target victim + all RPVs);
        per-node decisions are accumulated over all samples into one report,
        matching how Figure 4 reports localization accuracy/precision/recall.
        """
        y_true: list[np.ndarray] = []
        y_pred: list[np.ndarray] = []
        for run in runs:
            if run.scenario is None:
                continue
            truth = victim_mask(run.topology, run.scenario)
            for sample in run.samples:
                if not sample.attack_active:
                    continue
                result = self.process_sample(
                    sample, force_localization=force_localization
                )
                predicted = (
                    result.fused_mask
                    if result.fused_mask is not None
                    else np.zeros_like(truth)
                )
                y_true.append(truth.reshape(-1))
                y_pred.append(predicted.reshape(-1))
        if not y_true:
            raise ValueError("no attacked samples available for localization evaluation")
        return ClassificationReport.from_predictions(
            np.concatenate(y_true), np.concatenate(y_pred)
        )

    def evaluate_attacker_localization(
        self, runs: list[ScenarioRun], force_localization: bool = True
    ) -> dict[str, float]:
        """Attacker-level localization quality over attacked runs.

        Reports the fraction of true attackers found (recall), the fraction
        of reported attackers that are real (precision) and the fraction of
        samples where the full attacker set was exactly recovered.
        """
        found = 0
        reported = 0
        true_total = 0
        exact = 0
        samples = 0
        for run in runs:
            if run.scenario is None:
                continue
            true_attackers = set(run.scenario.attackers)
            for sample in run.samples:
                if not sample.attack_active:
                    continue
                result = self.process_sample(
                    sample, force_localization=force_localization
                )
                predicted = set(result.attackers)
                samples += 1
                true_total += len(true_attackers)
                reported += len(predicted)
                found += len(true_attackers & predicted)
                if predicted == true_attackers:
                    exact += 1
        if samples == 0:
            raise ValueError("no attacked samples available for attacker evaluation")
        return {
            "attacker_recall": found / true_total if true_total else 1.0,
            "attacker_precision": found / reported if reported else 0.0,
            "exact_match_rate": exact / samples,
            "samples": float(samples),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DL2Fence(mesh={self.topology.rows}x{self.topology.columns}, "
            f"det={self.config.detection_feature.value}, "
            f"loc={self.config.localization_feature.value})"
        )
