"""Victim Completing Enhancement (VCE).

The VCE is a configurable refinement stage (Algorithm 1, lines 9-13): when the
Multi-Frame Fusion result misses part of the attacking route (segmentation is
never pixel-perfect), the complete set of Routing-Path Victims can be deduced
by re-running the deterministic XY routing between a *pseudo source* adjacent
to the estimated attacker and the estimated target victim.  Because routing is
deterministic, the deduced RPV set is exact whenever the two endpoints are
estimated correctly — which is why the paper recommends enabling VCE only when
the initial detection phase is accurate enough.
"""

from __future__ import annotations

import numpy as np

from repro.noc.routing import UnroutableError, xy_route_path
from repro.noc.topology import Direction, MeshTopology

__all__ = ["estimate_flow_endpoints", "victim_completing_enhancement"]


def estimate_flow_endpoints(
    topology: MeshTopology, direction_victims: dict[Direction, set[int]]
) -> list[tuple[int, int]]:
    """Estimate (pseudo_source, target_victim) pairs from per-direction victims.

    Under XY routing a flow first travels along the X axis and then along the
    Y axis, so:

    * an EAST-abnormal leg starts (closest to the attacker) at its *largest*
      node id and flows towards smaller ids; a WEST-abnormal leg is the
      mirror image;
    * a NORTH-abnormal leg terminates at its *smallest* node id (the flow
      moves south) and a SOUTH-abnormal leg at its largest.

    The pseudo source of a flow is the route node adjacent to the attacker
    (the far end of the X leg, or of the Y leg when there is no X leg); the
    target victim is the far end of the Y leg (or of the X leg when the flow
    never turns).
    """
    east = direction_victims.get(Direction.EAST, set())
    west = direction_victims.get(Direction.WEST, set())
    north = direction_victims.get(Direction.NORTH, set())
    south = direction_victims.get(Direction.SOUTH, set())

    y_end: int | None = None
    if north:
        y_end = min(north)
    if south:
        y_end = max(south) if y_end is None else y_end

    pairs: list[tuple[int, int]] = []
    for x_leg, pick_source in ((east, max), (west, min)):
        if not x_leg:
            continue
        source = pick_source(x_leg)
        if y_end is not None:
            pairs.append((source, y_end))
        else:
            # Pure X-direction flow: the target is the opposite end of the leg.
            target = min(x_leg) if pick_source is max else max(x_leg)
            if target != source:
                pairs.append((source, target))
            else:
                pairs.append((source, source))
    if not pairs and (north or south):
        # Pure Y-direction flow(s).
        if north:
            pairs.append((max(north), min(north)))
        if south:
            pairs.append((min(south), max(south)))
    return pairs


def victim_completing_enhancement(
    topology: MeshTopology,
    fused_victims: set[int],
    direction_victims: dict[Direction, set[int]],
    route_provider=None,
) -> set[int]:
    """Complete the victim set by reverse routing deduction.

    Returns the union of the fused victims and every node on the route
    between each estimated (pseudo source, target victim) pair.  With a
    ``route_provider`` (degraded mesh) the deduction re-runs the *live*
    fault-aware routing function instead of XY, so the completed set names
    the routers the flow actually occupies; endpoint pairs the degraded
    mesh cannot connect contribute nothing.
    """
    completed = set(fused_victims)
    for source, target in estimate_flow_endpoints(topology, direction_victims):
        if source == target:
            completed.add(source)
            continue
        if route_provider is None:
            completed.update(xy_route_path(topology, source, target))
        else:
            try:
                completed.update(route_provider.route_path(source, target))
            except UnroutableError:
                continue
    return completed
