"""Configuration of the DL2Fence framework.

The configuration captures the design choices discussed in Section 4 of the
paper — which feature feeds which stage, whether the Victim Completing
Enhancement is enabled, model capacity, and the various thresholds — so the
ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.monitor.features import FeatureKind

__all__ = ["DL2FenceConfig"]


@dataclass(frozen=True)
class DL2FenceConfig:
    """All tunables of the DL2Fence framework.

    Attributes
    ----------
    detection_feature, localization_feature:
        Which runtime feature each stage consumes.  The paper's chosen
        configuration (Table 3) is VCO for detection and BOC for
        localization; Tables 1 and 2 are the single-feature ablations.
    detection_normalization, localization_normalization:
        Frame normalization applied before model inference.  VCO is already a
        float in [0, 1] so it defaults to ``"none"``; BOC accumulates integer
        counts so it defaults to ``"max"``.
    detection_threshold:
        Probability above which the detector flags an attack.
    segmentation_threshold:
        Per-pixel probability above which the localizer marks a victim.
    binarization_threshold:
        Threshold used when binarizing segmentation results before fusion
        (Algorithm 1, line 2).
    fusion_mode:
        ``"union"`` marks a victim when any direction flags it (MFF >= 1);
        ``"exact"`` follows the literal ``MFF == 1`` of Algorithm 1.
    enable_vce:
        Enable the Victim Completing Enhancement (reverse-XY deduction of the
        complete RPV set).  The paper makes this configurable because it only
        helps when the initial detection is accurate enough.
    detector_filters, detector_kernel_size, detector_pool_size:
        Capacity of the CNN classification model (8 kernels in the paper).
    localizer_filters, localizer_kernel_size, localizer_conv_layers:
        Capacity of the CNN segmentation model (two conv layers of 8 kernels
        in the paper); the depth is exposed for the ablation bench.
    abnormal_frame_threshold:
        Minimum number of segmentation-positive pixels for a directional
        frame to count as "abnormal" (feeds the TLM attacker-count logic).
    seed:
        Seed used for model initialisation and training shuffles.
    """

    detection_feature: FeatureKind = FeatureKind.VCO
    localization_feature: FeatureKind = FeatureKind.BOC
    detection_normalization: str = "none"
    localization_normalization: str = "max"
    detection_threshold: float = 0.5
    segmentation_threshold: float = 0.5
    binarization_threshold: float = 0.5
    fusion_mode: str = "union"
    enable_vce: bool = False
    detector_filters: int = 8
    detector_kernel_size: int = 3
    detector_pool_size: int = 2
    localizer_filters: int = 8
    localizer_kernel_size: int = 3
    localizer_conv_layers: int = 2
    abnormal_frame_threshold: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.detection_threshold < 1.0:
            raise ValueError("detection_threshold must be in (0, 1)")
        if not 0.0 < self.segmentation_threshold < 1.0:
            raise ValueError("segmentation_threshold must be in (0, 1)")
        if not 0.0 < self.binarization_threshold < 1.0:
            raise ValueError("binarization_threshold must be in (0, 1)")
        if self.fusion_mode not in ("union", "exact"):
            raise ValueError("fusion_mode must be 'union' or 'exact'")
        if self.detector_filters < 1 or self.localizer_filters < 1:
            raise ValueError("filter counts must be >= 1")
        if self.localizer_conv_layers < 1:
            raise ValueError("localizer_conv_layers must be >= 1")
        if self.abnormal_frame_threshold < 1:
            raise ValueError("abnormal_frame_threshold must be >= 1")

    # -- convenience ------------------------------------------------------
    def with_features(
        self, detection: FeatureKind, localization: FeatureKind
    ) -> "DL2FenceConfig":
        """Copy of the config with a different feature assignment.

        Normalization defaults follow the feature: VCO needs none, BOC is
        max-normalised (Section 4 of the paper).
        """
        return replace(
            self,
            detection_feature=detection,
            localization_feature=localization,
            detection_normalization="none" if detection is FeatureKind.VCO else "max",
            localization_normalization="none" if localization is FeatureKind.VCO else "max",
        )

    @classmethod
    def paper_default(cls) -> "DL2FenceConfig":
        """The configuration evaluated in Table 3: VCO detection + BOC localization."""
        return cls()
