"""DoS Detector: CNN classification over four-direction feature frames.

The detector (Figure 2, left) is a deliberately lightweight CNN: one
convolutional layer of 8 kernels with ReLU, one max-pooling layer, a flatten
layer and a single sigmoid dense unit.  It consumes the E, N, W, S feature
frames of one sampling instant as a 4-channel image and outputs the
probability that a flooding attack is in progress anywhere on the NoC.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.monitor.dataset import DetectionDataset
from repro.monitor.frames import FrameSet
from repro.nn import (
    Adam,
    ClassificationReport,
    Conv2D,
    Dense,
    EarlyStopping,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Trainer,
    load_model,
    save_model,
)

__all__ = ["effective_pool_size", "build_detector_model", "DoSDetector"]


def effective_pool_size(
    input_shape: tuple[int, int, int], kernel_size: int, pool_size: int
) -> int:
    """Largest pooling window (<= ``pool_size``) that fits after the convolution.

    Small meshes (e.g. the 4x4 point of the hardware sweep) leave a post-conv
    feature map too small for the default 2x2 pooling; this shrinks the pool
    window down to 1 instead of failing.
    """
    height, width, _ = input_shape
    conv_h = height - kernel_size + 1
    conv_w = width - kernel_size + 1
    if conv_h < 1 or conv_w < 1:
        raise ValueError(
            f"mesh too small for a {kernel_size}x{kernel_size} kernel: {input_shape}"
        )
    return max(1, min(pool_size, conv_h, conv_w))


def build_detector_model(
    input_shape: tuple[int, int, int],
    filters: int = 8,
    kernel_size: int = 3,
    pool_size: int = 2,
    seed: int = 0,
) -> Sequential:
    """Build the CNN classification model of Figure 2.

    ``input_shape`` is ``(rows, rows - 1, 4)`` on a square mesh: the four
    directional frames stacked as channels.
    """
    if len(input_shape) != 3:
        raise ValueError("detector input must be (height, width, channels)")
    pool_size = effective_pool_size(tuple(input_shape), kernel_size, pool_size)
    model = Sequential(
        [
            Conv2D(filters=filters, kernel_size=kernel_size, padding="valid"),
            ReLU(),
            MaxPool2D(pool_size=pool_size),
            Flatten(),
            Dense(1),
            Sigmoid(),
        ],
        seed=seed,
    )
    model.build(input_shape)
    return model


@dataclass
class DetectorTrainingSummary:
    """Outcome of a detector training run."""

    epochs: int
    final_loss: float
    final_accuracy: float


class DoSDetector:
    """Frame-level flooding-attack detector."""

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        config: DL2FenceConfig | None = None,
        model: Sequential | None = None,
    ) -> None:
        self.config = config or DL2FenceConfig()
        self.input_shape = tuple(int(d) for d in input_shape)
        self.model = model or build_detector_model(
            self.input_shape,
            filters=self.config.detector_filters,
            kernel_size=self.config.detector_kernel_size,
            pool_size=self.config.detector_pool_size,
            seed=self.config.seed,
        )
        self.trained = model is not None
        #: 95th percentile of the detector's probability on *benign* training
        #: samples — its resting operating point.  Consumers (the evidence
        #: accumulator's stealth floor) use it to tell "slightly elevated"
        #: from "this detector always hums at 0.35": absolute probability
        #: levels are an artifact of the trained model and mesh scale.
        self.benign_calibration: float | None = None

    # -- training ------------------------------------------------------------
    def fit(
        self,
        dataset: DetectionDataset,
        epochs: int = 60,
        batch_size: int = 16,
        learning_rate: float = 0.005,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        patience: int = 15,
    ) -> DetectorTrainingSummary:
        """Train the detector on a :class:`DetectionDataset`."""
        trainer = Trainer(
            self.model,
            loss="bce",
            optimizer=Adam(learning_rate=learning_rate),
            metric="accuracy",
            seed=self.config.seed,
        )
        history = trainer.fit(
            dataset.inputs,
            dataset.labels,
            epochs=epochs,
            batch_size=batch_size,
            validation_data=validation_data,
            early_stopping=EarlyStopping(patience=patience),
        )
        self.trained = True
        benign = dataset.inputs[dataset.labels.reshape(-1) < 0.5]
        if benign.shape[0]:
            self.benign_calibration = float(
                np.percentile(self.predict_proba(benign), 95)
            )
        return DetectorTrainingSummary(
            epochs=history.epochs,
            final_loss=history.loss[-1],
            final_accuracy=history.metric[-1],
        )

    # -- inference -------------------------------------------------------------
    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Attack probability for a batch of (H, W, 4) frame stacks."""
        inputs = np.asarray(inputs, dtype=self.model.dtype)
        if inputs.ndim == 3:
            inputs = inputs[None, ...]
        return self.model.predict(inputs).reshape(-1)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Binary attack decision for a batch of frame stacks."""
        return (self.predict_proba(inputs) >= self.config.detection_threshold).astype(
            np.int64
        )

    def detect(self, frame_set: FrameSet) -> tuple[bool, float]:
        """Online API: decide on a single :class:`FrameSet` sample."""
        stacked = frame_set.as_detector_input(
            normalize=self.config.detection_normalization
        )
        probability = float(self.predict_proba(stacked)[0])
        return probability >= self.config.detection_threshold, probability

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, dataset: DetectionDataset) -> ClassificationReport:
        """Frame-level detection metrics (accuracy/precision/recall/F1)."""
        probabilities = self.predict_proba(dataset.inputs)
        return ClassificationReport.from_predictions(
            dataset.labels.reshape(-1),
            probabilities,
            threshold=self.config.detection_threshold,
        )

    # -- persistence --------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist the trained model (``.npz``) plus its calibration sidecar."""
        saved = save_model(self.model, path)
        sidecar = self._calibration_path(saved)
        if self.benign_calibration is not None:
            sidecar.write_text(
                json.dumps({"benign_calibration": self.benign_calibration})
            )
        else:
            # An uncalibrated model must not inherit a previous occupant's
            # sidecar at the same path — stale calibration would silently
            # misplace the evidence accumulator's stealth floor.
            sidecar.unlink(missing_ok=True)
        return saved

    @classmethod
    def load(
        cls, path: str | Path, config: DL2FenceConfig | None = None
    ) -> "DoSDetector":
        """Load a previously saved detector (calibration sidecar optional)."""
        model = load_model(path)
        detector = cls(model.input_shape, config=config, model=model)
        detector.trained = True
        sidecar = cls._calibration_path(Path(path))
        if sidecar.exists():
            detector.benign_calibration = float(
                json.loads(sidecar.read_text())["benign_calibration"]
            )
        return detector

    @staticmethod
    def _calibration_path(model_path: Path) -> Path:
        return Path(model_path).with_suffix(".calibration.json")

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count (input to the hardware area model)."""
        return self.model.num_parameters
