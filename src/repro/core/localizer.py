"""DoS Profile Localizer: CNN segmentation over abnormal feature frames.

The localizer (Figure 2, middle) is a small fully-convolutional segmentation
model: a stack of 'same'-padded convolutional layers (two in the paper, each
with 8 kernels) followed by a 1-channel sigmoid output layer.  Given one
directional BOC frame it produces a per-pixel probability that the
corresponding router's input port carries flooding traffic — the "DoS
profile" whose fusion reconstructs the attacking route.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.monitor.dataset import LocalizationDataset
from repro.monitor.frames import to_canonical
from repro.nn import (
    Adam,
    ClassificationReport,
    Conv2D,
    EarlyStopping,
    ReLU,
    Sequential,
    Sigmoid,
    Trainer,
    combined_bce_dice,
    dice_coefficient,
    load_model,
    save_model,
    segmentation_report,
)
from repro.noc.topology import Direction

__all__ = ["build_localizer_model", "DoSProfileLocalizer"]


def build_localizer_model(
    input_shape: tuple[int, int, int],
    filters: int = 8,
    kernel_size: int = 3,
    conv_layers: int = 2,
    seed: int = 0,
) -> Sequential:
    """Build the CNN segmentation model of Figure 2.

    ``conv_layers`` counts the hidden convolutional layers before the
    1-channel output convolution; the paper uses two and notes that adding
    more improves dice accuracy at a hardware cost (see the ablation bench).
    """
    if len(input_shape) != 3:
        raise ValueError("localizer input must be (height, width, channels)")
    if conv_layers < 1:
        raise ValueError("conv_layers must be >= 1")
    layers = []
    for _ in range(conv_layers):
        layers.append(Conv2D(filters=filters, kernel_size=kernel_size, padding="same"))
        layers.append(ReLU())
    layers.append(Conv2D(filters=1, kernel_size=kernel_size, padding="same"))
    layers.append(Sigmoid())
    model = Sequential(layers, seed=seed)
    model.build(input_shape)
    return model


@dataclass
class LocalizerTrainingSummary:
    """Outcome of a localizer training run."""

    epochs: int
    final_loss: float
    final_dice: float


class DoSProfileLocalizer:
    """Per-direction segmentation of the flooding route."""

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        config: DL2FenceConfig | None = None,
        model: Sequential | None = None,
    ) -> None:
        self.config = config or DL2FenceConfig()
        self.input_shape = tuple(int(d) for d in input_shape)
        self.model = model or build_localizer_model(
            self.input_shape,
            filters=self.config.localizer_filters,
            kernel_size=self.config.localizer_kernel_size,
            conv_layers=self.config.localizer_conv_layers,
            seed=self.config.seed,
        )
        self.trained = model is not None

    # -- training ------------------------------------------------------------
    def fit(
        self,
        dataset: LocalizationDataset,
        epochs: int = 80,
        batch_size: int = 16,
        learning_rate: float = 0.01,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        patience: int = 20,
    ) -> LocalizerTrainingSummary:
        """Train the localizer on a :class:`LocalizationDataset`."""
        trainer = Trainer(
            self.model,
            loss=combined_bce_dice(bce_weight=0.5, dice_weight=0.5),
            optimizer=Adam(learning_rate=learning_rate),
            metric="dice",
            seed=self.config.seed,
        )
        history = trainer.fit(
            dataset.inputs,
            dataset.masks,
            epochs=epochs,
            batch_size=batch_size,
            validation_data=validation_data,
            early_stopping=EarlyStopping(patience=patience),
        )
        self.trained = True
        return LocalizerTrainingSummary(
            epochs=history.epochs,
            final_loss=history.loss[-1],
            final_dice=history.metric[-1],
        )

    # -- inference -------------------------------------------------------------
    def predict_masks(self, inputs: np.ndarray) -> np.ndarray:
        """Per-pixel probabilities for a batch of (H, W, 1) directional frames."""
        inputs = np.asarray(inputs, dtype=self.model.dtype)
        if inputs.ndim == 3:
            inputs = inputs[None, ...]
        return self.model.predict(inputs)

    def segment_frame(self, frame: np.ndarray, direction: Direction) -> np.ndarray:
        """Online API: segment one directional frame given in natural orientation.

        Returns the probability mask in the *canonical* orientation used by
        the fusion stage (the caller un-rotates when padding).
        """
        canonical = to_canonical(np.asarray(frame, dtype=np.float64), direction)
        return self.predict_masks(canonical[..., None])[0, ..., 0]

    def segment_frames(
        self, frames: dict[Direction, np.ndarray]
    ) -> dict[Direction, np.ndarray]:
        """Segment several directional frames in one batched forward pass.

        Equivalent to calling :meth:`segment_frame` per direction but runs a
        single CNN inference over the stacked canonical frames — the fast
        path the online pipeline uses every sampling window, where one call
        amortises the convolution setup across all four directions.
        """
        if not frames:
            return {}
        directions = list(frames)
        batch = np.stack(
            [
                to_canonical(np.asarray(frames[direction], dtype=np.float64), direction)
                for direction in directions
            ],
            axis=0,
        )[..., None]
        masks = self.predict_masks(batch)
        return {
            direction: masks[index, ..., 0]
            for index, direction in enumerate(directions)
        }

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, dataset: LocalizationDataset) -> ClassificationReport:
        """Per-pixel segmentation metrics (accuracy/precision/recall/F1 + dice)."""
        predictions = self.predict_masks(dataset.inputs)
        return segmentation_report(
            dataset.masks,
            predictions,
            threshold=self.config.segmentation_threshold,
        )

    def dice(self, dataset: LocalizationDataset) -> float:
        """Dice coefficient over the whole dataset."""
        predictions = self.predict_masks(dataset.inputs)
        return dice_coefficient(
            dataset.masks, predictions, threshold=self.config.segmentation_threshold
        )

    # -- persistence --------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist the trained model to ``path`` (``.npz``)."""
        return save_model(self.model, path)

    @classmethod
    def load(
        cls, path: str | Path, config: DL2FenceConfig | None = None
    ) -> "DoSProfileLocalizer":
        """Load a previously saved localizer."""
        model = load_model(path)
        localizer = cls(model.input_shape, config=config, model=model)
        localizer.trained = True
        return localizer

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count (input to the hardware area model)."""
        return self.model.num_parameters
