"""Table-Like Method (TLM) for attacker localization.

Figure 3 of the paper enumerates, for every combination of abnormal
directional frames, where the attacker(s) must sit relative to the observed
Routing-Path Victims.  The rules all reduce to the same geometric fact: under
XY routing an attack flow enters the route from *outside* the victim set, one
hop beyond the route end in the direction the abnormal frames point at:

* abnormal EAST frames  -> an attacker at ``max(route ids) + 1``;
* abnormal WEST frames  -> an attacker at ``min(route ids) - 1``;
* abnormal NORTH frames -> an attacker at ``max(route ids) + columns``;
* abnormal SOUTH frames -> an attacker at ``min(route ids) - columns``.

A candidate that is itself part of the fused victim set is a route *turning
point* (the X-leg feeding the Y-leg), not an attacker, and is discarded —
this is what the conditions in the "Two/Three Abnormal Frames" columns of the
table encode.  Multi-attacker scenarios may need several sampling rounds
(after a localized attacker is quarantined the next round reveals the rest),
exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.routing import reverse_xy_sources
from repro.noc.topology import Direction, MeshTopology

__all__ = ["TLMResult", "TableLikeMethod", "estimate_attacker_count"]


@dataclass(frozen=True)
class TLMResult:
    """One localized attacker with the evidence that produced it."""

    attacker: int
    direction: Direction
    evidence: tuple[int, ...] = field(default_factory=tuple)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TLMResult(attacker={self.attacker}, via={self.direction.value})"


def estimate_attacker_count(
    topology: MeshTopology, direction_victims: dict[Direction, set[int]]
) -> int:
    """Estimate how many attackers the abnormal frame combination implies.

    Follows the top rows of Figure 3: a single abnormal frame implies one
    attacker; opposite abnormal frames (E & W, or N & S) imply at least two;
    an X-leg spanning more than one mesh row, or a Y-leg spanning more than
    one column, also implies at least two attackers feeding the same victim.
    """
    abnormal = {d for d, v in direction_victims.items() if v}
    if not abnormal:
        return 0
    columns = topology.columns
    count = 1
    if Direction.EAST in abnormal and Direction.WEST in abnormal:
        count = max(count, 2)
    if Direction.NORTH in abnormal and Direction.SOUTH in abnormal:
        count = max(count, 2)
    for direction in (Direction.EAST, Direction.WEST):
        victims = direction_victims.get(direction, set())
        if victims and max(victims) - min(victims) > columns - 1:
            # The X-leg victims span multiple rows: several attackers flood
            # along parallel rows ("> R" condition of the table).
            count = max(count, 2)
    for direction in (Direction.NORTH, Direction.SOUTH):
        victims = direction_victims.get(direction, set())
        if victims and len({v % columns for v in victims}) > 1:
            # The Y-leg victims span multiple columns.
            count = max(count, 2)
    return count


class TableLikeMethod:
    """Attacker localization from per-direction victim sets.

    ``route_provider`` (optional, also settable later via
    :meth:`set_route_provider`) makes the reverse deduction follow the live
    routing function of a degraded mesh: a candidate whose arrival link
    into the victim route is dead is physically incapable of having caused
    the observed abnormal traffic and is discarded — on a healthy mesh the
    enumeration is exactly the paper's reverse-XY table.
    """

    def __init__(self, topology: MeshTopology, route_provider=None) -> None:
        self.topology = topology
        self.route_provider = route_provider

    def set_route_provider(self, provider) -> None:
        """Track the simulator's live (possibly fault-degraded) routes."""
        self.route_provider = provider

    def _candidates_for_direction(
        self, direction: Direction, victims: set[int]
    ) -> list[int]:
        """Attacker candidates for one abnormal direction.

        When the direction's victims span several rows (E/W) or columns
        (N/S), each row/column hosts an independent attack leg and yields its
        own candidate.
        """
        if not victims:
            return []
        columns = self.topology.columns
        provider = self.route_provider
        candidates: list[int] = []
        if direction in (Direction.EAST, Direction.WEST):
            groups: dict[int, list[int]] = {}
            for node in victims:
                groups.setdefault(node // columns, []).append(node)
        else:
            groups = {}
            for node in victims:
                groups.setdefault(node % columns, []).append(node)
        for group in groups.values():
            for candidate in reverse_xy_sources(self.topology, group, direction):
                # Traffic observed on a victim's ``direction`` input port
                # traveled ``direction.opposite`` out of the candidate; a
                # dead link there rules the candidate out.
                if provider is not None and not provider.link_is_live(
                    candidate, direction.opposite
                ):
                    continue
                candidates.append(candidate)
        return candidates

    def localize(
        self, direction_victims: dict[Direction, set[int]], fused_victims: set[int] | None = None
    ) -> list[TLMResult]:
        """Localize attackers from abnormal-direction victim sets.

        Parameters
        ----------
        direction_victims:
            For each cardinal direction, the node ids whose input port of
            that direction carries abnormal traffic (from the segmentation +
            fusion stages).  Directions with empty sets are ignored.
        fused_victims:
            The complete fused victim set; candidates falling inside it are
            route turning points and are discarded.  Defaults to the union of
            ``direction_victims``.
        """
        results, _ = self.localize_with_frontier(direction_victims, fused_victims)
        return results

    def localize_with_frontier(
        self, direction_victims: dict[Direction, set[int]], fused_victims: set[int] | None = None
    ) -> tuple[list[TLMResult], list[int]]:
        """Like :meth:`localize`, also returning the discarded candidates.

        The second element lists every candidate rejected for falling inside
        the fused victim set — geometrically a route turning point, but also
        exactly where an **on-route attacker** hides (the single-window blind
        spot of the method).  The cross-window evidence accumulator of
        :mod:`repro.defense.evidence` consumes this *frontier* so persistent
        in-victim-set candidates can still be convicted over time.
        """
        if fused_victims is None:
            fused_victims = set()
            for victims in direction_victims.values():
                fused_victims.update(victims)
        results: list[TLMResult] = []
        seen: set[int] = set()
        frontier: set[int] = set()
        for direction in Direction.cardinal():
            victims = direction_victims.get(direction, set())
            if not victims:
                continue
            for candidate in self._candidates_for_direction(direction, victims):
                if candidate in fused_victims:
                    frontier.add(candidate)
                    continue
                if candidate in seen:
                    continue
                seen.add(candidate)
                results.append(
                    TLMResult(
                        attacker=candidate,
                        direction=direction,
                        evidence=tuple(sorted(victims)),
                    )
                )
        return results, sorted(frontier)

    def localize_attackers(
        self, direction_victims: dict[Direction, set[int]], **kwargs
    ) -> list[int]:
        """Convenience wrapper returning only the attacker node ids."""
        return sorted(r.attacker for r in self.localize(direction_victims, **kwargs))
