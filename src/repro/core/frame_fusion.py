"""Multi-Frame Fusion (MFF): reconstructing the attacking route.

Implements Algorithm 1 of the paper: every abnormal segmentation result is
binarized, zero-padded back to the full mesh geometry, and summed; nodes with
a positive fused value are the identified victims (the target victim plus all
Routing-Path Victims).
"""

from __future__ import annotations

import numpy as np

from repro.monitor.frames import from_canonical, pad_to_full_mesh
from repro.noc.topology import Direction, MeshTopology

__all__ = [
    "binarize_frame",
    "multi_frame_fusion",
    "fuse_direction_masks",
    "victims_from_mask",
]


def binarize_frame(frame: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Binarize a segmentation result (Algorithm 1, line 2)."""
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    frame = np.asarray(frame, dtype=np.float64)
    return (frame >= threshold).astype(np.float64)


def multi_frame_fusion(full_frames: list[np.ndarray], mode: str = "union") -> np.ndarray:
    """Fuse already-padded full-mesh binary frames into one victim mask.

    ``mode="union"`` marks a node as victim when *any* direction flagged it
    (MFF >= 1); ``mode="exact"`` follows the literal ``MFF == 1`` reading of
    Algorithm 1, which drops nodes flagged by two directions simultaneously
    (e.g. route turning points seen from both legs).
    """
    if not full_frames:
        raise ValueError("at least one frame is required for fusion")
    shape = full_frames[0].shape
    accumulator = np.zeros(shape, dtype=np.float64)
    for frame in full_frames:
        frame = np.asarray(frame, dtype=np.float64)
        if frame.shape != shape:
            raise ValueError("all fused frames must share the same shape")
        accumulator += frame
    if mode == "union":
        return (accumulator >= 1.0).astype(np.float64)
    if mode == "exact":
        return (accumulator == 1.0).astype(np.float64)
    raise ValueError("mode must be 'union' or 'exact'")


def fuse_direction_masks(
    masks: dict[Direction, np.ndarray],
    topology: MeshTopology,
    threshold: float = 0.5,
    mode: str = "union",
    canonical: bool = True,
) -> np.ndarray:
    """Binarize, un-rotate, zero-pad and fuse per-direction segmentation masks.

    Parameters
    ----------
    masks:
        Mapping of direction to segmentation output.  Masks may be in the
        canonical (CNN) orientation (``canonical=True``, the default — this
        is what the localizer produces) or already in the natural directional
        orientation.
    topology:
        Mesh geometry used for zero padding.
    threshold:
        Binarization threshold.
    mode:
        Fusion mode, see :func:`multi_frame_fusion`.
    """
    if not masks:
        raise ValueError("no direction masks to fuse")
    full_frames = []
    for direction, mask in masks.items():
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim == 3 and mask.shape[-1] == 1:
            mask = mask[..., 0]
        binary = binarize_frame(mask, threshold)
        natural = from_canonical(binary, direction) if canonical else binary
        full_frames.append(pad_to_full_mesh(natural, topology, direction))
    return multi_frame_fusion(full_frames, mode=mode)


def victims_from_mask(mask: np.ndarray, topology: MeshTopology) -> list[int]:
    """Node ids flagged as victims in a full-mesh binary mask.

    Mirrors Algorithm 1's ``Where(MFF == 1)`` followed by ``Get_Node_ID``:
    mask rows index the mesh Y coordinate and columns the X coordinate.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.shape != (topology.rows, topology.columns):
        raise ValueError(
            f"mask shape {mask.shape} does not match mesh "
            f"{(topology.rows, topology.columns)}"
        )
    rows, cols = np.nonzero(mask > 0.5)
    return sorted(topology.node_id(int(x), int(y)) for y, x in zip(rows, cols))
