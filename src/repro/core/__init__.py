"""DL2Fence core: the paper's primary contribution.

The framework has three stages (Figure 2 of the paper):

1. **DoS Detector** — a lightweight CNN classifier over the four directional
   VCO feature frames (:class:`~repro.core.detector.DoSDetector`);
2. **DoS Profile Localizer** — a CNN segmentation model over abnormal BOC
   frames (:class:`~repro.core.localizer.DoSProfileLocalizer`);
3. **Victims & Attackers Localization** — binarization + zero padding +
   Multi-Frame Fusion reconstructs the attacking route and all victims
   (:mod:`~repro.core.frame_fusion`), optionally refined by the Victim
   Completing Enhancement (:mod:`~repro.core.vce`), and the Table-Like Method
   pinpoints the attackers (:mod:`~repro.core.tlm`).

:class:`~repro.core.pipeline.DL2Fence` wires the stages into the end-to-end
online detection/localization loop described in Section 3.
"""

from repro.core.config import DL2FenceConfig
from repro.core.detector import DoSDetector, build_detector_model
from repro.core.frame_fusion import (
    binarize_frame,
    fuse_direction_masks,
    multi_frame_fusion,
    victims_from_mask,
)
from repro.core.localizer import DoSProfileLocalizer, build_localizer_model
from repro.core.pipeline import DL2Fence, LocalizationResult
from repro.core.tlm import TableLikeMethod, TLMResult, estimate_attacker_count
from repro.core.vce import victim_completing_enhancement, estimate_flow_endpoints

__all__ = [
    "DL2Fence",
    "DL2FenceConfig",
    "DoSDetector",
    "DoSProfileLocalizer",
    "LocalizationResult",
    "TLMResult",
    "TableLikeMethod",
    "binarize_frame",
    "build_detector_model",
    "build_localizer_model",
    "estimate_attacker_count",
    "estimate_flow_endpoints",
    "fuse_direction_masks",
    "multi_frame_fusion",
    "victim_completing_enhancement",
    "victims_from_mask",
]
