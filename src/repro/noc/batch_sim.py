"""Episode-batched simulation driver over :class:`BatchedSoAMeshNetwork`.

:class:`BatchedNoCSimulator` advances N independent simulation episodes —
each with its own traffic sources, observers and defense hooks — with one
kernel dispatch per cycle.  Each episode is wired through a
:class:`LaneSimulator`, a view that exposes the :class:`NoCSimulator`
surface (``add_source`` / ``add_observer`` / ``network`` / ``stats`` /
throttle hooks) so existing consumers — the global performance monitor, the
dataset builder, the defense guard — attach to a lane exactly as they would
to a solo simulator.

Ingress is grouped: each cycle, the batch-capable sources at the same
source *position* across lanes are drained together and handed to
:meth:`BatchedSoAMeshNetwork.enqueue_group` as one cross-episode sweep.
Positions are processed outer-loop so the within-lane enqueue order
(workload before attacker) matches the solo simulator's source order, and
every source keeps its own per-episode RNG stream — the emitted packet
streams are identical per episode to a solo run with the same seeds
(pinned by ``tests/noc/test_batched_equivalence.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.noc.backend import resolve_backend
from repro.noc.route_provider import RouteProvider
from repro.noc.simulator import SimulationConfig, TrafficSource
from repro.noc.soa_batch import BatchedSoAMeshNetwork, SoAMeshLane
from repro.noc.stats import LatencyStats
from repro.obs.bus import BUS

__all__ = ["BatchedNoCSimulator", "LaneSimulator"]


class LaneSimulator:
    """The ``NoCSimulator``-facing view of one episode of a batched run.

    Holds the episode's traffic sources and observers; the parent
    :class:`BatchedNoCSimulator` drives them.  Observer callbacks receive
    this lane, so samplers written against ``NoCSimulator`` (reading
    ``.network`` / ``.cycle`` / ``.sources``) run unchanged per episode.
    """

    def __init__(self, parent: "BatchedNoCSimulator", index: int) -> None:
        self._parent = parent
        self.lane_index = index
        self.config = parent.config
        self.topology = parent.topology
        self.backend = parent.backend
        self.network: SoAMeshLane = parent.network.lane(index)
        self.sources: list[TrafficSource] = []
        self._observers: list[tuple[int, Callable[["LaneSimulator"], None]]] = []

    @property
    def cycle(self) -> int:
        return self._parent.cycle

    # -- wiring ------------------------------------------------------------
    def add_source(self, source: TrafficSource) -> None:
        """Attach a traffic source to this episode."""
        self.sources.append(source)

    def add_observer(
        self, period: int, callback: Callable[["LaneSimulator"], None]
    ) -> None:
        """Call ``callback(self)`` every ``period`` cycles after warmup."""
        if period <= 0:
            raise ValueError("observer period must be positive")
        self._observers.append((period, callback))

    # -- runtime defense hooks ---------------------------------------------
    def throttle_node(self, node_id: int, fraction: float) -> None:
        self.network.set_injection_limit(node_id, fraction)

    def quarantine_node(self, node_id: int) -> None:
        self.network.set_injection_limit(node_id, 0.0)

    def release_node(self, node_id: int) -> None:
        self.network.set_injection_limit(node_id, 1.0)

    @property
    def restricted_nodes(self) -> list[int]:
        return self.network.restricted_nodes

    # -- results -----------------------------------------------------------
    @property
    def stats(self):
        return self.network.stats

    def latency(self, benign_only: bool = True) -> LatencyStats:
        return self.network.stats.latency(benign_only=benign_only)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LaneSimulator({self.lane_index} of {self._parent.episodes}, "
            f"cycle={self.cycle})"
        )


class BatchedNoCSimulator:
    """Drives N independent episodes with one kernel dispatch per cycle."""

    def __init__(
        self, config: SimulationConfig | None = None, episodes: int = 1
    ) -> None:
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        self.config = config or SimulationConfig()
        self.backend = resolve_backend(self.config.backend)
        if self.backend != "soa":
            raise ValueError(
                "episode batching requires the 'soa' backend "
                f"(configured: {self.backend!r})"
            )
        self.topology = self.config.topology()
        self.episodes = int(episodes)
        # Constructed directly rather than via build_network(): episodes=1
        # must still yield a batched network here (the N=1 equivalence pin),
        # while build_network keeps returning the plain solo backend for it.
        self.network = BatchedSoAMeshNetwork(
            self.topology,
            self.episodes,
            num_vcs=self.config.num_vcs,
            vc_depth=self.config.vc_depth,
            injection_bandwidth=self.config.injection_bandwidth,
            source_queue_capacity=self.config.source_queue_capacity,
        )
        self.lanes: list[LaneSimulator] = [
            LaneSimulator(self, index) for index in range(self.episodes)
        ]
        self.cycle = 0
        self._pending_data_faults: list[tuple[int, tuple, tuple]] = []
        self._dead_links: set = set()
        self._dead_routers: set = set()

    def lane(self, index: int) -> LaneSimulator:
        """The per-episode simulator view of episode ``index``."""
        return self.lanes[index]

    # -- data-plane fault hooks ----------------------------------------------
    def schedule_data_fault(
        self, cycle: int, dead_links=(), dead_routers=()
    ) -> None:
        """Kill links/routers at the start of ``cycle`` — in *every* episode.

        Mirrors :meth:`NoCSimulator.schedule_data_fault`; the batched
        network applies the same degraded route tables to each episode
        block, so a lane stays fingerprint-identical to a solo run with the
        same fault schedule.
        """
        if cycle < self.cycle:
            raise ValueError(
                f"cannot schedule a fault at past cycle {cycle} "
                f"(current cycle {self.cycle})"
            )
        self._pending_data_faults.append(
            (cycle, tuple(dead_links), tuple(dead_routers))
        )
        self._pending_data_faults.sort(key=lambda item: item[0])

    def inject_data_fault(self, dead_links=(), dead_routers=()) -> int:
        """Apply a link/router kill to every episode immediately."""
        self._dead_links.update(
            (int(node), direction) for node, direction in dead_links
        )
        self._dead_routers.update(int(node) for node in dead_routers)
        provider = RouteProvider(
            self.topology,
            dead_links=tuple(self._dead_links),
            dead_routers=tuple(self._dead_routers),
        )
        excised = self.network.apply_data_faults(provider)
        if BUS.active:
            BUS.emit(
                "fault_activated",
                cycle=self.cycle,
                dead_links=sorted(
                    [int(node), direction.name]
                    for node, direction in provider.dead_links
                ),
                dead_routers=sorted(int(n) for n in provider.dead_routers),
                excised=int(excised),
            )
        return excised

    @property
    def route_provider(self):
        """Active fault-aware route provider (None on a healthy mesh)."""
        return self.network.route_provider

    @property
    def dead_links(self) -> frozenset:
        """Directed dead links of the active fault set (normalized)."""
        provider = self.network.route_provider
        return provider.dead_links if provider is not None else frozenset()

    @property
    def dead_routers(self) -> frozenset:
        """Dead routers of the active fault set."""
        provider = self.network.route_provider
        return provider.dead_routers if provider is not None else frozenset()

    def _activate_due_faults(self, cycle: int) -> None:
        pending = self._pending_data_faults
        due = [fault for fault in pending if fault[0] <= cycle]
        if not due:
            return
        self._pending_data_faults = [f for f in pending if f[0] > cycle]
        links: list = []
        routers: list = []
        for _, dead_links, dead_routers in due:
            links.extend(dead_links)
            routers.extend(dead_routers)
        self.inject_data_fault(dead_links=links, dead_routers=routers)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Advance every episode by a single cycle."""
        cycle = self.cycle
        if self._pending_data_faults:
            self._activate_due_faults(cycle)
        self._ingress(cycle)
        self.network.step(cycle)
        post_warmup = cycle - self.config.warmup_cycles
        if post_warmup >= 0:
            for lane in self.lanes:
                for period, callback in lane._observers:
                    if post_warmup > 0 and post_warmup % period == 0:
                        callback(lane)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance every episode by ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            self.step()

    def _ingress(self, cycle: int) -> None:
        """Drain every lane's sources for ``cycle``, grouped across lanes.

        Source positions are processed outer-loop: all lanes' position-0
        sources are enqueued before any position-1 source, so the relative
        enqueue order *within* a lane (e.g. benign workload before
        attacker) is exactly the solo simulator's.  Batch emissions of the
        same shape (packet size, malicious flag) are concatenated into one
        cross-lane :meth:`BatchedSoAMeshNetwork.enqueue_group` sweep;
        per-packet sources fall back to the lane's scalar enqueue.
        """
        network = self.network
        max_sources = max((len(lane.sources) for lane in self.lanes), default=0)
        for position in range(max_sources):
            groups: dict[tuple[int, bool], list[tuple[int, np.ndarray, np.ndarray]]]
            groups = {}
            for lane in self.lanes:
                if position >= len(lane.sources):
                    continue
                source = lane.sources[position]
                batch_fn = getattr(source, "packet_batch_for_cycle", None)
                if batch_fn is None:
                    for packet in source.packets_for_cycle(cycle):
                        lane.network.enqueue_packet(packet)
                    continue
                batch = batch_fn(cycle)
                if batch is None:
                    continue
                sources, destinations, size_flits, malicious = batch
                groups.setdefault((int(size_flits), bool(malicious)), []).append(
                    (lane.lane_index, np.asarray(sources), np.asarray(destinations))
                )
            for (size_flits, malicious), entries in groups.items():
                if len(entries) == 1:
                    index, sources, destinations = entries[0]
                    network.lane(index).enqueue_batch(
                        sources, destinations, size_flits, cycle, malicious
                    )
                    continue
                lane_ids = np.concatenate(
                    [
                        np.full(sources.size, index, dtype=np.int64)
                        for index, sources, _ in entries
                    ]
                )
                all_sources = np.concatenate([s for _, s, _ in entries])
                all_destinations = np.concatenate([d for _, _, d in entries])
                network.enqueue_group(
                    lane_ids, all_sources, all_destinations, size_flits, cycle, malicious
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedNoCSimulator({self.topology.rows}x{self.topology.columns}"
            f" x{self.episodes} episodes, cycle={self.cycle})"
        )
