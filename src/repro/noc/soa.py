"""Structure-of-arrays mesh network backend (vectorized hot path).

:class:`SoAMeshNetwork` is a drop-in replacement for
:class:`repro.noc.network.MeshNetwork` whose per-cycle state lives in flat
NumPy arrays — per-VC ring buffers of packed flit words, per-port
occupancy/BOC counters, per-node source-queue rings, injection credits and
a precomputed XY next-hop table — updated by the vectorized kernels of
:mod:`repro.noc.soa_step`.  It exposes the same ``MeshNetwork``-facing
surface the monitor and defense layers use (``enqueue_packet``, ``step``,
``set_injection_limit`` / ``flush_source_queue``, stats, frame counters) and
is pinned behavior-fingerprint-identical to the object backend: the same
seeds produce the same feature frames and the same
``DefenseReport.as_dict()``.

Packet objects still exist — they are registered once at ``enqueue_packet``
and surfaced again at head-injection and tail-ejection so the latency
statistics (:class:`~repro.noc.stats.NetworkStats`) stay shared with the
object backend — but no per-flit or per-router Python object is touched
while the network advances.

The backend is selected through ``REPRO_SIM_BACKEND`` (``soa``, the
default, or ``object``) or explicitly via
``SimulationConfig(backend=...)``; see :func:`repro.noc.backend.resolve_backend`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.noc import soa_step
from repro.noc.packet import Packet
from repro.noc.soa_step import FIDX_MASK, KEY_PERIOD, PKT_SHIFT, TAIL_BIT
from repro.noc.stats import NetworkStats
from repro.noc.topology import Direction, MeshTopology
from repro.obs.metrics import METRICS, sim_phase_histogram

__all__ = ["SoAMeshNetwork", "DIRECTION_INDEX", "mesh_tables"]

#: Fixed direction→axis-index mapping of every per-port array: the LOCAL
#: port first, then the paper's E, N, W, S cardinal order.
DIRECTION_INDEX: dict[Direction, int] = {
    Direction.LOCAL: 0,
    Direction.EAST: 1,
    Direction.NORTH: 2,
    Direction.WEST: 3,
    Direction.SOUTH: 4,
}
_INDEX_DIRECTION = {index: direction for direction, index in DIRECTION_INDEX.items()}


#: Largest node count for which the O(nodes²) XY next-hop table is
#: precomputed; bigger meshes route on the fly from coordinates.  At the
#: default 48x48 cut-over the table already costs ~10 MB of int16 plus
#: ~21 MB of fused int32 route slots; a 64x64 mesh would need 4x that.
#: Override with ``REPRO_XY_TABLE_MAX_NODES`` (0 forces on-the-fly routing
#: everywhere — the equivalence tests use that).
DEFAULT_XY_TABLE_MAX_NODES = 48 * 48


def _xy_table_limit() -> int:
    """Node-count cut-over for the precomputed XY route table."""
    raw = os.environ.get("REPRO_XY_TABLE_MAX_NODES", "")
    return int(raw) if raw else DEFAULT_XY_TABLE_MAX_NODES


def _route_table_enabled(num_nodes: int) -> bool:
    """Whether ``num_nodes`` is small enough for the precomputed route table."""
    return num_nodes <= _xy_table_limit()


@dataclass(frozen=True)
class MeshTables:
    """Static per-topology lookup tables shared by every SoA network.

    ``route[n, d]`` is the XY output direction (as a :data:`DIRECTION_INDEX`
    value) chosen at node ``n`` for destination ``d`` — the precomputed
    next-hop table that replaces per-flit routing calls.  It is ``None``
    past the :data:`DEFAULT_XY_TABLE_MAX_NODES` cut-over, where the switch
    kernel computes directions on the fly from the ``x``/``y`` coordinate
    columns instead (the table is O(nodes²) and stops paying for itself).
    """

    neighbor: np.ndarray  # (N, 5) int64, -1 at the mesh edge
    port_exists: np.ndarray  # (N, 5) bool, input ports present per node
    port_pos: np.ndarray  # (N, 5) int64, position in the router's port list
    nports: np.ndarray  # (N,) int64
    route: np.ndarray | None  # (N, N) int16, XY next-hop direction index
    opposite: np.ndarray  # (5,) int64, direction seen from the other side
    x: np.ndarray  # (N,) int64, node column coordinate
    y: np.ndarray  # (N,) int64, node row coordinate


@dataclass(frozen=True)
class _VcTables:
    """Per-(topology, num_vcs) candidate lookup tables of the switch kernel.

    Indexed by the flat VC id ``q = (node * 5 + port) * num_vcs + vc``:

    * ``q_node`` / ``q_port`` / ``q_node5`` / ``q_node_base`` — the owning
      node, flat port id, ``node * 5`` and ``node * N`` of each VC;
    * ``key_table[phase, q]`` — the rotation-arbitration priority key
      (``rank * num_vcs + vc``) of each VC for every one of the
      :data:`~repro.noc.soa_step.KEY_PERIOD` arbitration phases;
    * ``down_port[node * 5 + out_dir]`` — flat port id of the downstream
      input port reached through ``out_dir`` (-1 at edges / LOCAL);
    * ``route_slot[node * N + dest]`` — the fused XY lookup yielding the
      arbitration slot id ``node * 5 + out_dir`` in a single gather, or
      ``None`` past the route-table cut-over (the switch kernel then
      derives the slot from coordinates on the fly).
    """

    q_node: np.ndarray
    q_port: np.ndarray
    q_node5: np.ndarray
    q_node_base: np.ndarray
    key_table: np.ndarray
    down_port: np.ndarray
    route_slot: np.ndarray | None


#: Keyed by (rows, columns, with_route_table) — the route-table cut-over is
#: part of the identity, so flipping REPRO_XY_TABLE_MAX_NODES can never
#: serve stale tables.
_TABLES_CACHE: dict[tuple[int, int, bool], MeshTables] = {}
#: Keyed by (rows, columns, num_vcs, with_route_table).
_VC_TABLES_CACHE: dict[tuple[int, int, int, bool], _VcTables] = {}


def mesh_tables(topology: MeshTopology) -> MeshTables:
    """Build (or reuse) the static lookup tables for ``topology``."""
    with_route_table = _route_table_enabled(topology.num_nodes)
    cache_key = (topology.rows, topology.columns, with_route_table)
    cached = _TABLES_CACHE.get(cache_key)
    if cached is not None:
        return cached

    rows, cols = topology.rows, topology.columns
    num_nodes = rows * cols
    ids = np.arange(num_nodes, dtype=np.int64)
    x = ids % cols
    y = ids // cols

    neighbor = np.full((num_nodes, 5), -1, dtype=np.int64)
    neighbor[:, DIRECTION_INDEX[Direction.LOCAL]] = ids
    neighbor[x < cols - 1, DIRECTION_INDEX[Direction.EAST]] = ids[x < cols - 1] + 1
    neighbor[y < rows - 1, DIRECTION_INDEX[Direction.NORTH]] = ids[y < rows - 1] + cols
    neighbor[x > 0, DIRECTION_INDEX[Direction.WEST]] = ids[x > 0] - 1
    neighbor[y > 0, DIRECTION_INDEX[Direction.SOUTH]] = ids[y > 0] - cols

    port_exists = neighbor >= 0
    port_exists[:, DIRECTION_INDEX[Direction.LOCAL]] = True

    # Port list order of the object backend's Router: LOCAL first, then the
    # existing input directions in cardinal (E, N, W, S) order.
    port_pos = np.full((num_nodes, 5), -1, dtype=np.int64)
    port_pos[:, 0] = 0
    cardinal = port_exists[:, 1:5].astype(np.int64)
    port_pos[:, 1:5] = np.where(port_exists[:, 1:5], np.cumsum(cardinal, axis=1), -1)
    nports = 1 + cardinal.sum(axis=1)

    route = None
    if with_route_table:
        cx, dx = x[:, None], x[None, :]
        cy, dy = y[:, None], y[None, :]
        route = np.where(
            cx < dx,
            DIRECTION_INDEX[Direction.EAST],
            np.where(
                cx > dx,
                DIRECTION_INDEX[Direction.WEST],
                np.where(
                    cy < dy,
                    DIRECTION_INDEX[Direction.NORTH],
                    np.where(cy > dy, DIRECTION_INDEX[Direction.SOUTH], 0),
                ),
            ),
        ).astype(np.int16)

    opposite = np.array([0, 3, 4, 1, 2], dtype=np.int64)  # L, E→W, N→S, W→E, S→N

    tables = MeshTables(
        neighbor=neighbor,
        port_exists=port_exists,
        port_pos=port_pos,
        nports=nports,
        route=route,
        opposite=opposite,
        x=x,
        y=y,
    )
    _TABLES_CACHE[cache_key] = tables
    return tables


def _vc_tables(topology: MeshTopology, num_vcs: int) -> _VcTables:
    """Build (or reuse) the per-VC lookup tables of the switch kernel."""
    cache_key = (
        topology.rows,
        topology.columns,
        num_vcs,
        _route_table_enabled(topology.num_nodes),
    )
    cached = _VC_TABLES_CACHE.get(cache_key)
    if cached is not None:
        return cached

    tables = mesh_tables(topology)
    num_nodes = topology.num_nodes
    num_slots = num_nodes * 5 * num_vcs
    q = np.arange(num_slots, dtype=np.int64)
    q_node = q // (5 * num_vcs)
    port_dir = (q // num_vcs) % 5
    vci = (q % num_vcs).astype(np.int32)

    pos = tables.port_pos[q_node, port_dir]
    nports = tables.nports[q_node]
    key_table = np.empty((KEY_PERIOD, num_slots), dtype=np.int32)
    for phase in range(KEY_PERIOD):
        rank = (pos - phase % nports) % nports
        key_table[phase] = rank.astype(np.int32) * num_vcs + vci

    down_port = np.full(num_nodes * 5, -1, dtype=np.int64)
    for direction in range(1, 5):
        targets = tables.neighbor[:, direction]
        valid = targets >= 0
        down_port[np.nonzero(valid)[0] * 5 + direction] = (
            targets[valid] * 5 + tables.opposite[direction]
        )

    route_slot = None
    if tables.route is not None:
        node_ids = np.arange(num_nodes, dtype=np.int64)
        route_slot = np.ascontiguousarray(
            (node_ids[:, None] * 5 + tables.route).reshape(-1).astype(np.int32)
        )

    built = _VcTables(
        q_node=q_node,
        q_port=q // num_vcs,
        q_node5=q_node * 5,
        q_node_base=q_node * num_nodes,
        key_table=key_table,
        down_port=down_port,
        route_slot=route_slot,
    )
    _VC_TABLES_CACHE[cache_key] = built
    return built


class SoAMeshNetwork:
    """A 2-D mesh with XY wormhole switching on flat NumPy state arrays."""

    backend_name = "soa"

    def __init__(
        self,
        topology: MeshTopology,
        num_vcs: int = 4,
        vc_depth: int = 4,
        injection_bandwidth: int = 1,
        source_queue_capacity: int = 512,
    ) -> None:
        if injection_bandwidth < 1:
            raise ValueError("injection_bandwidth must be >= 1")
        if source_queue_capacity < 1:
            raise ValueError("source_queue_capacity must be >= 1")
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if vc_depth < 1:
            raise ValueError("virtual channel depth must be >= 1")
        self.topology = topology
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.injection_bandwidth = injection_bandwidth
        self.source_queue_capacity = source_queue_capacity
        self.stats = NetworkStats()
        self.dropped_packets = 0
        # Label-bound metric handles, created on first metered step().
        self._phase_series = None

        self._install_tables()
        # All state arrays are sized by the *array* node count, which equals
        # the topology's node count here but spans every episode block in
        # the batched subclass (repro.noc.soa_batch).
        num_nodes = self._array_nodes
        num_ports = num_nodes * 5
        num_vc_slots = num_ports * num_vcs
        self._arange_vcs = np.arange(num_vcs, dtype=np.int64)
        self._best_key = np.empty(num_ports, dtype=np.int32)
        # Power-of-two fast paths for the kernels: ring-index wraps become a
        # bitwise AND instead of numpy's runtime-divisor ``%`` (a hardware
        # integer division per element), and the LOCAL-output test becomes a
        # gather from a cache-resident bool table instead of ``slot_id % 5``.
        self._depth_mask = vc_depth - 1 if vc_depth & (vc_depth - 1) == 0 else None
        self._cap_mask = (
            source_queue_capacity - 1
            if source_queue_capacity & (source_queue_capacity - 1) == 0
            else None
        )
        self._slot_is_local = np.zeros(num_ports, dtype=bool)
        self._slot_is_local[::5] = True
        # Continuation-VC cache per node: the LOCAL VC the most recent head
        # flit was injected into (see soa_step._inject_pass).
        self._node_vc = np.zeros(num_nodes, dtype=np.int64)
        # First free (= unallocated) VC index per port, or num_vcs when the
        # port has no free VC.  Maintained incrementally by the kernels:
        # head pushes trigger a recompute of their port, tail pops lower the
        # index.  Replaces the per-candidate free-VC grid search.
        self._port_first_free = np.zeros(num_ports, dtype=np.int16)

        # Virtual channels: fixed-depth ring buffers of packed flit words
        # (packet id << 21 | tail bit << 20 | flit index).
        if vc_depth >= 1 << 15:
            raise ValueError("vc_depth too large for the SoA ring index dtype")
        self._vc_slots = np.zeros(num_vc_slots * vc_depth, dtype=np.int64)
        self._vc_head = np.zeros(num_vc_slots, dtype=np.int16)
        self._vc_count = np.zeros(num_vc_slots, dtype=np.int16)
        self._vc_alloc = np.full(num_vc_slots, -1, dtype=np.int32)
        self._vc_down = np.full(num_vc_slots, -1, dtype=np.int32)

        # Per-port observables (VCO/BOC counters of the DL2Fence monitor).
        # When num_vcs is a power of two, every per-cycle ``occupied/V``
        # term — and every partial sum of them — is exactly representable
        # in float64, so windowed occupancy can accumulate as plain integers
        # and divide once at read time, bit-identical to the object
        # backend's per-cycle float accumulation.
        self._buf_writes = np.zeros(num_ports, dtype=np.int64)
        self._buf_reads = np.zeros(num_ports, dtype=np.int64)
        self._occupied = np.zeros(num_ports, dtype=np.int64)
        self._occ_exact = num_vcs & (num_vcs - 1) == 0
        self._occ_sum_int = np.zeros(num_ports, dtype=np.int64)
        self._occ_sum = np.zeros(num_ports, dtype=np.float64)
        self._occ_tmp = np.empty(num_ports, dtype=np.float64)
        self._occ_samples = 0

        # Per-router ejection counters.
        self._flits_ejected = np.zeros(num_nodes, dtype=np.int64)
        self._packets_ejected = np.zeros(num_nodes, dtype=np.int64)

        # Source-queue rings of packed flit words awaiting injection.
        self._sq_vals = np.zeros((num_nodes, source_queue_capacity), dtype=np.int64)
        self._sq_flat = self._sq_vals.reshape(-1)  # shared-memory flat view
        self._sq_head = np.zeros(num_nodes, dtype=np.int64)
        self._sq_count = np.zeros(num_nodes, dtype=np.int64)

        # Injection rate limiting (defense hook) — see MeshNetwork.
        self._limits = np.ones(num_nodes, dtype=np.float64)
        self._allowance = np.zeros(num_nodes, dtype=np.float64)
        self._limited_idx = np.empty(0, dtype=np.int64)

        # Packet registry: the Python objects (for the shared NetworkStats)
        # plus the per-packet fields the kernels need as arrays.
        self._packets: list[Packet] = []
        self._pkt_dest = _GrowableInt()
        self._pkt_injected = _GrowableInt()
        self._flit_templates: dict[int, np.ndarray] = {}

        # Data-plane fault state (dead links/routers).  Fault-free networks
        # keep every one of these untouched, so the hot path is unchanged:
        # ``_dynamic_routes`` stays False and the kernels take the exact
        # pre-existing XY table / on-the-fly branches.
        self._dynamic_routes = False
        self._route_provider = None
        self._route3 = None  # (num_nodes * 5 * num_nodes,) int8, flattened
        self._routable_start = None  # (num_nodes, num_nodes) bool
        self._q_state_base = None
        self.killed_packets = 0
        self.unroutable_packets = 0

    def _install_tables(self) -> None:
        """Bind the static lookup tables and the state-array node count.

        The batched subclass overrides this to install block-diagonal tiled
        tables spanning every episode (see :mod:`repro.noc.soa_batch`); the
        kernels of :mod:`repro.noc.soa_step` are agnostic to the difference.
        """
        self._tables = mesh_tables(self.topology)
        vc_tables = _vc_tables(self.topology, self.num_vcs)
        self._q_node = vc_tables.q_node
        self._q_port = vc_tables.q_port
        self._q_node5 = vc_tables.q_node5
        self._q_node_base = vc_tables.q_node_base
        self._key_table = vc_tables.key_table
        self._down_port = vc_tables.down_port
        self._route_slot = vc_tables.route_slot
        # Per-VC arbitration-slot offset added after the route-table gather;
        # only the batched disjoint-union subclass sets it (its table holds
        # episode-local slot ids).
        self._q_slot_off = None
        self._array_nodes = self.topology.num_nodes

    # -- data-plane faults (dead links / routers) ----------------------------
    @property
    def route_provider(self):
        """The active fault-aware route provider (None on a healthy mesh)."""
        return self._route_provider

    def apply_data_faults(self, provider) -> int:
        """Install a degraded :class:`~repro.noc.route_provider.RouteProvider`.

        Runs atomically between cycles: the state-aware route table replaces
        the XY one, freshly queued packets are gated by start-state
        routability, and every *doomed* in-flight packet is excised wholesale
        — a packet is doomed when any of its VCs sits in a dead router, any
        of its wormhole bindings crosses a dead link, or its head flit's
        ``(node, travel-state)`` can no longer reach the destination under
        the turn model.  After excision the switch kernel never sees an
        unroutable head, so the per-cycle path needs no failure handling.

        Returns the number of in-flight packets killed (also accumulated on
        ``killed_packets``).  The batched subclass applies the same faults
        to every episode block.
        """
        self._route_provider = provider
        self._route3 = np.ascontiguousarray(provider.route_table3.reshape(-1))
        self._routable_start = provider.routable_from_start
        self._install_dynamic_tables()
        self._dynamic_routes = True
        killed = self._excise_doomed(provider)
        self._purge_unroutable_queued(provider, self._doomed_pids)
        self.killed_packets += killed
        return killed

    def _install_dynamic_tables(self) -> None:
        """Per-VC base index into the flattened state-aware route table.

        ``_q_state_base[q] + dest`` lands on ``route3[(node*5 + in_state),
        dest_local]``: the in-state of a VC is the travel direction of the
        hop that filled it (the opposite of its input-port direction; START
        for the LOCAL port).  Written against episode-local node ids so the
        same expression serves the batched disjoint union (the episode bias
        cancels against the global destination id, as for ``q_node_base``).
        """
        n = self.topology.num_nodes
        q = np.arange(self._array_nodes * 5 * self.num_vcs, dtype=np.int64)
        port_dir = (q // self.num_vcs) % 5
        state = self._tables.opposite[port_dir]
        episode = self._q_node // n
        local_node = self._q_node - episode * n
        self._q_state_base = (local_node * 5 + state) * n - episode * n

    def _excise_doomed(self, provider) -> int:
        """Clear every VC of every doomed in-flight packet (administrative
        purge: no buffer-read/BOC accounting, identical in both backends)."""
        self._doomed_pids = np.empty(0, dtype=np.int64)
        n = self.topology.num_nodes
        num_vcs = self.num_vcs
        alloc = self._vc_alloc
        active = np.nonzero(alloc >= 0)[0]
        if active.size == 0:
            return 0
        q_node = self._q_node[active]
        episode = q_node // n
        local_node = q_node - episode * n
        port_dir = self._q_port[active] % 5
        state = self._tables.opposite[port_dir]
        pid = alloc[active].astype(np.int64)
        dest_local = self._pkt_dest.values[pid] - episode * n

        doomed = np.zeros(active.size, dtype=bool)
        if provider.dead_routers:
            dead_router = np.zeros(n, dtype=bool)
            dead_router[sorted(provider.dead_routers)] = True
            doomed |= dead_router[local_node]
        cached = self._vc_down[active]
        bound = np.nonzero(cached >= 0)[0]
        if bound.size:
            out_dir = self._tables.opposite[(cached[bound] // num_vcs) % 5]
            alive = provider.link_alive_matrix
            doomed[bound[~alive[local_node[bound], out_dir]]] = True
        # Head flit at the front of its VC: stranded when its travel state
        # can no longer reach the destination under the turn model.
        hol = self._vc_slots[active * self.vc_depth + self._vc_head[active]]
        head_front = (self._vc_count[active] > 0) & ((hol & FIDX_MASK) == 0)
        route3 = provider.route_table3
        doomed |= head_front & (route3[local_node * 5 + state, dest_local] < 0)

        doomed_pids = np.unique(pid[doomed])
        if doomed_pids.size == 0:
            return 0
        self._doomed_pids = doomed_pids
        # Whole-VC clears are exact: a VC only ever holds flits of its single
        # allocated packet, so no ring surgery is needed.
        victims = active[np.isin(pid, doomed_pids)]
        ports = self._q_port[victims]
        np.add.at(self._occupied, ports, -1)
        self._vc_count[victims] = 0
        self._vc_head[victims] = 0
        self._vc_alloc[victims] = -1
        self._vc_down[victims] = -1
        soa_step._refresh_first_free(self, np.unique(ports))
        return int(doomed_pids.size)

    def _purge_unroutable_queued(self, provider, doomed_pids: np.ndarray) -> None:
        """Drop doomed remnants and START-unroutable packets from the source
        queues (continuation flits of *surviving* partially injected packets
        stay, mirroring ``flush_source_queue``)."""
        n = self.topology.num_nodes
        routable = self._routable_start
        injected = self._pkt_injected.values
        dest = self._pkt_dest.values
        for node in np.nonzero(self._sq_count > 0)[0].tolist():
            count = int(self._sq_count[node])
            slots = (
                self._sq_head[node] + np.arange(count)
            ) % self.source_queue_capacity
            values = self._sq_vals[node, slots]
            pkts = values >> PKT_SHIFT
            local = node % n
            dest_local = dest[pkts] - (node // n) * n
            fresh = injected[pkts] < 0
            drop = np.isin(pkts, doomed_pids) | (
                fresh & ~routable[local, dest_local]
            )
            if not drop.any():
                continue
            keep = ~drop
            kept = int(keep.sum())
            unroutable = int(np.unique(pkts[drop & fresh]).size)
            if unroutable:
                self._credit_unroutable_drops(node, unroutable)
            self._sq_head[node] = 0
            self._sq_count[node] = kept
            if kept:
                self._sq_vals[node, :kept] = values[keep]

    def _credit_unroutable_drops(self, node: int, packets: int) -> None:
        """Account dropped never-injected unroutable packets (lane-aware in
        the batched subclass)."""
        self.dropped_packets += packets
        self.unroutable_packets += packets

    # -- kernel callbacks (rare per-packet events) ---------------------------
    def _record_injected_ids(self, injected_ids: np.ndarray, cycle: int) -> None:
        """Head flits of new packets entered the network this cycle."""
        self._pkt_injected.values[injected_ids] = cycle
        packets = self._packets
        stats = self.stats
        for pid in injected_ids.tolist():
            packet = packets[pid]
            packet.injected_cycle = cycle
            stats.record_injected(packet)

    def _record_ejections(
        self, nodes: np.ndarray, tails: np.ndarray, pids: np.ndarray, cycle: int
    ) -> None:
        """Flits left the network at their LOCAL output this cycle."""
        flits_ejected = self._flits_ejected
        packets_ejected = self._packets_ejected
        packets = self._packets
        stats = self.stats
        for node, tail, pid in zip(nodes.tolist(), tails.tolist(), pids.tolist()):
            flits_ejected[node] += 1
            if tail:
                packets_ejected[node] += 1
                packet = packets[pid]
                packet.ejected_cycle = cycle
                stats.record_delivered(packet)

    # -- injection interface ------------------------------------------------
    def enqueue_packet(self, packet: Packet) -> bool:
        """Queue a packet's flits at its source node (drop when full)."""
        node = packet.source
        size = packet.size_flits
        if self._routable_start is not None and not self._routable_start[
            node, packet.destination
        ]:
            self._credit_unroutable_drops(node, 1)
            return False
        capacity = self.source_queue_capacity
        count = int(self._sq_count[node])
        if count + size > capacity:
            self.dropped_packets += 1
            return False
        self.stats.record_created(packet)
        pid = len(self._packets)
        self._packets.append(packet)
        self._pkt_dest.append(packet.destination)
        self._pkt_injected.append(
            -1 if packet.injected_cycle is None else packet.injected_cycle
        )
        template = self._flit_templates.get(size)
        if template is None:
            template = np.arange(size, dtype=np.int64)
            template[-1] += TAIL_BIT
            self._flit_templates[size] = template
        values = (pid << PKT_SHIFT) + template
        start = (int(self._sq_head[node]) + count) % capacity
        end = start + size
        if end <= capacity:
            self._sq_vals[node, start:end] = values
        else:
            split = capacity - start
            self._sq_vals[node, start:] = values[:split]
            self._sq_vals[node, : end - capacity] = values[split:]
        self._sq_count[node] = count + size
        return True

    def enqueue_batch(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        size_flits: int,
        cycle: int,
        malicious: bool,
    ) -> int:
        """Queue one packet per (source, destination) pair in one sweep.

        The vectorized ingress of :meth:`NoCSimulator.step` for sources
        exposing ``packet_batch_for_cycle``: capacity checks, stat counters
        and source-queue ring writes happen as array operations, with one
        Packet object per accepted packet (the latency statistics and the
        defense report read those).  Semantically identical to calling
        :meth:`enqueue_packet` per packet; sources are expected to emit at
        most one packet per node per cycle (duplicates fall back).
        """
        sources = np.asarray(sources)
        count = sources.size
        if count == 0:
            return 0
        if self._routable_start is not None:
            destinations = np.asarray(destinations)
            routable = self._routable_start[sources, destinations]
            if not routable.all():
                drops = np.bincount(
                    sources[~routable], minlength=self._array_nodes
                )
                for node in np.nonzero(drops)[0].tolist():
                    self._credit_unroutable_drops(node, int(drops[node]))
                sources = sources[routable]
                destinations = destinations[routable]
                count = sources.size
                if count == 0:
                    return 0
        if count < 12 or np.unique(sources).size != count:
            # Small batches (or duplicate sources): the per-packet path beats
            # the fixed cost of the array sweep.
            accepted = 0
            for source, destination in zip(sources.tolist(), destinations.tolist()):
                accepted += self.enqueue_packet(
                    Packet(
                        source=source,
                        destination=destination,
                        size_flits=size_flits,
                        created_cycle=cycle,
                        is_malicious=malicious,
                    )
                )
            return accepted
        capacity = self.source_queue_capacity
        fits = self._sq_count[sources] + size_flits <= capacity
        if not fits.all():
            self.dropped_packets += int(count - fits.sum())
            sources = sources[fits]
            destinations = destinations[fits]
            count = sources.size
            if count == 0:
                return 0
        packets = [
            Packet(
                source=source,
                destination=destination,
                size_flits=size_flits,
                created_cycle=cycle,
                is_malicious=malicious,
            )
            for source, destination in zip(sources.tolist(), destinations.tolist())
        ]
        stats = self.stats
        stats.packets_created += count
        if malicious:
            stats.malicious_packets_created += count
        first_pid = len(self._packets)
        self._packets.extend(packets)
        self._pkt_dest.extend(destinations)
        self._pkt_injected.extend_fill(-1, count)
        template = self._flit_templates.get(size_flits)
        if template is None:
            template = np.arange(size_flits, dtype=np.int64)
            template[-1] += TAIL_BIT
            self._flit_templates[size_flits] = template
        pids = np.arange(first_pid, first_pid + count, dtype=np.int64)
        starts = (self._sq_head[sources] + self._sq_count[sources]) % capacity
        if (starts + size_flits <= capacity).all():
            positions = (sources * capacity + starts)[:, None] + np.arange(size_flits)
            self._sq_flat[positions] = (pids[:, None] << PKT_SHIFT) + template[None, :]
        else:
            values = (pids[:, None] << PKT_SHIFT) + template[None, :]
            for row, (node, start) in enumerate(
                zip(sources.tolist(), starts.tolist())
            ):
                end = start + size_flits
                if end <= capacity:
                    self._sq_vals[node, start:end] = values[row]
                else:
                    split = capacity - start
                    self._sq_vals[node, start:] = values[row, :split]
                    self._sq_vals[node, : end - capacity] = values[row, split:]
        self._sq_count[sources] += size_flits
        return count

    # -- injection rate limiting (defense hook) -----------------------------
    def set_injection_limit(self, node_id: int, fraction: float) -> None:
        """Restrict ``node_id`` to ``fraction`` of the injection bandwidth."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("injection limit must be in [0, 1]")
        if node_id not in self.topology:
            raise ValueError(f"node {node_id} outside the {self.topology!r} mesh")
        self._limits[node_id] = float(fraction)
        # Changing the limit restarts the credit accumulator: credit accrued
        # under an older, looser limit must not leak through a quarantine.
        self._allowance[node_id] = 0.0
        self._limited_idx = np.nonzero(self._limits < 1.0)[0]

    def injection_limit(self, node_id: int) -> float:
        """Current injection limit of ``node_id`` (1.0 = unrestricted)."""
        return float(self._limits[node_id])

    @property
    def injection_limits(self) -> list[float]:
        """Per-node injection limits (list view, like the object backend)."""
        return self._limits.tolist()

    def flush_source_queue(self, node_id: int) -> int:
        """Discard not-yet-injected flits queued at ``node_id``'s interface.

        Flits of packets whose head already entered the network are kept so
        no headless worm is stranded inside the routers; fully dropped
        packets count as drops.  Returns the number of flits discarded.
        """
        count = int(self._sq_count[node_id])
        if count == 0:
            return 0
        slots = (self._sq_head[node_id] + np.arange(count)) % self.source_queue_capacity
        values = self._sq_vals[node_id, slots]
        pkts = values >> PKT_SHIFT
        keep = self._pkt_injected.values[pkts] >= 0
        kept = int(keep.sum())
        self.dropped_packets += int(np.unique(pkts[~keep]).size)
        self._sq_head[node_id] = 0
        self._sq_count[node_id] = kept
        if kept:
            self._sq_vals[node_id, :kept] = values[keep]
        return count - kept

    def reset_injection_limits(self) -> None:
        """Lift every injection restriction (full rollback)."""
        self._limits.fill(1.0)
        self._allowance.fill(0.0)
        self._limited_idx = np.empty(0, dtype=np.int64)

    @property
    def restricted_nodes(self) -> list[int]:
        """Nodes currently running under an injection limit below 1.0."""
        return [int(node) for node in np.nonzero(self._limits < 1.0)[0]]

    # -- cycle advance ------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Advance the network by one cycle (inject, allocate, traverse)."""
        if METRICS.active:
            series = self._phase_series
            if series is None:
                hist = sim_phase_histogram()
                series = self._phase_series = (
                    hist.series(backend="soa", phase="inject"),
                    hist.series(backend="soa", phase="switch"),
                )
            start = perf_counter()
            soa_step.inject(self, cycle)
            mid = perf_counter()
            soa_step.switch(self, cycle)
            end = perf_counter()
            series[0].observe(mid - start)
            series[1].observe(end - mid)
        else:
            soa_step.inject(self, cycle)
            soa_step.switch(self, cycle)
        # Garnet-style windowed occupancy: accumulate this cycle's occupied
        # fraction per port, exactly as the object backend's per-port sweep.
        if self._occ_exact:
            self._occ_sum_int += self._occupied
        else:
            np.divide(self._occupied, float(self.num_vcs), out=self._occ_tmp)
            self._occ_sum += self._occ_tmp
        self._occ_samples += 1
        self.stats.cycles = cycle + 1

    # -- DL2Fence observables ------------------------------------------------
    def feature_frame(self, direction: Direction, kind) -> np.ndarray:
        """One directional feature frame, read straight off the counters."""
        return self.feature_frames(kind)[direction]

    def feature_frames(self, kind) -> dict[Direction, np.ndarray]:
        """All four directional frames of one feature, no router walk.

        The per-port counter arrays are sliced into the natural directional
        geometries (east-most columns lack EAST input ports, etc.), exactly
        matching :func:`repro.monitor.features.extract_feature_frames` on
        the object backend.
        """
        from repro.monitor.features import FeatureKind

        rows, cols = self.topology.rows, self.topology.columns
        if kind is FeatureKind.VCO:
            if self._occ_samples == 0:
                values = self._occupied / float(self.num_vcs)
            elif self._occ_exact:
                values = (self._occ_sum_int / float(self.num_vcs)) / self._occ_samples
            else:
                values = self._occ_sum / self._occ_samples
        else:
            values = (self._buf_writes + self._buf_reads).astype(np.float64)
        grid = values.reshape(self.topology.num_nodes, 5)

        def plane(direction: Direction) -> np.ndarray:
            return grid[:, DIRECTION_INDEX[direction]].reshape(rows, cols)

        return {
            Direction.EAST: plane(Direction.EAST)[:, : cols - 1].copy(),
            Direction.NORTH: plane(Direction.NORTH)[: rows - 1, :].copy(),
            Direction.WEST: plane(Direction.WEST)[:, 1:].copy(),
            Direction.SOUTH: plane(Direction.SOUTH)[1:, :].copy(),
        }

    def reset_boc_counters(self) -> None:
        """Reset every port's BOC and VCO accumulators (window boundary)."""
        self._buf_writes.fill(0)
        self._buf_reads.fill(0)
        self._occ_sum_int.fill(0)
        self._occ_sum.fill(0.0)
        self._occ_samples = 0

    def local_boc(self) -> list[int]:
        """Per-node LOCAL-slot BOC this window (see MeshNetwork.local_boc)."""
        grid = (self._buf_writes + self._buf_reads).reshape(
            self.topology.num_nodes, 5
        )
        return [int(value) for value in grid[:, 0]]

    # -- bookkeeping --------------------------------------------------------
    @property
    def in_flight_flits(self) -> int:
        """Flits buffered anywhere in the network (excluding source queues)."""
        return int(self._vc_count.sum())

    @property
    def queued_flits(self) -> int:
        """Flits still waiting in source injection queues."""
        return int(self._sq_count.sum())

    @property
    def drainable_queued_flits(self) -> int:
        """Queued flits that can still legally enter the network.

        Excludes new packets queued at quarantined nodes — by policy that
        backlog can never inject (continuation flits of partially injected
        packets still count, mirroring the injection gate).
        """
        total = 0
        for node in np.nonzero(self._sq_count > 0)[0]:
            count = int(self._sq_count[node])
            if self._limits[node] > 0.0:
                total += count
                continue
            slots = (
                self._sq_head[node] + np.arange(count)
            ) % self.source_queue_capacity
            pkts = self._sq_vals[node, slots] >> PKT_SHIFT
            total += int((self._pkt_injected.values[pkts] >= 0).sum())
        return total

    def _occ_samples_for_port(self, flat_port: int) -> int:
        """Occupancy sample count governing ``flat_port``'s VCO average.

        One global counter here; the batched subclass maps the port to its
        episode's counter (episodes reset windows independently).
        """
        return self._occ_samples

    # -- object-backend compatibility views ---------------------------------
    @property
    def source_queues(self) -> "_SourceQueuesView":
        """Length-reporting view of the per-node source queues."""
        return _SourceQueuesView(self)

    def router(self, node_id: int) -> "SoARouterView":
        """Read-only router view (VCO/BOC observables of one node)."""
        self.topology._check_node(node_id)
        return SoARouterView(self, int(node_id))

    @property
    def routers(self) -> list["SoARouterView"]:
        """Read-only router views in node order."""
        return [SoARouterView(self, node) for node in self.topology.nodes()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SoAMeshNetwork({self.topology.rows}x{self.topology.columns}, "
            f"vcs={self.num_vcs}, depth={self.vc_depth})"
        )


class _GrowableInt:
    """Amortised-append int64 array (packet registry columns)."""

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.empty(capacity, dtype=np.int64)
        self._size = 0

    def _grow_to(self, needed: int) -> None:
        capacity = self._data.size
        while capacity < needed:
            capacity *= 2
        if capacity != self._data.size:
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = self._data[: self._size]
            self._data = grown

    def append(self, value: int) -> None:
        if self._size == self._data.size:
            self._grow_to(self._size + 1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        count = len(values)
        self._grow_to(self._size + count)
        self._data[self._size : self._size + count] = values
        self._size += count

    def extend_fill(self, value: int, count: int) -> None:
        self._grow_to(self._size + count)
        self._data[self._size : self._size + count] = value
        self._size += count

    @property
    def values(self) -> np.ndarray:
        return self._data[: self._size]

    def __len__(self) -> int:
        return self._size


class _SourceQueuesView:
    """Sequence view over the SoA source-queue rings (lengths only)."""

    def __init__(self, net: SoAMeshNetwork) -> None:
        self._net = net

    def __len__(self) -> int:
        return self._net.topology.num_nodes

    def __getitem__(self, node_id: int) -> "_SourceQueueView":
        return _SourceQueueView(self._net, node_id)


class _SourceQueueView:
    """Length view of one node's source queue."""

    def __init__(self, net: SoAMeshNetwork, node_id: int) -> None:
        self._net = net
        self._node = node_id

    def __len__(self) -> int:
        return int(self._net._sq_count[self._node])

    def __bool__(self) -> bool:
        return len(self) > 0


class SoAPortView:
    """Read-only observables of one input port (VCO/BOC counters)."""

    def __init__(self, net: SoAMeshNetwork, node_id: int, direction: Direction) -> None:
        self.direction = direction
        self._net = net
        self._flat = node_id * 5 + DIRECTION_INDEX[direction]

    @property
    def buffer_writes(self) -> int:
        return int(self._net._buf_writes[self._flat])

    @property
    def buffer_reads(self) -> int:
        return int(self._net._buf_reads[self._flat])

    @property
    def buffer_operation_count(self) -> int:
        return self.buffer_writes + self.buffer_reads

    @property
    def occupied_vcs(self) -> int:
        return int(self._net._occupied[self._flat])

    @property
    def occupancy_samples(self) -> int:
        return self._net._occ_samples_for_port(self._flat)

    @property
    def instantaneous_occupancy(self) -> float:
        return self.occupied_vcs / self._net.num_vcs

    @property
    def occupancy_sum(self) -> float:
        if self._net._occ_exact:
            return float(self._net._occ_sum_int[self._flat]) / self._net.num_vcs
        return float(self._net._occ_sum[self._flat])

    @property
    def vc_occupancy(self) -> float:
        samples = self._net._occ_samples_for_port(self._flat)
        if samples == 0:
            return self.instantaneous_occupancy
        return self.occupancy_sum / samples

    @property
    def buffered_flits(self) -> int:
        base = self._flat * self._net.num_vcs
        return int(self._net._vc_count[base : base + self._net.num_vcs].sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SoAPortView({self.direction.value}, occ={self.vc_occupancy:.2f})"


class SoARouterView:
    """Read-only router facade over the SoA state (tests / generic readers)."""

    def __init__(self, net: SoAMeshNetwork, node_id: int) -> None:
        self._net = net
        self.node_id = node_id

    @property
    def input_ports(self) -> dict[Direction, SoAPortView]:
        exists = self._net._tables.port_exists[self.node_id]
        return {
            _INDEX_DIRECTION[index]: SoAPortView(
                self._net, self.node_id, _INDEX_DIRECTION[index]
            )
            for index in range(5)
            if exists[index]
        }

    def port(self, direction: Direction) -> SoAPortView | None:
        if not self._net._tables.port_exists[self.node_id, DIRECTION_INDEX[direction]]:
            return None
        return SoAPortView(self._net, self.node_id, direction)

    def vco(self, direction: Direction) -> float:
        port = self.port(direction)
        return port.vc_occupancy if port is not None else 0.0

    def boc(self, direction: Direction) -> int:
        port = self.port(direction)
        return port.buffer_operation_count if port is not None else 0

    @property
    def flits_ejected(self) -> int:
        return int(self._net._flits_ejected[self.node_id])

    @property
    def packets_ejected(self) -> int:
        return int(self._net._packets_ejected[self.node_id])

    @property
    def buffered_flits(self) -> int:
        base = self.node_id * 5 * self._net.num_vcs
        span = 5 * self._net.num_vcs
        return int(self._net._vc_count[base : base + span].sum())

    @property
    def total_buffered_flits(self) -> int:
        return self.buffered_flits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SoARouterView(node={self.node_id})"
