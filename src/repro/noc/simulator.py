"""Cycle-driven NoC simulator that couples traffic sources to the mesh.

The simulator plays the role Gem5/Garnet plays in the paper: it advances the
mesh cycle by cycle, asks every attached traffic source (benign workloads and
the FDoS attacker) which packets to create, and lets observers — such as the
global performance monitor of :mod:`repro.monitor` — sample runtime features
at a fixed period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

from repro.noc.backend import BACKENDS, build_network, resolve_backend
from repro.noc.packet import Packet
from repro.noc.route_provider import RouteProvider
from repro.noc.stats import LatencyStats
from repro.noc.topology import MeshTopology
from repro.obs.bus import BUS

__all__ = ["SimulationConfig", "NoCSimulator", "TrafficSource"]


class TrafficSource(Protocol):
    """Anything that can generate packets for a given cycle.

    Both the synthetic/PARSEC workload generators and the FDoS attacker of
    :mod:`repro.traffic` implement this protocol.
    """

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        """Packets created during ``cycle`` (may be empty)."""
        ...


@dataclass
class SimulationConfig:
    """Static configuration of a simulation run.

    Defaults follow the paper's setup: Mesh-XY, one virtual network with a
    small number of VCs per port, 4-flit packets, and a warmup period before
    feature sampling starts so VCO/BOC frames describe steady-state traffic.
    """

    rows: int = 8
    columns: int = 0
    num_vcs: int = 4
    vc_depth: int = 4
    injection_bandwidth: int = 1
    source_queue_capacity: int = 512
    warmup_cycles: int = 64
    seed: int = 0
    #: Simulator backend: "" resolves REPRO_SIM_BACKEND (default "soa");
    #: "object" forces the router/VC/flit reference model.
    backend: str = ""

    def __post_init__(self) -> None:
        if self.columns == 0:
            self.columns = self.rows
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be non-negative")
        if self.backend and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown simulator backend {self.backend!r}; "
                f"expected one of {BACKENDS}"
            )

    def topology(self) -> MeshTopology:
        return MeshTopology(rows=self.rows, columns=self.columns)


class NoCSimulator:
    """Drives a :class:`MeshNetwork` with one or more traffic sources."""

    def __init__(self, config: SimulationConfig | None = None) -> None:
        self.config = config or SimulationConfig()
        self.topology = self.config.topology()
        self.backend = resolve_backend(self.config.backend)
        self.network = build_network(
            self.topology,
            backend=self.backend,
            num_vcs=self.config.num_vcs,
            vc_depth=self.config.vc_depth,
            injection_bandwidth=self.config.injection_bandwidth,
            source_queue_capacity=self.config.source_queue_capacity,
        )
        self.sources: list[TrafficSource] = []
        self.cycle = 0
        self._observers: list[tuple[int, Callable[["NoCSimulator"], None]]] = []
        # Array ingress: when both the source and the backend support batch
        # transfer, one vectorized hand-off per source replaces the
        # per-packet enqueue loop (same packets, same RNG stream).
        self._batch_ingress = hasattr(self.network, "enqueue_batch")
        # Data-plane faults: scheduled (cycle, dead_links, dead_routers)
        # activations plus the accumulated fault set already applied.
        self._pending_data_faults: list[tuple[int, tuple, tuple]] = []
        self._dead_links: set = set()
        self._dead_routers: set = set()

    # -- wiring ------------------------------------------------------------
    def add_source(self, source: TrafficSource) -> None:
        """Attach a traffic source (benign workload or attacker)."""
        self.sources.append(source)

    def add_observer(self, period: int, callback: Callable[["NoCSimulator"], None]) -> None:
        """Call ``callback(self)`` every ``period`` cycles after warmup."""
        if period <= 0:
            raise ValueError("observer period must be positive")
        self._observers.append((period, callback))

    # -- runtime defense hooks ------------------------------------------------
    def throttle_node(self, node_id: int, fraction: float) -> None:
        """Rate-limit ``node_id`` to ``fraction`` of the injection bandwidth.

        This is the countermeasure surface a runtime defense such as
        :class:`repro.defense.DL2FenceGuard` uses once attackers are
        localized; ``fraction=0.0`` quarantines the node entirely.
        """
        self.network.set_injection_limit(node_id, fraction)

    def quarantine_node(self, node_id: int) -> None:
        """Block all injection from ``node_id`` (limit 0.0)."""
        self.network.set_injection_limit(node_id, 0.0)

    def release_node(self, node_id: int) -> None:
        """Lift any injection restriction on ``node_id``."""
        self.network.set_injection_limit(node_id, 1.0)

    @property
    def restricted_nodes(self) -> list[int]:
        """Nodes currently throttled or quarantined."""
        return self.network.restricted_nodes

    # -- data-plane fault hooks ------------------------------------------------
    def schedule_data_fault(
        self, cycle: int, dead_links=(), dead_routers=()
    ) -> None:
        """Kill links/routers at the start of ``cycle`` (permanently).

        ``dead_links`` holds ``(node, Direction)`` pairs naming a physical
        (bidirectional) link; ``dead_routers`` holds node ids.  Faults
        accumulate: each activation rebuilds one
        :class:`~repro.noc.route_provider.RouteProvider` over the union of
        everything dead so far and installs it on the backend, which excises
        doomed in-flight packets atomically (see ``apply_data_faults``).
        """
        if cycle < self.cycle:
            raise ValueError(
                f"cannot schedule a fault at past cycle {cycle} "
                f"(current cycle {self.cycle})"
            )
        self._pending_data_faults.append(
            (cycle, tuple(dead_links), tuple(dead_routers))
        )
        self._pending_data_faults.sort(key=lambda item: item[0])

    def inject_data_fault(self, dead_links=(), dead_routers=()) -> int:
        """Apply a link/router kill immediately (between cycles).

        Returns the number of in-flight packets excised.
        """
        self._dead_links.update(
            (int(node), direction) for node, direction in dead_links
        )
        self._dead_routers.update(int(node) for node in dead_routers)
        provider = RouteProvider(
            self.topology,
            dead_links=tuple(self._dead_links),
            dead_routers=tuple(self._dead_routers),
        )
        excised = self.network.apply_data_faults(provider)
        if BUS.active:
            BUS.emit(
                "fault_activated",
                cycle=self.cycle,
                dead_links=sorted(
                    [int(node), direction.name]
                    for node, direction in provider.dead_links
                ),
                dead_routers=sorted(int(n) for n in provider.dead_routers),
                excised=int(excised),
            )
        return excised

    @property
    def route_provider(self):
        """Active fault-aware route provider (None on a healthy mesh)."""
        return self.network.route_provider

    @property
    def dead_links(self) -> frozenset:
        """Directed dead links of the active fault set (normalized)."""
        provider = self.network.route_provider
        return provider.dead_links if provider is not None else frozenset()

    @property
    def dead_routers(self) -> frozenset:
        """Dead routers of the active fault set."""
        provider = self.network.route_provider
        return provider.dead_routers if provider is not None else frozenset()

    def _activate_due_faults(self, cycle: int) -> None:
        pending = self._pending_data_faults
        due = [fault for fault in pending if fault[0] <= cycle]
        if not due:
            return
        self._pending_data_faults = [f for f in pending if f[0] > cycle]
        links: list = []
        routers: list = []
        for _, dead_links, dead_routers in due:
            links.extend(dead_links)
            routers.extend(dead_routers)
        self.inject_data_fault(dead_links=links, dead_routers=routers)

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by a single cycle."""
        cycle = self.cycle
        if self._pending_data_faults:
            self._activate_due_faults(cycle)
        network = self.network
        batch_ingress = self._batch_ingress
        for source in self.sources:
            batch_fn = (
                getattr(source, "packet_batch_for_cycle", None)
                if batch_ingress
                else None
            )
            if batch_fn is not None:
                batch = batch_fn(cycle)
                if batch is not None:
                    sources, destinations, size_flits, malicious = batch
                    network.enqueue_batch(
                        sources, destinations, size_flits, cycle, malicious
                    )
                continue
            for packet in source.packets_for_cycle(cycle):
                network.enqueue_packet(packet)
        network.step(cycle)
        post_warmup = self.cycle - self.config.warmup_cycles
        if post_warmup >= 0:
            for period, callback in self._observers:
                if post_warmup > 0 and post_warmup % period == 0:
                    callback(self)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 10_000) -> int:
        """Run with no new injection until all in-flight traffic is delivered.

        Returns the number of extra cycles simulated.  Traffic sources are
        detached during the drain so the network empties.  Backlog stuck
        behind a quarantined interface is ignored — by policy it can never
        inject, so waiting on it would always hit ``max_cycles``.
        """
        saved_sources = self.sources
        self.sources = []
        extra = 0
        try:
            while (
                self.network.in_flight_flits > 0
                or self.network.drainable_queued_flits > 0
            ) and extra < max_cycles:
                self.step()
                extra += 1
        finally:
            self.sources = saved_sources
        return extra

    # -- results ---------------------------------------------------------------
    @property
    def stats(self):
        """Network-level counters (delivered packets, drops, etc.)."""
        return self.network.stats

    def latency(self, benign_only: bool = True) -> LatencyStats:
        """Latency statistics over delivered packets (benign-only by default)."""
        return self.network.stats.latency(benign_only=benign_only)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NoCSimulator({self.topology.rows}x{self.topology.columns}, "
            f"cycle={self.cycle}, sources={len(self.sources)})"
        )
