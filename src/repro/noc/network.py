"""Mesh network: routers, links and the per-cycle switching procedure."""

from __future__ import annotations

from collections import deque
from time import perf_counter

from repro.noc.packet import Flit, Packet
from repro.noc.router import Router, VirtualChannel
from repro.noc.routing import UnroutableError, xy_next_direction
from repro.noc.stats import NetworkStats
from repro.noc.topology import Direction, MeshTopology
from repro.obs.metrics import METRICS, sim_phase_histogram

__all__ = ["MeshNetwork"]


class MeshNetwork:
    """A 2-D mesh of :class:`Router` objects with XY wormhole switching.

    The network advances in cycles.  Each cycle performs, in order:

    1. **Injection** — up to ``injection_bandwidth`` flits per node move from
       the node's source queue into the local input port of its router.
    2. **Switch allocation** — every router picks at most one flit per output
       link, honouring wormhole VC allocation and downstream buffer space.
    3. **Link traversal** — scheduled flits move into the downstream router's
       input buffer (or are ejected at their destination).

    The two-phase allocate/execute split guarantees a flit advances at most
    one hop per cycle regardless of router iteration order.
    """

    def __init__(
        self,
        topology: MeshTopology,
        num_vcs: int = 4,
        vc_depth: int = 4,
        injection_bandwidth: int = 1,
        source_queue_capacity: int = 512,
    ) -> None:
        if injection_bandwidth < 1:
            raise ValueError("injection_bandwidth must be >= 1")
        if source_queue_capacity < 1:
            raise ValueError("source_queue_capacity must be >= 1")
        self.topology = topology
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.injection_bandwidth = injection_bandwidth
        self.source_queue_capacity = source_queue_capacity
        self.routers: list[Router] = [
            Router(node, topology, num_vcs=num_vcs, vc_depth=vc_depth)
            for node in topology.nodes()
        ]
        for router in self.routers:
            for direction in Direction.cardinal():
                neighbor = topology.neighbor(router.node_id, direction)
                if neighbor is not None:
                    router.down_ports[direction] = self.routers[neighbor].input_ports[
                        direction.opposite
                    ]
        # Flat port list for the per-cycle occupancy accumulation sweep.
        self._all_ports = [
            port for router in self.routers for port in router.input_ports.values()
        ]
        self.source_queues: list[deque[Flit]] = [deque() for _ in topology.nodes()]
        # Nodes whose source queue holds flits, and nodes under an injection
        # limit — the only nodes the injection phase has to visit.
        self._queued_nodes: set[int] = set()
        self._limited_nodes: set[int] = set()
        # Per-node injection limit in [0, 1]: the fraction of the injection
        # bandwidth a node may use.  1.0 is unrestricted, 0.0 quarantines the
        # node entirely.  This is the rate-limit hook a runtime defense
        # (:mod:`repro.defense`) pulls to fence off localized attackers.
        self.injection_limits: list[float] = [1.0] * topology.num_nodes
        self._injection_allowance: list[float] = [0.0] * topology.num_nodes
        self.stats = NetworkStats()
        self.dropped_packets = 0
        # Data-plane fault state (dead links/routers).  None on a healthy
        # mesh, so the fault-free allocator keeps the plain XY path.
        self._route_provider = None
        self._routable_start = None
        self.killed_packets = 0
        self.unroutable_packets = 0

    # -- data-plane faults (dead links / routers) ----------------------------
    @property
    def route_provider(self):
        """The active fault-aware route provider (None on a healthy mesh)."""
        return self._route_provider

    def apply_data_faults(self, provider) -> int:
        """Install a degraded :class:`~repro.noc.route_provider.RouteProvider`.

        The object-graph mirror of ``SoAMeshNetwork.apply_data_faults``:
        dead down-links are unwired, doomed in-flight packets are excised
        wholesale (administrative purge — no buffer-read/BOC accounting),
        stale cached output directions of unbound VCs are cleared so the
        next allocation consults the provider, and freshly queued packets
        are gated by start-state routability.  Returns the number of
        in-flight packets killed (also accumulated on ``killed_packets``).
        """
        self._route_provider = provider
        self._routable_start = provider.routable_from_start
        for router in self.routers:
            for direction in list(router.down_ports):
                if not provider.link_is_live(router.node_id, direction):
                    del router.down_ports[direction]
        doomed = self._excise_doomed(provider)
        self._purge_unroutable_queued(doomed)
        self.killed_packets += len(doomed)
        return len(doomed)

    def _excise_doomed(self, provider) -> set[int]:
        """Doom and clear in-flight packets stranded by the new fault set.

        A packet is doomed when any of its VCs sits in a dead router, any of
        its wormhole bindings crosses a dead link, or its head flit's
        ``(node, travel-state)`` can no longer reach the destination under
        the turn model (same three rules as the SoA backend).
        """
        doomed: set[int] = set()
        for router in self.routers:
            dead_router = router.node_id in provider.dead_routers
            for port in router.input_ports.values():
                for vc in port.vcs:
                    pid = vc.allocated_packet
                    if pid is None:
                        continue
                    if dead_router:
                        doomed.add(pid)
                        continue
                    if vc.downstream_vc is not None and not provider.link_is_live(
                        router.node_id, vc.output_direction
                    ):
                        doomed.add(pid)
                        continue
                    flit = vc.peek()
                    if flit is not None and flit.is_head:
                        travel = (
                            None
                            if port.direction is Direction.LOCAL
                            else port.direction.opposite
                        )
                        try:
                            provider.next_direction(
                                router.node_id, flit.destination, travel
                            )
                        except UnroutableError:
                            doomed.add(pid)
        for router in self.routers:
            for port in router.input_ports.values():
                for vc in port.vcs:
                    if vc.allocated_packet is None:
                        continue
                    if vc.allocated_packet in doomed:
                        # Whole-VC clears are exact: a VC only ever holds
                        # flits of its single allocated packet.
                        flits = len(vc.flits)
                        vc.flits.clear()
                        vc.allocated_packet = None
                        vc.output_direction = None
                        vc.downstream_vc = None
                        port.occupied_vcs -= 1
                        port.buffered_flits -= flits
                        router.buffered_flits -= flits
                    elif vc.downstream_vc is None:
                        # Surviving unbound front: drop the cached direction
                        # so the next allocation re-routes via the provider
                        # (bound VCs keep following their wormhole binding).
                        vc.output_direction = None
        return doomed

    def _purge_unroutable_queued(self, doomed: set[int]) -> None:
        """Drop doomed remnants and START-unroutable packets from the source
        queues (continuation flits of *surviving* partially injected packets
        stay, mirroring :meth:`flush_source_queue`)."""
        routable = self._routable_start
        for node in list(self._queued_nodes):
            queue = self.source_queues[node]
            kept: list[Flit] = []
            dropped_fresh: set[int] = set()
            for flit in queue:
                packet = flit.packet
                if packet.packet_id in doomed:
                    continue
                if packet.injected_cycle is None and not routable[
                    node, packet.destination
                ]:
                    dropped_fresh.add(packet.packet_id)
                    continue
                kept.append(flit)
            if len(kept) == len(queue):
                continue
            queue.clear()
            queue.extend(kept)
            if dropped_fresh:
                self.dropped_packets += len(dropped_fresh)
                self.unroutable_packets += len(dropped_fresh)
            if not queue:
                self._queued_nodes.discard(node)

    # -- injection interface ------------------------------------------------
    def enqueue_packet(self, packet: Packet) -> bool:
        """Queue a packet's flits at its source node.

        Returns False (and counts a drop) when the source queue is already at
        capacity — this models the saturation / "system crashed" regime the
        paper reaches at FIR = 1 — or when no route to the destination
        survives the active fault set.
        """
        if self._routable_start is not None and not self._routable_start[
            packet.source, packet.destination
        ]:
            self.dropped_packets += 1
            self.unroutable_packets += 1
            return False
        queue = self.source_queues[packet.source]
        if len(queue) + packet.size_flits > self.source_queue_capacity:
            self.dropped_packets += 1
            return False
        self.stats.record_created(packet)
        for flit in packet.to_flits():
            queue.append(flit)
        self._queued_nodes.add(packet.source)
        return True

    def router(self, node_id: int) -> Router:
        """Router attached to ``node_id``."""
        return self.routers[node_id]

    # -- injection rate limiting (defense hook) -----------------------------
    def set_injection_limit(self, node_id: int, fraction: float) -> None:
        """Restrict ``node_id`` to ``fraction`` of the injection bandwidth.

        ``fraction=1.0`` restores normal service, ``fraction=0.0`` blocks the
        node's network interface completely (quarantine).  Fractional limits
        are enforced with a credit accumulator so e.g. ``0.25`` injects one
        flit every four cycles on a unit-bandwidth interface.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("injection limit must be in [0, 1]")
        if node_id not in self.topology:
            raise ValueError(f"node {node_id} outside the {self.topology!r} mesh")
        self.injection_limits[node_id] = float(fraction)
        if fraction < 1.0:
            self._limited_nodes.add(node_id)
        else:
            self._limited_nodes.discard(node_id)
        # Changing the limit restarts the credit accumulator: credit accrued
        # under an older, looser limit must not leak through a quarantine.
        self._injection_allowance[node_id] = 0.0

    def injection_limit(self, node_id: int) -> float:
        """Current injection limit of ``node_id`` (1.0 = unrestricted)."""
        return self.injection_limits[node_id]

    def flush_source_queue(self, node_id: int) -> int:
        """Discard flits queued at ``node_id``'s network interface.

        Used when quarantining a localized attacker so its accumulated flood
        backlog cannot pour out once the restriction is lifted.  Flits of a
        packet whose head already entered the network are kept — dropping
        them would strand a headless worm inside the routers.  Returns the
        number of flits discarded; fully dropped packets count as drops.
        """
        queue = self.source_queues[node_id]
        kept = [flit for flit in queue if flit.packet.injected_cycle is not None]
        dropped_flits = len(queue) - len(kept)
        dropped_packets = {
            flit.packet.packet_id
            for flit in queue
            if flit.packet.injected_cycle is None
        }
        self.dropped_packets += len(dropped_packets)
        queue.clear()
        queue.extend(kept)
        if not queue:
            self._queued_nodes.discard(node_id)
        return dropped_flits

    def reset_injection_limits(self) -> None:
        """Lift every injection restriction (full rollback)."""
        for node in range(self.topology.num_nodes):
            self.injection_limits[node] = 1.0
            self._injection_allowance[node] = 0.0
        self._limited_nodes.clear()

    @property
    def restricted_nodes(self) -> list[int]:
        """Nodes currently running under an injection limit below 1.0."""
        return [
            node
            for node, limit in enumerate(self.injection_limits)
            if limit < 1.0
        ]

    # -- cycle advance ---------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Advance the network by one cycle."""
        if METRICS.active:
            series = getattr(self, "_phase_series", None)
            if series is None:
                hist = sim_phase_histogram()
                series = self._phase_series = (
                    hist.series(backend="object", phase="inject"),
                    hist.series(backend="object", phase="allocate"),
                    hist.series(backend="object", phase="execute"),
                )
            start = perf_counter()
            self._inject(cycle)
            t_inject = perf_counter()
            moves = self._allocate(cycle)
            t_allocate = perf_counter()
            self._execute(moves, cycle)
            t_execute = perf_counter()
            series[0].observe(t_inject - start)
            series[1].observe(t_allocate - t_inject)
            series[2].observe(t_execute - t_allocate)
        else:
            self._inject(cycle)
            moves = self._allocate(cycle)
            self._execute(moves, cycle)
        # Inlined occupancy accumulation over the flat port list: each port
        # maintains its occupied-VC count incrementally, so this sweep is two
        # attribute updates per port instead of a scan over its VCs.
        for port in self._all_ports:
            port.occupancy_sum += port.occupied_vcs / len(port.vcs)
            port.occupancy_samples += 1
        self.stats.cycles = cycle + 1

    # -- phase 1: injection -----------------------------------------------------
    def _inject(self, cycle: int) -> None:
        # Only nodes with queued flits or an active injection limit need a
        # visit: unrestricted idle nodes carry no per-cycle state.  Sorted so
        # the stats record order matches a full 0..N-1 scan.
        active = self._queued_nodes | self._limited_nodes
        for node in sorted(active):
            queue = self.source_queues[node]
            limit = self.injection_limits[node]
            throttled = limit < 1.0
            if throttled:
                # Accrue fractional bandwidth credit; cap the burst at one
                # cycle's worth so a long-idle node cannot flush a backlog.
                self._injection_allowance[node] = min(
                    self._injection_allowance[node] + limit * self.injection_bandwidth,
                    float(self.injection_bandwidth),
                )
            if not queue:
                continue
            port = self.routers[node].input_ports[Direction.LOCAL]
            for _ in range(self.injection_bandwidth):
                if not queue:
                    break
                flit = queue[0]
                starts_new_packet = flit.is_head and flit.packet.injected_cycle is None
                # The policy limit gates *new* packets only.  Continuation
                # flits of a packet whose head already entered the network
                # always pass (driving the allowance negative, which delays
                # the next head) — a throttle must never strand a partial
                # worm holding VCs inside the routers.
                if (
                    throttled
                    and starts_new_packet
                    and self._injection_allowance[node] < 1.0
                ):
                    break
                vc = port.free_vc_for(flit)
                if vc is None:
                    break
                queue.popleft()
                port.write_flit(flit, vc)
                if throttled:
                    self._injection_allowance[node] -= 1.0
                if starts_new_packet:
                    flit.packet.injected_cycle = cycle
                    self.stats.record_injected(flit.packet)
            if not queue:
                self._queued_nodes.discard(node)

    # -- phase 2: switch allocation ----------------------------------------------
    def _allocate(self, cycle: int) -> list[tuple]:
        """Pick flit moves for this cycle.

        Returns a list of ``(port, vc, target)`` tuples where ``target`` is
        either ``("eject", router)`` or ``("forward", downstream_port,
        downstream_vc)``.
        """
        moves: list[tuple] = []
        # Space already promised to a downstream VC this cycle, so two
        # upstream routers cannot overfill the same buffer slot.
        reserved: dict[int, int] = {}
        # Downstream VCs already granted to a head flit this cycle: a second
        # head must not be allocated the same VC.
        head_reserved: set[int] = set()

        for router in self.routers:
            # Empty routers (the common case on a large mesh) contribute no
            # moves and can be skipped without touching the arbitration state.
            if router.buffered_flits == 0:
                continue
            used_outputs: set[Direction] = set()
            # Rotate arbitration priority each cycle to avoid starvation.
            rotations = router.port_rotations
            for port in rotations[cycle % len(rotations)]:
                if port.buffered_flits == 0:
                    continue
                for vc in port.vcs:
                    flit = vc.peek()
                    if flit is None:
                        continue
                    out_dir = vc.output_direction
                    if out_dir is None:
                        if self._route_provider is None:
                            out_dir = xy_next_direction(
                                self.topology, router.node_id, flit.destination
                            )
                        else:
                            travel = (
                                None
                                if port.direction is Direction.LOCAL
                                else port.direction.opposite
                            )
                            out_dir = self._route_provider.next_direction(
                                router.node_id, flit.destination, travel
                            )
                        vc.output_direction = out_dir
                    if out_dir in used_outputs:
                        continue
                    if out_dir is Direction.LOCAL:
                        moves.append((port, vc, ("eject", router)))
                        used_outputs.add(out_dir)
                        continue
                    down_port = router.down_ports.get(out_dir)
                    if down_port is None:  # pragma: no cover - excision invariant
                        raise RuntimeError(
                            "unroutable head reached the switch allocator"
                        )
                    down_vc = vc.downstream_vc
                    if down_vc is None or not flit.is_head:
                        if flit.is_head:
                            down_vc = down_port.free_vc_for(flit)
                        else:
                            down_vc = vc.downstream_vc
                    if down_vc is None:
                        continue
                    already = reserved.get(id(down_vc), 0)
                    if len(down_vc.flits) + already >= down_vc.depth:
                        continue
                    if flit.is_head:
                        if down_vc.occupied or id(down_vc) in head_reserved:
                            continue
                        head_reserved.add(id(down_vc))
                    moves.append((port, vc, ("forward", down_port, down_vc)))
                    used_outputs.add(out_dir)
                    reserved[id(down_vc)] = already + 1
        return moves

    # -- phase 3: link traversal --------------------------------------------------
    def _execute(self, moves: list[tuple], cycle: int) -> None:
        for port, vc, target in moves:
            kind = target[0]
            if kind == "eject":
                router: Router = target[1]
                flit = port.read_flit(vc)
                router.flits_ejected += 1
                if flit.is_tail:
                    flit.packet.ejected_cycle = cycle
                    router.packets_ejected += 1
                    self.stats.record_delivered(flit.packet)
            else:
                _, down_port, down_vc = target
                flit = port.read_flit(vc)
                remember_downstream = not flit.is_tail
                down_port.write_flit(flit, down_vc)
                # Wormhole: body/tail flits of this packet must follow the
                # head into the same downstream VC.
                vc.downstream_vc = down_vc if remember_downstream else None

    # -- bookkeeping --------------------------------------------------------
    @property
    def in_flight_flits(self) -> int:
        """Flits buffered anywhere in the network (excluding source queues)."""
        return sum(router.buffered_flits for router in self.routers)

    @property
    def queued_flits(self) -> int:
        """Flits still waiting in source injection queues."""
        return sum(len(self.source_queues[node]) for node in self._queued_nodes)

    @property
    def drainable_queued_flits(self) -> int:
        """Queued flits that can still legally enter the network.

        Excludes new packets queued at quarantined nodes (injection limit
        0): that backlog is fenced off by policy and will never inject, so
        waiting on it — e.g. in :meth:`NoCSimulator.drain` — would never
        terminate.  Continuation flits of a partially injected packet *do*
        count even under quarantine, mirroring the injection gate that
        always lets them through.
        """
        total = 0
        for node in self._queued_nodes:
            queue = self.source_queues[node]
            if self.injection_limits[node] > 0.0:
                total += len(queue)
            else:
                total += sum(
                    1 for flit in queue if flit.packet.injected_cycle is not None
                )
        return total

    def reset_boc_counters(self) -> None:
        """Reset every router's BOC accumulators (one sampling window ends)."""
        for router in self.routers:
            router.reset_counters()

    def local_boc(self) -> list[int]:
        """Per-node LOCAL-port BOC accumulated this sampling window.

        The LOCAL input port only ever holds flits the node's own PE
        injected, so its buffer-operation count is a router-local injection
        activity meter — telemetry the directional frames (which read only
        the four mesh-facing ports) never expose.  The degraded guard uses
        it to tell a detour carrier that merely *forwards* rerouted traffic
        from one that injects a flood of its own.
        """
        return [
            router.boc(Direction.LOCAL) for router in self.routers
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MeshNetwork({self.topology.rows}x{self.topology.columns}, "
            f"vcs={self.num_vcs}, depth={self.vc_depth})"
        )
