"""Vectorized per-cycle kernels of the structure-of-arrays NoC backend.

These functions implement the same three-phase cycle as the object backend
(:class:`repro.noc.network.MeshNetwork`) — injection, switch allocation,
link traversal — but operate on the flat NumPy state arrays of
:class:`repro.noc.soa.SoAMeshNetwork` instead of walking ``Router`` /
``VirtualChannel`` / ``Flit`` objects.  No per-packet Python object is
touched on the hot path; packet objects surface only at the (rare) head
injection and tail-ejection events that feed the latency statistics.

The kernels are written to be **behavior-fingerprint-identical** to the
object backend: the same packets move through the same virtual channels in
the same cycles, the VCO/BOC counters accumulate the same floating-point
values in the same order, and delivered packets are recorded in the same
order.  The key structural facts that make flat vectorization exact:

* each downstream input port has exactly one upstream router, and a router
  grants at most one move per output direction per cycle, so every move of
  a cycle touches a distinct destination VC — all winning moves can be
  applied with independent fancy-indexed updates;
* arbitration ("first eligible flit in rotation-priority order wins the
  output") reduces to a per-``(router, output)`` minimum over a priority
  key, because a candidate's eligibility depends only on start-of-cycle
  state;
* applying all pops before all pushes is equivalent to the object backend's
  sequential move execution, because a FIFO pop and a push into the same
  ring buffer commute.

Flits are packed into single int64 slot values —
``packet_id << 21 | is_tail << 20 | flit_index`` — so a head-of-line peek
is one gather and a link traversal one scatter.  Per-candidate routing and
arbitration lookups come from tables precomputed per topology (see
:class:`repro.noc.soa.SoAMeshNetwork`): the XY next-hop table, the
downstream-port base per ``(router, output)`` pair, and the rotation
priority key per VC for each of the 60 (= lcm of 3/4/5-port routers)
arbitration phases.
"""

from __future__ import annotations

import numpy as np

__all__ = ["inject", "switch", "FIDX_MASK", "TAIL_BIT", "PKT_SHIFT", "KEY_PERIOD"]

#: Packed flit layout: low 20 bits flit index, bit 20 the tail flag, the
#: packet id above.  Packet sizes are bounded by the source queue capacity,
#: far below the 2^20 flit-index ceiling.
FIDX_MASK = (1 << 20) - 1
TAIL_BIT = 1 << 20
PKT_SHIFT = 21

#: Rotation-priority phase count: lcm(3, 4, 5) input ports per router.
KEY_PERIOD = 60

#: Priority sentinel larger than any (rank * num_vcs + vc) key.
_BIG = np.int32(1 << 30)


def _wrap(value: np.ndarray, modulus: int, mask: int | None) -> np.ndarray:
    """Ring-buffer index wrap: bitmask when the modulus is a power of two.

    numpy's ``%`` with a runtime divisor issues a hardware integer division
    per element; the masked form is a single cheap op on the hot arrays.
    """
    return value & mask if mask is not None else value % modulus


# -- phase 1: injection -------------------------------------------------------


def inject(net, cycle: int) -> None:
    """Move flits from source queues into LOCAL input ports (one cycle).

    Mirrors ``MeshNetwork._inject``: throttled nodes first accrue fractional
    bandwidth credit (capped at one cycle's worth), then every node with a
    non-empty source queue injects up to ``injection_bandwidth`` flits,
    gated by free-VC availability and — for *new* packets only — by the
    node's injection allowance.
    """
    bandwidth = net.injection_bandwidth
    limited = net._limited_idx
    if limited.size:
        net._allowance[limited] = np.minimum(
            net._allowance[limited] + net._limits[limited] * bandwidth,
            float(bandwidth),
        )
    active = np.nonzero(net._sq_count > 0)[0]
    if active.size == 0:
        return
    active = _inject_pass(net, active, cycle)
    for _ in range(bandwidth - 1):
        if active.size == 0:
            break
        active = _inject_pass(net, active, cycle)


def _inject_pass(net, nodes: np.ndarray, cycle: int) -> np.ndarray:
    """One flit-injection attempt per node; returns nodes worth revisiting."""
    num_vcs = net.num_vcs
    depth = net.vc_depth
    capacity = net.source_queue_capacity

    front = net._sq_head[nodes]
    val = net._sq_flat[nodes * capacity + front]
    fidx = val & FIDX_MASK
    pkt = val >> PKT_SHIFT
    is_head = fidx == 0
    # A flit starts a new packet when it is the head flit of a packet that
    # has not entered the network yet; only those are gated by the policy
    # limit (continuation flits must never strand a partial worm).
    new_head = is_head & (net._pkt_injected.values[pkt] < 0)
    throttled = None
    if net._limited_idx.size:
        throttled = net._limits[nodes] < 1.0
        passes = ~(throttled & new_head & (net._allowance[nodes] < 1.0))
        if not passes.all():
            nodes = nodes[passes]
            if nodes.size == 0:
                return nodes
            front = front[passes]
            val = val[passes]
            pkt = pkt[passes]
            is_head = is_head[passes]
            new_head = new_head[passes]
            throttled = throttled[passes]

    # Pick a VC on the LOCAL input port.  Body/tail flits continue in the VC
    # their packet's head was injected into (cached per node — at most one
    # partially injected packet exists per source queue, and its VC stays
    # allocated until the tail flit leaves the router); head flits search
    # the port for a free VC.
    vc = net._node_vc[nodes]
    has_vc = net._vc_count[vc] < depth
    heads = np.nonzero(is_head)[0]
    if heads.size:
        # First unallocated (⟺ empty, head-ready) VC of the LOCAL port, from
        # the incrementally maintained per-port cache.
        local_port = nodes[heads] * 5
        first_free = net._port_first_free[local_port]
        vc[heads] = local_port * num_vcs + first_free
        has_vc[heads] = first_free < num_vcs
    if not has_vc.all():
        if not has_vc.any():
            return nodes[:0]
        nodes = nodes[has_vc]
        front = front[has_vc]
        val = val[has_vc]
        pkt = pkt[has_vc]
        is_head = is_head[has_vc]
        new_head = new_head[has_vc]
        vc = vc[has_vc]
        heads = np.nonzero(is_head)[0]
        if throttled is not None:
            throttled = throttled[has_vc]

    # Pop the source queue, push into the chosen VC.
    net._sq_head[nodes] = _wrap(front + 1, capacity, net._cap_mask)
    net._sq_count[nodes] -= 1
    slot = vc * depth + _wrap(
        net._vc_head[vc] + net._vc_count[vc], depth, net._depth_mask
    )
    net._vc_slots[slot] = val
    net._vc_count[vc] += 1
    local_ports = nodes * 5
    net._buf_writes[local_ports] += 1
    if heads.size:
        head_vc = vc[heads]
        net._vc_alloc[head_vc] = pkt[heads]
        net._vc_down[head_vc] = -1
        net._node_vc[nodes[heads]] = head_vc
        head_ports = local_ports[heads]
        net._occupied[head_ports] += 1
        _refresh_first_free(net, head_ports)
    if throttled is not None and throttled.any():
        net._allowance[nodes[throttled]] -= 1.0

    new_idx = np.nonzero(new_head)[0]
    if new_idx.size:
        net._record_injected_ids(pkt[new_idx], cycle)

    if net.injection_bandwidth == 1:
        return nodes[:0]
    return nodes[net._sq_count[nodes] > 0]


def _refresh_first_free(net, ports: np.ndarray) -> None:
    """Recompute the first-free-VC cache for ``ports`` (post head-push)."""
    num_vcs = net.num_vcs
    grid = ports[:, None] * num_vcs + net._arange_vcs[None, :]
    free = net._vc_alloc[grid] == -1
    first = np.argmax(free, axis=1)
    net._port_first_free[ports] = np.where(free.any(axis=1), first, num_vcs)


# -- phases 2 + 3: switch allocation and link traversal ----------------------


def switch(net, cycle: int) -> None:
    """Allocate and execute this cycle's flit moves over the whole mesh."""
    num_vcs = net.num_vcs
    depth = net.vc_depth

    q = np.nonzero(net._vc_count > 0)[0]
    if q.size == 0:
        return

    # Peek every occupied VC's head-of-line flit (one packed gather).
    val = net._vc_slots[q * depth + net._vc_head[q]]
    pkt = val >> PKT_SHIFT
    is_head = (val & FIDX_MASK) == 0
    # Fused XY lookup: the table directly yields the (router, output) slot
    # id ``node * 5 + out_dir``; LOCAL outputs are the slots ≡ 0 (mod 5).
    # Past the route-table cut-over (O(nodes²) memory) the direction is
    # derived on the fly from coordinates — a handful of elementwise ops on
    # the candidate set instead of one gather into a quadratic table.
    dest = net._pkt_dest.values[pkt]
    if net._dynamic_routes:
        # Degraded mesh: the fault-aware provider's state-dependent table
        # replaces XY.  VCs with a live wormhole binding derive their output
        # from the binding itself (the direction their head actually took —
        # a table rebuild mid-worm must not re-route the body), matching the
        # object backend's cached ``vc.output_direction``.  Unbound fronts
        # are heads (or locally ejecting bodies) routed from the table by
        # their travel state; fault-activation excision guarantees the
        # lookup never yields "unroutable".
        out_dir = net._route3[net._q_state_base[q] + dest].astype(np.int64)
        cached_down = net._vc_down[q]
        bound = cached_down >= 0
        if bound.any():
            bound_dir = net._tables.opposite[(cached_down // net.num_vcs) % 5]
            out_dir = np.where(bound, bound_dir, out_dir)
        if (out_dir < 0).any():  # pragma: no cover - excision invariant
            raise RuntimeError("unroutable head reached the switch kernel")
        slot_id = net._q_node5[q] + out_dir
    elif net._route_slot is not None:
        slot_id = net._route_slot[net._q_node_base[q] + dest]
        if net._q_slot_off is not None:
            # Batched disjoint-union mode: the route table stays the solo
            # per-episode one (small enough to sit in cache), q_node_base is
            # biased so the fused index lands on the episode-local (node,
            # dest) entry, and the episode's arbitration-slot offset is
            # added here to globalise the slot id.
            slot_id = slot_id + net._q_slot_off[q]
    else:
        node = net._q_node[q]
        tables = net._tables
        nx = tables.x[node]
        ny = tables.y[node]
        dx = tables.x[dest]
        dy = tables.y[dest]
        # DIRECTION_INDEX order: LOCAL=0, EAST=1, NORTH=2, WEST=3, SOUTH=4.
        out_dir = np.where(
            nx < dx,
            1,
            np.where(nx > dx, 3, np.where(ny < dy, 2, np.where(ny > dy, 4, 0))),
        )
        slot_id = net._q_node5[q] + out_dir
    eject = net._slot_is_local[slot_id]
    key = net._key_table[cycle % KEY_PERIOD][q]

    # Downstream VC per candidate (-1 when the move is not possible).  Body
    # and tail flits follow their VC's cached wormhole binding; a head-front
    # VC always carries ``vc_down == -1`` (the binding is reset both when a
    # tail pops and when a head pushes), so the cached path yields -1 for
    # heads and the free-VC search below only needs to fill those in.
    cached = net._vc_down[q]
    valid = cached >= 0
    down = np.where(
        valid & (net._vc_count.take(cached, mode="clip") < depth), cached, -1
    )
    head_idx = np.nonzero(is_head & ~eject)[0]
    if head_idx.size:
        # A VC is free to accept a new head iff it is unallocated: an
        # allocated VC may be empty (its flits forwarded, tail still
        # upstream) but an unallocated one is always empty.  The first free
        # VC per port comes from the incrementally maintained cache.
        down_port = net._down_port[slot_id[head_idx]]
        first_free = net._port_first_free[down_port]
        down[head_idx] = np.where(
            first_free < num_vcs, down_port * num_vcs + first_free, -1
        )

    eligible = eject | (down >= 0)
    if not eligible.any():
        return

    # Winner per (router, output direction): minimum priority key among the
    # eligible candidates.  Keys are unique within a slot (distinct ports
    # differ in rotation rank, distinct VCs of one port in vc index);
    # ineligible candidates carry the sentinel so they can never win.
    masked_key = np.where(eligible, key, _BIG)
    best = net._best_key
    best[slot_id] = _BIG
    np.minimum.at(best, slot_id, masked_key)
    winners = np.nonzero(eligible & (masked_key == best[slot_id]))[0]

    src = q[winners]
    win_val = val[winners]
    win_tail = (win_val & TAIL_BIT) != 0
    win_down = down[winners]
    src_port = net._q_port[src]
    tail_idx = np.nonzero(win_tail)[0]

    # Pops (every winning move reads its source VC's head-of-line flit).
    net._vc_head[src] = _wrap(net._vc_head[src] + 1, depth, net._depth_mask)
    net._vc_count[src] -= 1
    released = src[tail_idx]
    net._vc_alloc[released] = -1
    net._vc_down[released] = -1
    # bincount + whole-array add beats np.add.at's per-element dispatch once
    # the winner set is more than a handful of moves (the batched case).
    net._buf_reads += np.bincount(src_port, minlength=net._buf_reads.size)
    tail_ports = src_port[tail_idx]
    np.add.at(net._occupied, tail_ports, -1)
    # A released VC may now be the port's first free one (two tails can pop
    # from one port in a cycle, hence minimum.at).
    np.minimum.at(net._port_first_free, tail_ports, released % net.num_vcs)

    # Ejections (at most one per router per cycle, in ascending node order —
    # the same order the object backend records deliveries in).  A handful
    # of flits eject per cycle, so a scalar loop beats the vector ops here.
    win_eject = eject[winners]
    eject_idx = np.nonzero(win_eject)[0]
    if eject_idx.size:
        net._record_ejections(
            net._q_node[src[eject_idx]],
            win_tail[eject_idx],
            win_val[eject_idx] >> PKT_SHIFT,
            cycle,
        )

    # Link traversals (pushes; distinct destination VCs by construction).
    fwd_idx = np.nonzero(~win_eject)[0]
    if fwd_idx.size:
        dst = win_down[fwd_idx]
        fwd_val = win_val[fwd_idx]
        fwd_tail = win_tail[fwd_idx]
        head_idx2 = np.nonzero(is_head[winners[fwd_idx]])[0]
        slot2 = dst * depth + _wrap(
            net._vc_head[dst] + net._vc_count[dst], depth, net._depth_mask
        )
        net._vc_slots[slot2] = fwd_val
        net._vc_count[dst] += 1
        head_dst = dst[head_idx2]
        net._vc_alloc[head_dst] = fwd_val[head_idx2] >> PKT_SHIFT
        net._vc_down[head_dst] = -1
        dst_port = net._q_port[dst]
        net._buf_writes += np.bincount(dst_port, minlength=net._buf_writes.size)
        if head_idx2.size:
            head_ports = dst_port[head_idx2]
            net._occupied[head_ports] += 1
            _refresh_first_free(net, head_ports)
        # Wormhole: body/tail flits must follow the head into the same
        # downstream VC; the tail releases the binding.
        net._vc_down[src[fwd_idx]] = np.where(fwd_tail, -1, dst)
