"""Input-queued wormhole router model with virtual channels.

The router exposes exactly the two observables DL2Fence monitors:

* **VCO** (virtual channel occupancy): the instantaneous fraction of occupied
  virtual channels of an input port, a float in [0, 1];
* **BOC** (buffer operation counts): the number of buffer writes + reads an
  input port performed since the counter was last reset (once per sampling
  window by the global performance monitor).

The switching model is simplified relative to Garnet (no explicit credit
network, single-cycle switch traversal) but preserves the behaviour that
matters for the paper: wormhole packets hold a virtual channel per hop from
head to tail, congestion back-pressures upstream along the XY route, and a
flooding flow therefore raises VCO/BOC on every router of its route.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.noc.packet import Flit
from repro.noc.topology import Direction, MeshTopology

__all__ = ["VirtualChannel", "InputPort", "Router"]


@dataclass
class VirtualChannel:
    """A FIFO flit buffer allocated to at most one packet at a time."""

    depth: int
    flits: deque = field(default_factory=deque)
    allocated_packet: int | None = None
    output_direction: Direction | None = None
    downstream_vc: "VirtualChannel | None" = None

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("virtual channel depth must be >= 1")

    @property
    def occupied(self) -> bool:
        """A VC is occupied while it holds flits or is allocated to a packet."""
        return bool(self.flits) or self.allocated_packet is not None

    @property
    def has_space(self) -> bool:
        return len(self.flits) < self.depth

    def can_accept(self, flit: Flit) -> bool:
        """True when ``flit`` may be written into this VC this cycle."""
        if not self.has_space:
            return False
        if flit.is_head:
            return not self.occupied
        return self.allocated_packet == flit.packet.packet_id

    def push(self, flit: Flit) -> None:
        """Write a flit (allocating the VC on a head flit)."""
        if not self.can_accept(flit):
            raise RuntimeError(f"VC cannot accept {flit!r}")
        if flit.is_head:
            self.allocated_packet = flit.packet.packet_id
            self.output_direction = None
            self.downstream_vc = None
        self.flits.append(flit)

    def pop(self) -> Flit:
        """Read the head-of-line flit (releasing the VC on a tail flit)."""
        if not self.flits:
            raise RuntimeError("cannot pop from an empty VC")
        flit = self.flits.popleft()
        if flit.is_tail:
            self.allocated_packet = None
            self.output_direction = None
            self.downstream_vc = None
        return flit

    def peek(self) -> Flit | None:
        """Head-of-line flit without consuming it."""
        return self.flits[0] if self.flits else None


class InputPort:
    """One input port of a router: a bank of virtual channels plus counters."""

    def __init__(self, direction: Direction, num_vcs: int, vc_depth: int) -> None:
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.direction = direction
        self.vcs = [VirtualChannel(depth=vc_depth) for _ in range(num_vcs)]
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.occupancy_sum = 0.0
        self.occupancy_samples = 0
        # Incrementally maintained counters (updated in write_flit/read_flit)
        # so the per-cycle occupancy accumulation and the switch allocator's
        # empty-port skip are O(1) instead of scanning every VC.
        self.occupied_vcs = 0
        self.buffered_flits = 0
        self.router: "Router | None" = None

    # -- DL2Fence observables ---------------------------------------------
    @property
    def instantaneous_occupancy(self) -> float:
        """Occupied VCs / total VCs right now (float in [0, 1])."""
        return self.occupied_vcs / len(self.vcs)

    @property
    def vc_occupancy(self) -> float:
        """VCO: VC occupancy averaged over the current sampling window.

        Garnet-style statistics accumulate occupancy every cycle and report
        the average over the measurement interval; the DL2Fence monitor
        resets the accumulator once per sampling window.  Before the first
        accumulation (cycle 0) the instantaneous value is returned.
        """
        if self.occupancy_samples == 0:
            return self.instantaneous_occupancy
        return self.occupancy_sum / self.occupancy_samples

    def accumulate_occupancy(self) -> None:
        """Record this cycle's occupancy into the window average."""
        self.occupancy_sum += self.occupied_vcs / len(self.vcs)
        self.occupancy_samples += 1

    @property
    def buffer_operation_count(self) -> int:
        """Accumulated BOC: buffer writes + reads since the last reset."""
        return self.buffer_writes + self.buffer_reads

    def reset_counters(self) -> None:
        """Reset the BOC and VCO accumulators (once per sampling window)."""
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.occupancy_sum = 0.0
        self.occupancy_samples = 0

    # -- buffer operations ---------------------------------------------------
    def free_vc_for(self, flit: Flit) -> VirtualChannel | None:
        """Pick a VC able to accept ``flit``, or None when the port is full."""
        if flit.is_head:
            for vc in self.vcs:
                if not vc.occupied and vc.has_space:
                    return vc
            return None
        for vc in self.vcs:
            if vc.allocated_packet == flit.packet.packet_id and vc.has_space:
                return vc
        return None

    def write_flit(self, flit: Flit, vc: VirtualChannel) -> None:
        """Record the buffer write and store the flit."""
        vc.push(flit)
        self.buffer_writes += 1
        self.buffered_flits += 1
        if flit.is_head:
            self.occupied_vcs += 1
        router = self.router
        if router is not None:
            router.buffered_flits += 1

    def read_flit(self, vc: VirtualChannel) -> Flit:
        """Record the buffer read and return the head-of-line flit."""
        flit = vc.pop()
        self.buffer_reads += 1
        self.buffered_flits -= 1
        if flit.is_tail:
            self.occupied_vcs -= 1
        router = self.router
        if router is not None:
            router.buffered_flits -= 1
        return flit

    @property
    def total_buffered_flits(self) -> int:
        return self.buffered_flits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InputPort({self.direction.value}, vcs={len(self.vcs)}, "
            f"occ={self.vc_occupancy:.2f})"
        )


class Router:
    """A mesh router: one input port per attached link plus the local port."""

    def __init__(
        self,
        node_id: int,
        topology: MeshTopology,
        num_vcs: int = 4,
        vc_depth: int = 4,
    ) -> None:
        self.node_id = node_id
        self.topology = topology
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.input_ports: dict[Direction, InputPort] = {
            Direction.LOCAL: InputPort(Direction.LOCAL, num_vcs, vc_depth)
        }
        for direction in topology.input_directions(node_id):
            self.input_ports[direction] = InputPort(direction, num_vcs, vc_depth)
        for port in self.input_ports.values():
            port.router = self
        self.buffered_flits = 0
        self.packets_ejected = 0
        self.flits_ejected = 0
        # Every priority rotation of the input ports, precomputed so the
        # switch allocator does not rebuild the ordering list each cycle.
        ports = list(self.input_ports.values())
        self.port_rotations: list[list[InputPort]] = [
            ports[offset:] + ports[:offset] for offset in range(len(ports))
        ]
        # Downstream input port per output direction; filled by MeshNetwork
        # once all routers exist, so the allocator needs no per-cycle
        # neighbor lookups.
        self.down_ports: dict[Direction, InputPort] = {}

    # -- observables -------------------------------------------------------
    def port(self, direction: Direction) -> InputPort | None:
        """Input port facing ``direction`` (None when the router has no such link)."""
        return self.input_ports.get(direction)

    def vco(self, direction: Direction) -> float:
        """VCO of one input port; 0.0 for ports the router does not have."""
        port = self.input_ports.get(direction)
        return port.vc_occupancy if port is not None else 0.0

    def boc(self, direction: Direction) -> int:
        """BOC of one input port; 0 for ports the router does not have."""
        port = self.input_ports.get(direction)
        return port.buffer_operation_count if port is not None else 0

    def reset_counters(self) -> None:
        """Reset the BOC/VCO accumulators of every input port."""
        for port in self.input_ports.values():
            port.reset_counters()

    def accumulate_occupancy(self) -> None:
        """Record this cycle's occupancy on every input port."""
        for port in self.input_ports.values():
            port.accumulate_occupancy()

    @property
    def total_buffered_flits(self) -> int:
        return self.buffered_flits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router(node={self.node_id}, ports={len(self.input_ports)})"
