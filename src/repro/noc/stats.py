"""Latency and throughput statistics collected during simulation.

These feed the latency-vs-FIR curves of Figure 1: the paper reports packet
latency, flit latency, and their queueing components as the Flooding
Injection Rate increases from 0 (attack disabled) to 1 (system crash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.noc.packet import Packet

__all__ = ["LatencyStats", "NetworkStats"]


@dataclass
class LatencyStats:
    """Aggregate latency metrics over a set of delivered packets."""

    packet_latency: float = 0.0
    packet_queue_latency: float = 0.0
    flit_latency: float = 0.0
    flit_queue_latency: float = 0.0
    delivered_packets: int = 0
    delivered_flits: int = 0

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "LatencyStats":
        """Compute averages over all delivered packets in ``packets``.

        Packet latency is creation-to-ejection; queue latency is the portion
        spent waiting in the source queue.  Flit latency follows the Garnet
        convention of normalising the network traversal per flit (a long
        packet's flits each see the serialisation latency of the whole
        packet, so flit latency is latency averaged per flit).
        """
        total_latencies = []
        queue_latencies = []
        flit_latencies = []
        flit_queue_latencies = []
        delivered_flits = 0
        for packet in packets:
            if not packet.is_delivered:
                continue
            total = packet.total_latency()
            queue = packet.queue_latency()
            total_latencies.append(total)
            queue_latencies.append(queue)
            # Each flit of the packet experiences the same queueing delay but
            # the network portion is spread across the packet's flits.
            per_flit_network = packet.network_latency() / packet.size_flits
            flit_latencies.extend([queue + per_flit_network] * packet.size_flits)
            flit_queue_latencies.extend([queue] * packet.size_flits)
            delivered_flits += packet.size_flits
        if not total_latencies:
            return cls()
        return cls(
            packet_latency=float(np.mean(total_latencies)),
            packet_queue_latency=float(np.mean(queue_latencies)),
            flit_latency=float(np.mean(flit_latencies)),
            flit_queue_latency=float(np.mean(flit_queue_latencies)),
            delivered_packets=len(total_latencies),
            delivered_flits=delivered_flits,
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for table/figure generation."""
        return {
            "packet_latency": self.packet_latency,
            "packet_queue_latency": self.packet_queue_latency,
            "flit_latency": self.flit_latency,
            "flit_queue_latency": self.flit_queue_latency,
            "delivered_packets": float(self.delivered_packets),
            "delivered_flits": float(self.delivered_flits),
        }


@dataclass
class NetworkStats:
    """Running counters maintained by the simulator."""

    cycles: int = 0
    packets_created: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    malicious_packets_created: int = 0
    malicious_packets_delivered: int = 0
    delivered: list[Packet] = field(default_factory=list)

    def record_created(self, packet: Packet) -> None:
        self.packets_created += 1
        if packet.is_malicious:
            self.malicious_packets_created += 1

    def record_injected(self, packet: Packet) -> None:
        self.packets_injected += 1

    def record_delivered(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.flits_delivered += packet.size_flits
        if packet.is_malicious:
            self.malicious_packets_delivered += 1
        self.delivered.append(packet)

    def latency(self, benign_only: bool = False) -> LatencyStats:
        """Latency statistics over delivered packets.

        ``benign_only=True`` excludes flooding packets, matching the paper's
        Figure 1 which measures the impact of the attack on the *workload*.
        """
        packets = (
            [p for p in self.delivered if not p.is_malicious]
            if benign_only
            else self.delivered
        )
        return LatencyStats.from_packets(packets)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / created packets (drops towards 0 as the NoC saturates)."""
        if self.packets_created == 0:
            return 1.0
        return self.packets_delivered / self.packets_created
