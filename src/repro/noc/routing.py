"""Dimension-ordered (XY) routing and its reverse deduction.

The paper's NoC uses Mesh-XY routing: packets first travel along the X axis
(east/west) until the destination column is reached, then along the Y axis
(north/south).  Two helpers beyond next-hop computation are provided because
the DL2Fence localization stages rely on them:

* :func:`xy_route_victims` — every router an attack flow traverses, i.e. the
  Routing-Path Victims (RPV) of Figure 1, used for segmentation ground truth
  and by the Victim Complementing Enhancement (VCE);
* :func:`reverse_xy_sources` — given an observed set of victims and the input
  direction of the abnormal traffic, the candidate attacker positions used by
  the Table-Like Method.
"""

from __future__ import annotations

from repro.noc.topology import Direction, MeshTopology

__all__ = [
    "UnroutableError",
    "xy_next_direction",
    "xy_route_path",
    "xy_route_victims",
    "reverse_xy_sources",
]


class UnroutableError(RuntimeError):
    """No legal route exists between two nodes.

    Raised instead of silently mis-stepping or looping: on the full mesh XY
    always terminates, but once links or routers die (see
    :mod:`repro.noc.route_provider`) a destination can become unreachable,
    and every consumer — both simulator backends, the TLM route
    enumeration, the VCE — must see the same loud failure.
    """

    def __init__(self, source: int, destination: int, detail: str = "") -> None:
        message = f"no route from node {source} to node {destination}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.source = source
        self.destination = destination


def xy_next_direction(topology: MeshTopology, current: int, destination: int) -> Direction:
    """Output direction chosen by XY routing at ``current`` for ``destination``.

    Returns :class:`Direction.LOCAL` when the packet has arrived.
    """
    if current == destination:
        return Direction.LOCAL
    cx, cy = topology.coordinates(current)
    dx, dy = topology.coordinates(destination)
    if cx < dx:
        return Direction.EAST
    if cx > dx:
        return Direction.WEST
    if cy < dy:
        return Direction.NORTH
    return Direction.SOUTH


def xy_route_path(topology: MeshTopology, source: int, destination: int) -> list[int]:
    """Ordered node ids visited from ``source`` to ``destination`` inclusive."""
    if source == destination:
        return [source]
    path = [source]
    current = source
    # A minimal XY path has at most rows+columns hops; guard against loops.
    for _ in range(topology.rows + topology.columns + 1):
        direction = xy_next_direction(topology, current, destination)
        if direction is Direction.LOCAL:
            break
        nxt = topology.neighbor(current, direction)
        if nxt is None:  # pragma: no cover - unreachable on a mesh
            raise UnroutableError(source, destination, f"fell off the mesh at {current}")
        path.append(nxt)
        current = nxt
    if path[-1] != destination:  # pragma: no cover - defensive
        raise UnroutableError(source, destination, f"stalled on path {path}")
    return path


def xy_route_victims(
    topology: MeshTopology, source: int, destination: int, include_source: bool = False
) -> list[int]:
    """Routing-Path Victims of a flow: every node whose router it occupies.

    The paper counts the target victim and all intermediate routers as
    victims; the attacking source itself is excluded by default.
    """
    path = xy_route_path(topology, source, destination)
    return path if include_source else path[1:]


def reverse_xy_sources(
    topology: MeshTopology, victims: list[int], input_direction: Direction
) -> list[int]:
    """Candidate attacker node ids for an observed abnormal input direction.

    Implements the per-direction rules of the Table-Like Method (Figure 3):
    traffic arriving on a router's EAST input port came from the node one
    column to the east, so for a victim route the attacker is adjacent to the
    largest/smallest route id in the corresponding dimension:

    * EAST  input abnormal  -> attacker id = max(route) + 1
    * WEST  input abnormal  -> attacker id = min(route) - 1
    * NORTH input abnormal  -> attacker id = max(route) + columns
    * SOUTH input abnormal  -> attacker id = min(route) - columns

    Only candidates that exist on the mesh are returned.
    """
    if not victims:
        return []
    if input_direction is Direction.LOCAL:
        raise ValueError("local direction carries no attacker-side information")
    columns = topology.columns
    if input_direction is Direction.EAST:
        base = max(victims)
        candidate = base + 1
        same_row = candidate in topology and candidate // columns == base // columns
        return [candidate] if same_row else []
    if input_direction is Direction.WEST:
        base = min(victims)
        candidate = base - 1
        same_row = candidate in topology and candidate // columns == base // columns
        return [candidate] if same_row else []
    if input_direction is Direction.NORTH:
        candidate = max(victims) + columns
    else:  # SOUTH
        candidate = min(victims) - columns
    return [candidate] if candidate in topology else []
