"""Episode-batched structure-of-arrays mesh backend: one dispatch, N meshes.

``BENCH_PR4.json`` showed the remaining 16x16 per-cycle cost is numpy
per-call dispatch (~85 kernel ops per cycle), which no amount of
micro-optimization inside one mesh removes.  Every sweep, training-data
build and robustness-matrix cell runs dozens of *independent* episodes, so
the architectural fix is a leading episode axis: advance all N meshes with
a single run of the existing kernels, amortizing the fixed dispatch cost
N-fold.

:class:`BatchedSoAMeshNetwork` realises that axis without a second kernel
implementation.  The :mod:`repro.noc.soa_step` kernels are agnostic to mesh
shape — they only consume the precomputed lookup tables — so N independent
meshes are advanced as one **disjoint union**: the per-episode tables are
tiled block-diagonally (node ids offset per episode, no links between
blocks, XY routing on per-episode-local coordinates), every state array
spans ``episodes * num_nodes`` nodes, and one ``inject`` + ``switch``
dispatch moves every flit of every episode.  Because blocks share no edges,
no packet, credit or arbitration decision can cross episodes; each episode
block evolves exactly as a solo :class:`~repro.noc.soa.SoAMeshNetwork`
would.

Per-episode observability comes from :class:`SoAMeshLane` views: episode
``i``'s lane exposes the full ``MeshNetwork``-facing surface (enqueue,
stats, feature frames, injection limits, flush) reading and writing the
``i``-th block of the shared arrays, with its own
:class:`~repro.noc.stats.NetworkStats` and packet registry slice — so
``batched(N=1)`` is fingerprint-identical to the solo SoA path, and row
``i`` of ``batched(N=k)`` is fingerprint-identical to a solo run of episode
``i`` (pinned by ``tests/noc/test_batched_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.noc import soa_step
from repro.noc.packet import Packet
from repro.noc.soa import (
    DIRECTION_INDEX,
    MeshTables,
    SoAMeshNetwork,
    SoARouterView,
    _GrowableInt,
    _vc_tables,
    _xy_table_limit,
    mesh_tables,
)
from repro.noc.soa_step import PKT_SHIFT, TAIL_BIT
from repro.noc.stats import NetworkStats
from repro.noc.topology import Direction, MeshTopology
from repro.obs.metrics import METRICS, sim_phase_histogram

__all__ = ["BatchedSoAMeshNetwork", "SoAMeshLane", "batched_tables"]


@dataclass(frozen=True)
class _BatchVcTables:
    """Tiled per-VC lookup tables spanning every episode block."""

    q_node: np.ndarray
    q_port: np.ndarray
    q_node5: np.ndarray
    q_node_base: np.ndarray | None
    key_table: np.ndarray
    down_port: np.ndarray
    route_slot: np.ndarray | None
    q_slot_off: np.ndarray | None


#: Keyed by (rows, columns, num_vcs, episodes, with_route_table).
_BATCH_TABLES_CACHE: dict[
    tuple[int, int, int, int, bool], tuple[MeshTables, _BatchVcTables]
] = {}


def batched_tables(
    topology: MeshTopology, num_vcs: int, episodes: int
) -> tuple[MeshTables, _BatchVcTables]:
    """Block-diagonal lookup tables for ``episodes`` disjoint copies of a mesh.

    Node/port/VC ids of episode ``e`` are the per-episode ids offset by
    ``e * num_nodes`` (respectively ``* 5`` / ``* 5 * num_vcs``); edge and
    downstream-port entries stay ``-1`` at block boundaries, so no kernel
    path can cross episodes.

    Routing keeps the solo backend's fused single-gather lookup:
    ``route_slot`` is the *unmodified* per-episode-local table — it stays
    ``nodes²`` entries no matter how many episodes are batched, small
    enough to live in cache — and ``q_node_base`` is biased by the VC's
    episode so that ``q_node_base[q] + global_dest`` lands on the local
    ``(node, dest)`` entry.  The gathered slot id is episode-local; the
    switch kernel adds ``q_slot_off[q]`` (the episode's arbitration-slot
    offset, ``e * nodes * 5``) to globalise it.  Whenever the solo table
    itself is disabled (``REPRO_XY_TABLE_MAX_NODES``), ``route_slot`` is
    ``None`` and the switch kernel derives XY directions on the fly from
    the tiled per-episode-local coordinates (exact, because source and
    destination of a packet always live in the same block).
    """
    base = mesh_tables(topology)
    vc = _vc_tables(topology, num_vcs)
    nodes = topology.num_nodes
    with_route_table = vc.route_slot is not None
    key = (topology.rows, topology.columns, num_vcs, episodes, with_route_table)
    cached = _BATCH_TABLES_CACHE.get(key)
    if cached is not None:
        return cached

    node_offsets = (np.arange(episodes, dtype=np.int64) * nodes).repeat(nodes)
    neighbor = np.tile(base.neighbor, (episodes, 1))
    neighbor = np.where(neighbor >= 0, neighbor + node_offsets[:, None], -1)
    tables = MeshTables(
        neighbor=neighbor,
        port_exists=np.tile(base.port_exists, (episodes, 1)),
        port_pos=np.tile(base.port_pos, (episodes, 1)),
        nports=np.tile(base.nports, episodes),
        route=None,
        opposite=base.opposite,
        x=np.tile(base.x, episodes),
        y=np.tile(base.y, episodes),
    )

    num_slots = nodes * 5 * num_vcs
    slot_node_off = (np.arange(episodes, dtype=np.int64) * nodes).repeat(num_slots)
    q_node = np.tile(vc.q_node, episodes) + slot_node_off
    port_off = (np.arange(episodes, dtype=np.int64) * nodes * 5).repeat(nodes * 5)
    down_port = np.tile(vc.down_port, episodes)
    down_port = np.where(down_port >= 0, down_port + port_off, -1)
    route_slot = None
    q_node_base = None
    q_slot_off = None
    if with_route_table:
        # Share the solo (node, dest) -> local-slot table and bias the base
        # index so the global destination id cancels its episode offset:
        #   q_node_base[q] + global_dest
        #     = (local_node * nodes - e * nodes) + (e * nodes + local_dest)
        #     = local_node * nodes + local_dest
        route_slot = vc.route_slot
        q_node_base = np.tile(vc.q_node_base, episodes) - slot_node_off
        q_slot_off = (slot_node_off * 5).astype(np.int32)
    batch_vc = _BatchVcTables(
        q_node=q_node,
        q_port=np.tile(vc.q_port, episodes) + slot_node_off * 5,
        q_node5=q_node * 5,
        q_node_base=q_node_base,
        key_table=np.ascontiguousarray(np.tile(vc.key_table, (1, episodes))),
        down_port=down_port,
        route_slot=route_slot,
        q_slot_off=q_slot_off,
    )
    built = (tables, batch_vc)
    _BATCH_TABLES_CACHE[key] = built
    return built


class _LaneStats(NetworkStats):
    """Per-lane counters whose ``delivered`` list materialises lazily.

    All counters are maintained live by the batched kernels; only the
    ``Packet`` objects behind ``delivered`` are deferred.  The property
    flushes the pending delivered log on first read, so latency consumers
    (the guard's recovery windows, Figure 1 curves) see the complete list,
    while counter-only consumers — dataset generation, the robustness
    sweeps — never pay for per-packet object construction.
    """

    def __init__(self, net: "BatchedSoAMeshNetwork") -> None:
        super().__init__()
        self._net = net

    @property
    def delivered(self) -> list[Packet]:  # type: ignore[override]
        self._net._materialize_delivered()
        return self._delivered

    @delivered.setter
    def delivered(self, value: list[Packet]) -> None:
        # Intercepts the dataclass constructor's field assignment.
        self._delivered = value


def _no_direct_surface(name: str):
    def method(self, *args, **kwargs):
        raise TypeError(
            f"BatchedSoAMeshNetwork.{name} is per-episode state; "
            f"use network.lane(i).{name}(...) instead"
        )

    return method


class BatchedSoAMeshNetwork(SoAMeshNetwork):
    """N disjoint mesh copies advanced by one kernel dispatch per cycle.

    The episode-facing surface lives on the :class:`SoAMeshLane` views
    returned by :meth:`lane`; calling a per-episode method (enqueue,
    limits, frames) on the batched network directly raises.
    """

    backend_name = "soa-batch"

    def __init__(
        self,
        topology: MeshTopology,
        episodes: int,
        num_vcs: int = 4,
        vc_depth: int = 4,
        injection_bandwidth: int = 1,
        source_queue_capacity: int = 512,
    ) -> None:
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        self.episodes = int(episodes)
        super().__init__(
            topology,
            num_vcs=num_vcs,
            vc_depth=vc_depth,
            injection_bandwidth=injection_bandwidth,
            source_queue_capacity=source_queue_capacity,
        )
        self._lane_stats = [_LaneStats(self) for _ in range(self.episodes)]
        self._lane_dropped = [0] * self.episodes
        self._lane_occ_samples = np.zeros(self.episodes, dtype=np.int64)
        self._pkt_episode = _GrowableInt()
        # Columnar packet registry: ``Packet`` objects are not built on the
        # hot path at all.  ``enqueue_group`` appends one row per packet
        # (episode-local source, size, creation cycle, malicious flag) and a
        # ``None`` placeholder in ``_packets``; delivered packets are logged
        # as (pid, ejection cycle) pairs and materialised into per-lane
        # ``stats.delivered`` lists — in recorded order — the first time a
        # lane's stats are read (:meth:`_materialize_delivered`).
        self._pkt_source = _GrowableInt()
        self._pkt_size = _GrowableInt()
        self._pkt_created = _GrowableInt()
        self._pkt_malicious = _GrowableInt()
        self._dlog_pid = _GrowableInt()
        self._dlog_cycle = _GrowableInt()
        self._dlog_done = 0
        self._lanes = [SoAMeshLane(self, index) for index in range(self.episodes)]

    def _install_tables(self) -> None:
        tables, vc = batched_tables(self.topology, self.num_vcs, self.episodes)
        self._tables = tables
        self._q_node = vc.q_node
        self._q_port = vc.q_port
        self._q_node5 = vc.q_node5
        # Shared episode-local fused-XY table plus per-VC slot offsets (all
        # None when the table is disabled — the switch kernel then routes
        # on the fly from the tiled local coordinates).
        self._q_node_base = vc.q_node_base
        self._key_table = vc.key_table
        self._down_port = vc.down_port
        self._route_slot = vc.route_slot
        self._q_slot_off = vc.q_slot_off
        self._array_nodes = self.topology.num_nodes * self.episodes

    # -- episode views -------------------------------------------------------
    def lane(self, index: int) -> "SoAMeshLane":
        """The ``MeshNetwork``-facing view of episode ``index``."""
        return self._lanes[index]

    @property
    def lanes(self) -> list["SoAMeshLane"]:
        return list(self._lanes)

    # -- cycle advance -------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Advance every episode by one cycle in a single kernel dispatch."""
        if METRICS.active:
            series = self._phase_series
            if series is None:
                hist = sim_phase_histogram()
                series = self._phase_series = (
                    hist.series(backend="soa-batch", phase="inject"),
                    hist.series(backend="soa-batch", phase="switch"),
                )
            start = perf_counter()
            soa_step.inject(self, cycle)
            mid = perf_counter()
            soa_step.switch(self, cycle)
            end = perf_counter()
            series[0].observe(mid - start)
            series[1].observe(end - mid)
        else:
            soa_step.inject(self, cycle)
            soa_step.switch(self, cycle)
        if self._occ_exact:
            self._occ_sum_int += self._occupied
        else:
            np.divide(self._occupied, float(self.num_vcs), out=self._occ_tmp)
            self._occ_sum += self._occ_tmp
        self._lane_occ_samples += 1
        next_cycle = cycle + 1
        for stats in self._lane_stats:
            stats.cycles = next_cycle

    # -- kernel callbacks (route per-packet events to their episode) ---------
    def _record_injected_ids(self, injected_ids: np.ndarray, cycle: int) -> None:
        # No object is touched: the injection cycle lives in the registry
        # column and lands on the Packet at delivery materialisation.
        self._pkt_injected.values[injected_ids] = cycle
        counts = np.bincount(
            self._pkt_episode.values[injected_ids], minlength=self.episodes
        )
        for lane in np.nonzero(counts)[0].tolist():
            self._lane_stats[lane].packets_injected += int(counts[lane])

    def _record_ejections(
        self, nodes: np.ndarray, tails: np.ndarray, pids: np.ndarray, cycle: int
    ) -> None:
        # A router ejects at most one flit per cycle, so ``nodes`` holds no
        # duplicates and plain fancy-indexed increments are exact.
        self._flits_ejected[nodes] += 1
        tail_idx = np.nonzero(tails)[0]
        if tail_idx.size == 0:
            return
        tail_pids = pids[tail_idx]
        self._packets_ejected[nodes[tail_idx]] += 1
        episodes = self._pkt_episode.values[tail_pids]
        delivered = np.bincount(episodes, minlength=self.episodes)
        flits = np.bincount(
            episodes, weights=self._pkt_size.values[tail_pids], minlength=self.episodes
        )
        malicious = np.bincount(
            episodes,
            weights=self._pkt_malicious.values[tail_pids],
            minlength=self.episodes,
        )
        for lane in np.nonzero(delivered)[0].tolist():
            stats = self._lane_stats[lane]
            stats.packets_delivered += int(delivered[lane])
            stats.flits_delivered += int(flits[lane])
            stats.malicious_packets_delivered += int(malicious[lane])
        self._dlog_pid.extend(tail_pids)
        self._dlog_cycle.extend_fill(cycle, tail_pids.size)

    def _materialize_delivered(self) -> None:
        """Flush the delivered log into per-lane ``stats.delivered`` lists.

        Counters are maintained live by :meth:`_record_ejections`; only the
        per-packet ``Packet`` objects are deferred.  Appending in log order
        preserves each lane's delivery order (the fingerprint the
        equivalence tests pin), and consumers that never read delivered
        packets — training-set generation reads feature frames only — never
        pay for their materialisation.
        """
        done = self._dlog_done
        total = len(self._dlog_pid)
        if done == total:
            return
        self._dlog_done = total
        pids = self._dlog_pid.values[done:total]
        episodes = self._pkt_episode.values[pids]
        nodes = self.topology.num_nodes
        dest_local = (self._pkt_dest.values[pids] - episodes * nodes).tolist()
        sources = self._pkt_source.values[pids].tolist()
        sizes = self._pkt_size.values[pids].tolist()
        created = self._pkt_created.values[pids].tolist()
        malicious = self._pkt_malicious.values[pids].tolist()
        injected = self._pkt_injected.values[pids].tolist()
        ejected = self._dlog_cycle.values[done:total].tolist()
        lanes = episodes.tolist()
        packets = self._packets
        # The raw per-lane lists: going through the _LaneStats.delivered
        # property here would re-enter this method once per append.
        lane_delivered = [stats._delivered for stats in self._lane_stats]
        for row, pid in enumerate(pids.tolist()):
            packet = packets[pid]
            if packet is None:
                packet = Packet(
                    source=sources[row],
                    destination=dest_local[row],
                    size_flits=sizes[row],
                    created_cycle=created[row],
                    is_malicious=bool(malicious[row]),
                )
                packets[pid] = packet
            packet.injected_cycle = injected[row]
            packet.ejected_cycle = ejected[row]
            lane_delivered[lanes[row]].append(packet)

    # -- grouped cross-episode ingress ---------------------------------------
    def enqueue_group(
        self,
        lane_ids: np.ndarray,
        sources: np.ndarray,
        destinations: np.ndarray,
        size_flits: int,
        cycle: int,
        malicious: bool,
    ) -> int:
        """Queue one packet per (lane, source, destination) triple in one sweep.

        ``sources`` / ``destinations`` are episode-local node ids aligned
        with ``lane_ids``.  Semantically identical to calling each lane's
        :meth:`SoAMeshLane.enqueue_batch` separately (per-lane capacity
        checks, drop counters and stats), but the ring writes of every
        episode happen as one array sweep — the batched emission path of
        :class:`repro.noc.batch_sim.BatchedNoCSimulator`.
        """
        lane_ids = np.asarray(lane_ids, dtype=np.int64)
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        count = sources.size
        if count == 0:
            return 0
        if self._routable_start is not None:
            routable = self._routable_start[sources, destinations]
            if not routable.all():
                drops = np.bincount(lane_ids[~routable], minlength=self.episodes)
                for lane in np.nonzero(drops)[0].tolist():
                    self._lane_dropped[lane] += int(drops[lane])
                self.unroutable_packets += int(count - routable.sum())
                lane_ids = lane_ids[routable]
                sources = sources[routable]
                destinations = destinations[routable]
                count = sources.size
                if count == 0:
                    return 0
        nodes = self.topology.num_nodes
        gsources = sources + lane_ids * nodes
        if count < 12 or np.unique(gsources).size != count:
            accepted = 0
            for lane, source, destination in zip(
                lane_ids.tolist(), sources.tolist(), destinations.tolist()
            ):
                accepted += self._lanes[lane].enqueue_packet(
                    Packet(
                        source=source,
                        destination=destination,
                        size_flits=size_flits,
                        created_cycle=cycle,
                        is_malicious=malicious,
                    )
                )
            return accepted
        capacity = self.source_queue_capacity
        fits = self._sq_count[gsources] + size_flits <= capacity
        if not fits.all():
            drops = np.bincount(lane_ids[~fits], minlength=self.episodes)
            for lane in np.nonzero(drops)[0].tolist():
                self._lane_dropped[lane] += int(drops[lane])
            lane_ids = lane_ids[fits]
            sources = sources[fits]
            destinations = destinations[fits]
            gsources = gsources[fits]
            count = sources.size
            if count == 0:
                return 0
        created = np.bincount(lane_ids, minlength=self.episodes)
        for lane in np.nonzero(created)[0].tolist():
            stats = self._lane_stats[lane]
            stats.packets_created += int(created[lane])
            if malicious:
                stats.malicious_packets_created += int(created[lane])
        first_pid = len(self._packets)
        # Registry columns only — the Packet objects of the delivered subset
        # are materialised lazily (see _materialize_delivered).
        self._packets.extend([None] * count)
        self._pkt_source.extend(sources)
        self._pkt_dest.extend(destinations + lane_ids * nodes)
        self._pkt_episode.extend(lane_ids)
        self._pkt_injected.extend_fill(-1, count)
        self._pkt_size.extend_fill(size_flits, count)
        self._pkt_created.extend_fill(cycle, count)
        self._pkt_malicious.extend_fill(1 if malicious else 0, count)
        template = self._flit_templates.get(size_flits)
        if template is None:
            template = np.arange(size_flits, dtype=np.int64)
            template[-1] += TAIL_BIT
            self._flit_templates[size_flits] = template
        pids = np.arange(first_pid, first_pid + count, dtype=np.int64)
        starts = (self._sq_head[gsources] + self._sq_count[gsources]) % capacity
        if (starts + size_flits <= capacity).all():
            positions = (gsources * capacity + starts)[:, None] + np.arange(size_flits)
            self._sq_flat[positions] = (pids[:, None] << PKT_SHIFT) + template[None, :]
        else:
            values = (pids[:, None] << PKT_SHIFT) + template[None, :]
            for row, (node, start) in enumerate(
                zip(gsources.tolist(), starts.tolist())
            ):
                end = start + size_flits
                if end <= capacity:
                    self._sq_vals[node, start:end] = values[row]
                else:
                    split = capacity - start
                    self._sq_vals[node, start:] = values[row, :split]
                    self._sq_vals[node, : end - capacity] = values[row, split:]
        self._sq_count[gsources] += size_flits
        return count

    def _credit_unroutable_drops(self, node: int, packets: int) -> None:
        """Unroutable drops land on the owning episode's lane counter."""
        self._lane_dropped[node // self.topology.num_nodes] += packets
        self.unroutable_packets += packets

    # -- global bookkeeping ---------------------------------------------------
    @property
    def dropped_packets(self) -> int:  # type: ignore[override]
        """Drops across every episode (per-episode counts live on the lanes)."""
        return sum(self._lane_dropped)

    @dropped_packets.setter
    def dropped_packets(self, value: int) -> None:
        # Assigned 0 by the base constructor before the lane lists exist.
        if value != 0:
            raise TypeError("per-episode drops are tracked on the lanes")

    def _occ_samples_for_port(self, flat_port: int) -> int:
        return int(self._lane_occ_samples[flat_port // (self.topology.num_nodes * 5)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedSoAMeshNetwork({self.topology.rows}x{self.topology.columns}"
            f" x{self.episodes} episodes, vcs={self.num_vcs})"
        )

    # Per-episode surface: direct calls would silently mix episode state.
    enqueue_packet = _no_direct_surface("enqueue_packet")
    enqueue_batch = _no_direct_surface("enqueue_batch")
    set_injection_limit = _no_direct_surface("set_injection_limit")
    injection_limit = _no_direct_surface("injection_limit")
    flush_source_queue = _no_direct_surface("flush_source_queue")
    feature_frame = _no_direct_surface("feature_frame")
    feature_frames = _no_direct_surface("feature_frames")
    reset_boc_counters = _no_direct_surface("reset_boc_counters")
    router = _no_direct_surface("router")


class SoAMeshLane:
    """The ``MeshNetwork``-facing surface of one episode of a batched mesh.

    Reads and writes the episode's block of the shared state arrays; every
    observable (stats, frames, drops, limits) is private to the episode, so
    consumers written against :class:`~repro.noc.soa.SoAMeshNetwork` — the
    monitor, the defense guard, the dataset builder — run unchanged.
    """

    backend_name = "soa"

    def __init__(self, net: BatchedSoAMeshNetwork, index: int) -> None:
        self._net = net
        self.lane_index = index
        self.topology = net.topology
        self._nodes = net.topology.num_nodes
        self._off = index * self._nodes

    # -- shared configuration -------------------------------------------------
    @property
    def num_vcs(self) -> int:
        return self._net.num_vcs

    @property
    def vc_depth(self) -> int:
        return self._net.vc_depth

    @property
    def injection_bandwidth(self) -> int:
        return self._net.injection_bandwidth

    @property
    def source_queue_capacity(self) -> int:
        return self._net.source_queue_capacity

    @property
    def stats(self) -> NetworkStats:
        # Counters are live; the delivered Packet list flushes itself on
        # first read (see _LaneStats), so counter reads stay O(1).
        return self._net._lane_stats[self.lane_index]

    @property
    def dropped_packets(self) -> int:
        return self._net._lane_dropped[self.lane_index]

    @property
    def route_provider(self):
        """Active fault-aware route provider (shared by every episode)."""
        return self._net._route_provider

    # -- injection interface --------------------------------------------------
    def enqueue_packet(self, packet: Packet) -> bool:
        """Queue a packet's flits at its (episode-local) source node."""
        net = self._net
        node = self._off + packet.source
        if net._routable_start is not None and not net._routable_start[
            packet.source, packet.destination
        ]:
            net._credit_unroutable_drops(node, 1)
            return False
        size = packet.size_flits
        capacity = net.source_queue_capacity
        count = int(net._sq_count[node])
        if count + size > capacity:
            net._lane_dropped[self.lane_index] += 1
            return False
        net._lane_stats[self.lane_index].record_created(packet)
        pid = len(net._packets)
        net._packets.append(packet)
        net._pkt_dest.append(self._off + packet.destination)
        net._pkt_episode.append(self.lane_index)
        net._pkt_injected.append(
            -1 if packet.injected_cycle is None else packet.injected_cycle
        )
        net._pkt_source.append(packet.source)
        net._pkt_size.append(size)
        net._pkt_created.append(packet.created_cycle)
        net._pkt_malicious.append(1 if packet.is_malicious else 0)
        template = net._flit_templates.get(size)
        if template is None:
            template = np.arange(size, dtype=np.int64)
            template[-1] += TAIL_BIT
            net._flit_templates[size] = template
        values = (pid << PKT_SHIFT) + template
        start = (int(net._sq_head[node]) + count) % capacity
        end = start + size
        if end <= capacity:
            net._sq_vals[node, start:end] = values
        else:
            split = capacity - start
            net._sq_vals[node, start:] = values[:split]
            net._sq_vals[node, : end - capacity] = values[split:]
        net._sq_count[node] = count + size
        return True

    def enqueue_batch(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        size_flits: int,
        cycle: int,
        malicious: bool,
    ) -> int:
        """Queue one packet per (source, destination) pair in one sweep."""
        sources = np.asarray(sources, dtype=np.int64)
        lane_ids = np.full(sources.size, self.lane_index, dtype=np.int64)
        return self._net.enqueue_group(
            lane_ids, sources, destinations, size_flits, cycle, malicious
        )

    # -- injection rate limiting (defense hooks) ------------------------------
    def set_injection_limit(self, node_id: int, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("injection limit must be in [0, 1]")
        if node_id not in self.topology:
            raise ValueError(f"node {node_id} outside the {self.topology!r} mesh")
        net = self._net
        node = self._off + node_id
        net._limits[node] = float(fraction)
        net._allowance[node] = 0.0
        net._limited_idx = np.nonzero(net._limits < 1.0)[0]

    def injection_limit(self, node_id: int) -> float:
        return float(self._net._limits[self._off + node_id])

    @property
    def injection_limits(self) -> list[float]:
        return self._net._limits[self._off : self._off + self._nodes].tolist()

    def reset_injection_limits(self) -> None:
        net = self._net
        net._limits[self._off : self._off + self._nodes] = 1.0
        net._allowance[self._off : self._off + self._nodes] = 0.0
        net._limited_idx = np.nonzero(net._limits < 1.0)[0]

    @property
    def restricted_nodes(self) -> list[int]:
        block = self._net._limits[self._off : self._off + self._nodes]
        return [int(node) for node in np.nonzero(block < 1.0)[0]]

    def flush_source_queue(self, node_id: int) -> int:
        """Discard not-yet-injected flits queued at the episode's ``node_id``."""
        net = self._net
        node = self._off + node_id
        count = int(net._sq_count[node])
        if count == 0:
            return 0
        slots = (net._sq_head[node] + np.arange(count)) % net.source_queue_capacity
        values = net._sq_vals[node, slots]
        pkts = values >> PKT_SHIFT
        keep = net._pkt_injected.values[pkts] >= 0
        kept = int(keep.sum())
        net._lane_dropped[self.lane_index] += int(np.unique(pkts[~keep]).size)
        net._sq_head[node] = 0
        net._sq_count[node] = kept
        if kept:
            net._sq_vals[node, :kept] = values[keep]
        return count - kept

    # -- DL2Fence observables -------------------------------------------------
    def feature_frame(self, direction: Direction, kind) -> np.ndarray:
        return self.feature_frames(kind)[direction]

    def feature_frames(self, kind) -> dict[Direction, np.ndarray]:
        """All four directional frames of the episode, sliced off its block."""
        from repro.monitor.features import FeatureKind

        net = self._net
        rows, cols = self.topology.rows, self.topology.columns
        p0 = self._off * 5
        p1 = p0 + self._nodes * 5
        if kind is FeatureKind.VCO:
            samples = int(net._lane_occ_samples[self.lane_index])
            if samples == 0:
                values = net._occupied[p0:p1] / float(net.num_vcs)
            elif net._occ_exact:
                values = (net._occ_sum_int[p0:p1] / float(net.num_vcs)) / samples
            else:
                values = net._occ_sum[p0:p1] / samples
        else:
            values = (net._buf_writes[p0:p1] + net._buf_reads[p0:p1]).astype(
                np.float64
            )
        grid = values.reshape(self._nodes, 5)

        def plane(direction: Direction) -> np.ndarray:
            return grid[:, DIRECTION_INDEX[direction]].reshape(rows, cols)

        return {
            Direction.EAST: plane(Direction.EAST)[:, : cols - 1].copy(),
            Direction.NORTH: plane(Direction.NORTH)[: rows - 1, :].copy(),
            Direction.WEST: plane(Direction.WEST)[:, 1:].copy(),
            Direction.SOUTH: plane(Direction.SOUTH)[1:, :].copy(),
        }

    def local_boc(self) -> list[int]:
        """Per-node LOCAL-slot BOC this window (see MeshNetwork.local_boc)."""
        net = self._net
        p0 = self._off * 5
        p1 = p0 + self._nodes * 5
        grid = (net._buf_writes[p0:p1] + net._buf_reads[p0:p1]).reshape(
            self._nodes, 5
        )
        return [int(value) for value in grid[:, 0]]

    def reset_boc_counters(self) -> None:
        """Reset the episode's BOC and VCO accumulators (window boundary)."""
        net = self._net
        p0 = self._off * 5
        p1 = p0 + self._nodes * 5
        net._buf_writes[p0:p1] = 0
        net._buf_reads[p0:p1] = 0
        net._occ_sum_int[p0:p1] = 0
        net._occ_sum[p0:p1] = 0.0
        net._lane_occ_samples[self.lane_index] = 0

    # -- bookkeeping ----------------------------------------------------------
    @property
    def in_flight_flits(self) -> int:
        net = self._net
        q0 = self._off * 5 * net.num_vcs
        q1 = q0 + self._nodes * 5 * net.num_vcs
        return int(net._vc_count[q0:q1].sum())

    @property
    def queued_flits(self) -> int:
        return int(self._net._sq_count[self._off : self._off + self._nodes].sum())

    @property
    def drainable_queued_flits(self) -> int:
        net = self._net
        total = 0
        block = net._sq_count[self._off : self._off + self._nodes]
        for local in np.nonzero(block > 0)[0]:
            node = self._off + int(local)
            count = int(net._sq_count[node])
            if net._limits[node] > 0.0:
                total += count
                continue
            slots = (
                net._sq_head[node] + np.arange(count)
            ) % net.source_queue_capacity
            pkts = net._sq_vals[node, slots] >> PKT_SHIFT
            total += int((net._pkt_injected.values[pkts] >= 0).sum())
        return total

    # -- object-backend compatibility views -----------------------------------
    @property
    def source_queues(self) -> "_LaneSourceQueuesView":
        return _LaneSourceQueuesView(self)

    def router(self, node_id: int) -> SoARouterView:
        """Read-only router view of the episode's ``node_id``."""
        self.topology._check_node(node_id)
        return SoARouterView(self._net, self._off + int(node_id))

    @property
    def routers(self) -> list[SoARouterView]:
        return [self.router(node) for node in self.topology.nodes()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SoAMeshLane({self.lane_index} of {self._net.episodes}, "
            f"{self.topology.rows}x{self.topology.columns})"
        )


class _LaneSourceQueuesView:
    """Length-reporting view of one episode's source queues."""

    def __init__(self, lane: SoAMeshLane) -> None:
        self._lane = lane

    def __len__(self) -> int:
        return self._lane.topology.num_nodes

    def __getitem__(self, node_id: int) -> "_LaneSourceQueueView":
        return _LaneSourceQueueView(self._lane, node_id)


class _LaneSourceQueueView:
    """Length view of one node's source queue inside an episode."""

    def __init__(self, lane: SoAMeshLane, node_id: int) -> None:
        self._lane = lane
        self._node = node_id

    def __len__(self) -> int:
        return int(self._lane._net._sq_count[self._lane._off + self._node])

    def __bool__(self) -> bool:
        return len(self) > 0
