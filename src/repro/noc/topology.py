"""2-D mesh topology, node-id arithmetic and port directions.

Node IDs follow the row-major convention used throughout the paper's figures
(e.g. Figure 4 names "attacker node 104, victim node 0" on a 16x16 mesh):
``node_id = y * columns + x`` with ``x`` increasing eastwards and ``y``
increasing northwards from the bottom-left corner node 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

__all__ = ["Direction", "MeshTopology"]


class Direction(str, Enum):
    """Input/output port directions of a mesh router.

    ``LOCAL`` is the port that connects the router to its tile (processing
    element / network interface); the four cardinal directions connect to the
    neighbouring routers.  The DL2Fence feature frames are built from the
    four cardinal *input* ports only, matching Figure 2 of the paper.
    """

    EAST = "E"
    NORTH = "N"
    WEST = "W"
    SOUTH = "S"
    LOCAL = "L"

    @classmethod
    def cardinal(cls) -> tuple["Direction", ...]:
        """The four non-local directions in the paper's E, N, W, S order."""
        return (cls.EAST, cls.NORTH, cls.WEST, cls.SOUTH)

    @property
    def opposite(self) -> "Direction":
        """Direction seen from the other end of a link."""
        mapping = {
            Direction.EAST: Direction.WEST,
            Direction.WEST: Direction.EAST,
            Direction.NORTH: Direction.SOUTH,
            Direction.SOUTH: Direction.NORTH,
            Direction.LOCAL: Direction.LOCAL,
        }
        return mapping[self]


@dataclass(frozen=True)
class MeshTopology:
    """Geometry helper for an ``rows`` x ``columns`` 2-D mesh.

    Parameters
    ----------
    rows:
        Number of mesh rows (the paper's ``R``).
    columns:
        Number of mesh columns; defaults to ``rows`` for the square meshes
        used in the paper (4x4 ... 32x32).
    """

    rows: int
    columns: int = 0

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError("rows must be positive")
        if self.columns == 0:
            object.__setattr__(self, "columns", self.rows)
        if self.columns <= 0:
            raise ValueError("columns must be positive")

    # -- size -----------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of tiles / routers in the mesh."""
        return self.rows * self.columns

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node_id: int) -> bool:
        return 0 <= int(node_id) < self.num_nodes

    # -- coordinates ------------------------------------------------------
    def coordinates(self, node_id: int) -> tuple[int, int]:
        """Return ``(x, y)`` for ``node_id`` (row-major numbering)."""
        self._check_node(node_id)
        return node_id % self.columns, node_id // self.columns

    def node_id(self, x: int, y: int) -> int:
        """Return the node id at coordinate ``(x, y)``."""
        if not (0 <= x < self.columns and 0 <= y < self.rows):
            raise ValueError(f"coordinate ({x}, {y}) outside {self.rows}x{self.columns} mesh")
        return y * self.columns + x

    def _check_node(self, node_id: int) -> None:
        if node_id not in self:
            raise ValueError(
                f"node {node_id} outside mesh with {self.num_nodes} nodes"
            )

    # -- adjacency --------------------------------------------------------
    def neighbor(self, node_id: int, direction: Direction) -> int | None:
        """Neighbouring node id in ``direction``; None at the mesh edge."""
        x, y = self.coordinates(node_id)
        if direction is Direction.EAST:
            return self.node_id(x + 1, y) if x + 1 < self.columns else None
        if direction is Direction.WEST:
            return self.node_id(x - 1, y) if x - 1 >= 0 else None
        if direction is Direction.NORTH:
            return self.node_id(x, y + 1) if y + 1 < self.rows else None
        if direction is Direction.SOUTH:
            return self.node_id(x, y - 1) if y - 1 >= 0 else None
        if direction is Direction.LOCAL:
            return node_id
        raise ValueError(f"unknown direction {direction!r}")

    def neighbors(self, node_id: int) -> dict[Direction, int]:
        """All existing cardinal neighbours of a node."""
        out = {}
        for direction in Direction.cardinal():
            other = self.neighbor(node_id, direction)
            if other is not None:
                out[direction] = other
        return out

    def degree(self, node_id: int) -> int:
        """Number of cardinal neighbours (2 for corners, 3 for edges, 4 inside)."""
        return len(self.neighbors(node_id))

    def input_directions(self, node_id: int) -> tuple[Direction, ...]:
        """Cardinal directions from which traffic can arrive at ``node_id``.

        A router receives from its EAST input port when an eastern neighbour
        exists, etc.  Corner routers therefore have two cardinal input ports
        and edge routers three — exactly the "2-4 directions" wording of the
        paper's Section 3.
        """
        return tuple(
            direction
            for direction in Direction.cardinal()
            if self.neighbor(node_id, direction) is not None
        )

    # -- iteration ----------------------------------------------------------
    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids in increasing order."""
        return iter(range(self.num_nodes))

    def manhattan_distance(self, src: int, dst: int) -> int:
        """Hop distance between two nodes under minimal routing."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def is_edge_node(self, node_id: int) -> bool:
        """True when the node sits on the mesh boundary."""
        x, y = self.coordinates(node_id)
        return x in (0, self.columns - 1) or y in (0, self.rows - 1)

    def is_corner_node(self, node_id: int) -> bool:
        """True when the node sits in one of the four mesh corners."""
        x, y = self.coordinates(node_id)
        return x in (0, self.columns - 1) and y in (0, self.rows - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeshTopology({self.rows}x{self.columns})"
