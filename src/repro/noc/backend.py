"""Simulator backend selection (``REPRO_SIM_BACKEND``).

Two interchangeable mesh-network implementations exist:

* ``soa`` (default) — :class:`repro.noc.soa.SoAMeshNetwork`, the vectorized
  structure-of-arrays backend whose per-cycle kernels run on flat NumPy
  arrays;
* ``object`` — :class:`repro.noc.network.MeshNetwork`, the original
  router/VC/flit object model, kept as the readable reference the SoA
  backend is fingerprint-pinned against.

Both produce bit-identical feature frames, latency statistics and defense
reports for the same seeds (``tests/noc/test_soa_equivalence.py``), so the
choice is purely a performance knob.  Precedence: an explicit
``SimulationConfig(backend=...)`` beats the ``REPRO_SIM_BACKEND``
environment variable, which beats the default.
"""

from __future__ import annotations

import os

from repro.noc.network import MeshNetwork
from repro.noc.soa import SoAMeshNetwork
from repro.noc.topology import MeshTopology

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "resolve_backend", "build_network"]

BACKENDS = ("soa", "object")
DEFAULT_BACKEND = "soa"


def resolve_backend(explicit: str = "") -> str:
    """Backend name from an explicit override, the environment, or default."""
    name = (explicit or os.environ.get("REPRO_SIM_BACKEND", "")).strip().lower()
    if not name:
        name = DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulator backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def build_network(
    topology: MeshTopology,
    backend: str = "",
    num_vcs: int = 4,
    vc_depth: int = 4,
    injection_bandwidth: int = 1,
    source_queue_capacity: int = 512,
) -> MeshNetwork | SoAMeshNetwork:
    """Instantiate the selected mesh-network backend."""
    name = resolve_backend(backend)
    network_cls = SoAMeshNetwork if name == "soa" else MeshNetwork
    return network_cls(
        topology,
        num_vcs=num_vcs,
        vc_depth=vc_depth,
        injection_bandwidth=injection_bandwidth,
        source_queue_capacity=source_queue_capacity,
    )
