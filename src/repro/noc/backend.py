"""Simulator backend selection (``REPRO_SIM_BACKEND``).

Two interchangeable mesh-network implementations exist:

* ``soa`` (default) — :class:`repro.noc.soa.SoAMeshNetwork`, the vectorized
  structure-of-arrays backend whose per-cycle kernels run on flat NumPy
  arrays;
* ``object`` — :class:`repro.noc.network.MeshNetwork`, the original
  router/VC/flit object model, kept as the readable reference the SoA
  backend is fingerprint-pinned against.

Both produce bit-identical feature frames, latency statistics and defense
reports for the same seeds (``tests/noc/test_soa_equivalence.py``), so the
choice is purely a performance knob.  Precedence: an explicit
``SimulationConfig(backend=...)`` beats the ``REPRO_SIM_BACKEND``
environment variable, which beats the default.
"""

from __future__ import annotations

import os

from repro.noc.network import MeshNetwork
from repro.noc.soa import SoAMeshNetwork
from repro.noc.topology import MeshTopology

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_EPISODE_BATCH",
    "resolve_backend",
    "episode_batch_size",
    "build_network",
]

BACKENDS = ("soa", "object")
DEFAULT_BACKEND = "soa"

#: Default episode-batch width of the batched SoA mode (``REPRO_EPISODE_BATCH``).
DEFAULT_EPISODE_BATCH = 16


def episode_batch_size(default: int = DEFAULT_EPISODE_BATCH) -> int:
    """Episode-batch width from ``REPRO_EPISODE_BATCH`` (values <= 1 disable).

    Governs how many independent episodes the batched SoA backend advances
    per kernel dispatch when a consumer (e.g.
    :meth:`repro.runtime.engine.ExperimentEngine.build_runs`) fans out
    episode sets.  Purely a performance knob: per-episode results are
    fingerprint-identical at any width (``tests/noc/test_batched_equivalence.py``).
    """
    raw = os.environ.get("REPRO_EPISODE_BATCH", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"REPRO_EPISODE_BATCH must be an integer, got {raw!r}"
        ) from error
    return max(1, value)


def resolve_backend(explicit: str = "") -> str:
    """Backend name from an explicit override, the environment, or default."""
    name = (explicit or os.environ.get("REPRO_SIM_BACKEND", "")).strip().lower()
    if not name:
        name = DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulator backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def build_network(
    topology: MeshTopology,
    backend: str = "",
    num_vcs: int = 4,
    vc_depth: int = 4,
    injection_bandwidth: int = 1,
    source_queue_capacity: int = 512,
    episodes: int = 1,
) -> MeshNetwork | SoAMeshNetwork:
    """Instantiate the selected mesh-network backend.

    ``episodes > 1`` selects the episode-batched SoA mode: one
    :class:`repro.noc.soa_batch.BatchedSoAMeshNetwork` advancing that many
    independent mesh copies per kernel dispatch (only the ``soa`` backend
    supports it — the object model has no batch axis).
    """
    name = resolve_backend(backend)
    if episodes > 1:
        if name != "soa":
            raise ValueError(
                f"episode batching requires the 'soa' backend, not {name!r}"
            )
        from repro.noc.soa_batch import BatchedSoAMeshNetwork

        return BatchedSoAMeshNetwork(
            topology,
            episodes,
            num_vcs=num_vcs,
            vc_depth=vc_depth,
            injection_bandwidth=injection_bandwidth,
            source_queue_capacity=source_queue_capacity,
        )
    network_cls = SoAMeshNetwork if name == "soa" else MeshNetwork
    return network_cls(
        topology,
        num_vcs=num_vcs,
        vc_depth=vc_depth,
        injection_bandwidth=injection_bandwidth,
        source_queue_capacity=source_queue_capacity,
    )
