"""Garnet-like 2-D mesh Network-on-Chip simulator substrate.

The paper evaluates DL2Fence on a 16x16 Mesh-XY NoC modelled in Gem5/Garnet.
This package provides an offline, cycle-driven replacement that exposes the
observables the DL2Fence monitors consume:

* per-input-port **Virtual Channel Occupancy (VCO)** — the instantaneous
  fraction of occupied virtual channels,
* per-input-port **Buffer Operation Counts (BOC)** — accumulated buffer
  reads/writes inside a sampling window,
* packet / flit latency and queueing latency statistics (Figure 1).

The router model is a simplified wormhole-switched input-queued router with
per-port virtual channels and dimension-ordered (XY) routing, which is the
configuration used throughout the paper.

Two interchangeable backends implement the mesh: the ``object`` model
(:class:`MeshNetwork`, routers/VCs/flits as Python objects — the readable
reference) and the default ``soa`` model (:class:`SoAMeshNetwork`, flat
NumPy state arrays advanced by vectorized kernels).  They are pinned
fingerprint-identical; select with ``REPRO_SIM_BACKEND`` or
``SimulationConfig(backend=...)``.
"""

from repro.noc.topology import Direction, MeshTopology
from repro.noc.packet import Flit, FlitType, Packet
from repro.noc.routing import (
    reverse_xy_sources,
    xy_next_direction,
    xy_route_path,
    xy_route_victims,
)
from repro.noc.router import InputPort, Router, VirtualChannel
from repro.noc.network import MeshNetwork
from repro.noc.soa import SoAMeshNetwork
from repro.noc.soa_batch import BatchedSoAMeshNetwork, SoAMeshLane
from repro.noc.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    build_network,
    episode_batch_size,
    resolve_backend,
)
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.batch_sim import BatchedNoCSimulator, LaneSimulator
from repro.noc.stats import LatencyStats, NetworkStats

__all__ = [
    "BACKENDS",
    "BatchedNoCSimulator",
    "BatchedSoAMeshNetwork",
    "DEFAULT_BACKEND",
    "Direction",
    "Flit",
    "FlitType",
    "InputPort",
    "LaneSimulator",
    "LatencyStats",
    "MeshNetwork",
    "MeshTopology",
    "NetworkStats",
    "NoCSimulator",
    "Packet",
    "Router",
    "SimulationConfig",
    "SoAMeshLane",
    "SoAMeshNetwork",
    "VirtualChannel",
    "build_network",
    "episode_batch_size",
    "resolve_backend",
    "reverse_xy_sources",
    "xy_next_direction",
    "xy_route_path",
    "xy_route_victims",
]
