"""Fault-aware route provider: west-first detours around dead links/routers.

The mesh ships with dimension-ordered XY routing baked into three places —
:mod:`repro.noc.routing`, the SoA route tables and the object router path.
This module abstracts them behind one provider so a degraded mesh (dead
links, dead routers) reroutes *identically* everywhere: both simulator
backends consume the same table, and the localization stages (TLM / VCE)
enumerate the same live routes the data plane actually uses.

Routing function
----------------
Minimal-with-detours **west-first** routing (Glass & Ni's turn model): the
turns ``N->W`` and ``S->W`` are prohibited (as are all 180-degree turns), so
any westward movement must happen before the first north/south hop.  The
prohibited-turn set breaks every cycle in the channel-dependency graph, so
routing stays deadlock-free no matter which links die.  Fault-free,
west-first with an ``E < N < W < S`` tie-break reproduces XY *exactly*
(X-phase first, then Y) — pinned by ``tests/noc/test_route_provider.py`` —
so installing the provider on a healthy mesh changes nothing.

Routes are state-dependent: the legal next hops of a packet depend on the
direction it is currently traveling.  The table is therefore indexed by
``(node, in_state, destination)`` where ``in_state`` 0 is START (freshly
injected / local port — shares the LOCAL slot index) and 1..4 are the E, N,
W, S travel directions of the last hop taken.

A consequence the simulators must handle: a packet that already moved
north/south can never regain westward movement, so a mid-episode link kill
can strand *in-flight* packets (state unroutable) even though a fresh
injection at the same node could still reach the destination.  Backends
excise such doomed packets atomically at fault-activation time (see
``apply_data_faults``) so the hot switch path never sees an unroutable head.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.noc.routing import UnroutableError, xy_route_path
from repro.noc.topology import Direction, MeshTopology

__all__ = ["RouteProvider", "UnroutableError", "START"]

#: Slot order shared with the SoA tables: LOCAL, E, N, W, S.
_DIRS = (
    Direction.LOCAL,
    Direction.EAST,
    Direction.NORTH,
    Direction.WEST,
    Direction.SOUTH,
)
_DIR_INDEX = {direction: index for index, direction in enumerate(_DIRS)}
_OPPOSITE = (0, 3, 4, 1, 2)

#: The START in-state (no travel history) shares index 0 with LOCAL.
START = 0

#: West-first turn model: out-directions allowed per in-state, in slot-index
#: order (the ascending order doubles as the XY-reproducing tie-break).
_ALLOWED = {
    START: (1, 2, 3, 4),
    1: (1, 2, 4),  # traveling EAST: straight, or turn N/S
    2: (1, 2),  # traveling NORTH: straight, or turn E (never W)
    3: (2, 3, 4),  # traveling WEST: straight, or turn N/S
    4: (1, 4),  # traveling SOUTH: straight, or turn E (never W)
}

_BIG = 1 << 28


def _normalized_dead_links(
    topology: MeshTopology,
    dead_links,
    dead_routers,
) -> frozenset[tuple[int, Direction]]:
    """Directed (node, out-direction) pairs for every dead physical link.

    A dead link is bidirectional; a dead router kills all its incident
    links (its crossbar is gone, so nothing can transit it either way).
    """
    links: set[tuple[int, Direction]] = set()

    def add(node: int, direction: Direction) -> None:
        neighbor = topology.neighbor(node, direction)
        if neighbor is None:
            raise ValueError(
                f"no {direction.name} link at node {node} on {topology!r}"
            )
        links.add((node, direction))
        links.add((neighbor, direction.opposite))

    for node, direction in dead_links:
        add(int(node), direction)
    for router in dead_routers:
        for direction in topology.neighbors(int(router)):
            add(int(router), direction)
    return frozenset(links)


class RouteProvider:
    """State-aware west-first routing tables for a (possibly degraded) mesh."""

    def __init__(
        self,
        topology: MeshTopology,
        dead_links=(),
        dead_routers=(),
    ) -> None:
        self.topology = topology
        self.dead_routers = frozenset(int(node) for node in dead_routers)
        for router in self.dead_routers:
            topology._check_node(router)
        self.dead_links = _normalized_dead_links(
            topology, dead_links, self.dead_routers
        )
        self._build()

    # -- table construction -------------------------------------------------
    def _build(self) -> None:
        topology = self.topology
        n = topology.num_nodes
        neighbor = np.zeros((n, 5), dtype=np.int64)
        alive = np.zeros((n, 5), dtype=bool)
        dead_router = np.zeros(n, dtype=bool)
        for router in self.dead_routers:
            dead_router[router] = True
        for node in range(n):
            for out in range(1, 5):
                other = topology.neighbor(node, _DIRS[out])
                if other is None:
                    continue
                neighbor[node, out] = other
                alive[node, out] = (
                    (node, _DIRS[out]) not in self.dead_links
                    and not dead_router[node]
                    and not dead_router[other]
                )

        # dist[u, t, d]: hops from state (u, in-state t) to destination d.
        dist = np.full((n, 5, n), _BIG, dtype=np.int32)
        idx = np.arange(n)
        dist[idx, :, idx] = 0
        for router in self.dead_routers:
            dist[router, :, router] = _BIG
        # Fixpoint relaxation over the turn-model channel graph; each sweep
        # extends every shortest path by at least one hop, so the loop runs
        # O(longest detour) times with (n, n)-array work per sweep.
        changed = True
        while changed:
            changed = False
            for state in range(5):
                best = dist[:, state, :]
                for out in _ALLOWED[state]:
                    cand = dist[neighbor[:, out], out, :] + 1
                    np.minimum(
                        best,
                        np.where(alive[:, out, None], cand, _BIG),
                        out=cand,
                    )
                    if (cand < best).any():
                        changed = True
                        best[...] = cand

        table = np.full((n, 5, n), -1, dtype=np.int8)
        arrived = dist[idx, :, idx] == 0
        for state in range(5):
            table[idx[arrived[:, state]], state, idx[arrived[:, state]]] = 0
        for state in range(5):
            here = dist[:, state, :]
            reachable = (here > 0) & (here < _BIG)
            for out in _ALLOWED[state]:
                step = (
                    reachable
                    & (table[:, state, :] == -1)
                    & alive[:, out, None]
                    & (dist[neighbor[:, out], out, :] + 1 == here)
                )
                table[:, state, :][step] = out
        self._table = table
        self._neighbor = neighbor
        self._alive = alive

    # -- query surface -------------------------------------------------------
    @property
    def route_table3(self) -> np.ndarray:
        """``(num_nodes * 5, num_nodes)`` int8 table: ``[(node*5 + in_state),
        dest] -> out-slot`` (0 = eject local, -1 = unroutable)."""
        n = self.topology.num_nodes
        return self._table.reshape(n * 5, n)

    @cached_property
    def routable_from_start(self) -> np.ndarray:
        """Boolean ``(source, dest)`` matrix for freshly injected packets."""
        return self._table[:, START, :] >= 0

    def link_is_live(self, node: int, direction: Direction) -> bool:
        return bool(self._alive[node, _DIR_INDEX[direction]])

    @property
    def link_alive_matrix(self) -> np.ndarray:
        """Boolean ``(node, out-slot)`` matrix of live outgoing links."""
        return self._alive

    def next_direction(
        self,
        current: int,
        destination: int,
        travel: Direction | None = None,
    ) -> Direction:
        """Output direction at ``current`` for a packet traveling ``travel``.

        ``travel=None`` (or ``LOCAL``) means a freshly injected packet.
        Raises :class:`UnroutableError` when no legal route remains.
        """
        state = START if travel is None else _DIR_INDEX[travel]
        code = int(self._table[current, state, destination])
        if code < 0:
            raise UnroutableError(
                current, destination, f"in-state {_DIRS[state].name}"
            )
        return _DIRS[code]

    def route_path(self, source: int, destination: int) -> list[int]:
        """Ordered node ids from ``source`` to ``destination`` inclusive."""
        path = [source]
        current, state = source, START
        for _ in range(5 * self.topology.num_nodes + 1):
            code = int(self._table[current, state, destination])
            if code < 0:
                raise UnroutableError(
                    source, destination, f"stranded at {current}"
                )
            if code == 0:
                return path
            current = int(self._neighbor[current, code])
            state = code
            path.append(current)
        raise UnroutableError(source, destination, "no progress")  # pragma: no cover

    def route_victims(
        self, source: int, destination: int, include_source: bool = False
    ) -> list[int]:
        """Live-route equivalent of :func:`repro.noc.routing.xy_route_victims`."""
        path = self.route_path(source, destination)
        return path if include_source else path[1:]

    # -- degraded-mesh introspection ----------------------------------------
    @cached_property
    def detour_nodes(self) -> frozenset[int]:
        """Nodes newly carrying traffic that XY would have routed elsewhere.

        For every (source, dest) pair whose fault-free XY path crossed a dead
        link, the live detour is walked and every node on it that the XY path
        did *not* visit is collected.  These are the innocent bystanders of a
        reroute — the degraded-mode guard discounts evidence against them.
        """
        if not self.dead_links:
            return frozenset()
        topology = self.topology
        columns, rows = topology.columns, topology.rows
        pairs: set[tuple[int, int]] = set()
        for node, direction in self.dead_links:
            xu, yu = topology.coordinates(node)
            if direction is Direction.EAST:
                sources = [topology.node_id(x, yu) for x in range(xu + 1)]
                dests = [
                    topology.node_id(x, y)
                    for x in range(xu + 1, columns)
                    for y in range(rows)
                ]
            elif direction is Direction.WEST:
                sources = [topology.node_id(x, yu) for x in range(xu, columns)]
                dests = [
                    topology.node_id(x, y)
                    for x in range(xu)
                    for y in range(rows)
                ]
            elif direction is Direction.NORTH:
                sources = [
                    topology.node_id(x, y)
                    for x in range(columns)
                    for y in range(yu + 1)
                ]
                dests = [topology.node_id(xu, y) for y in range(yu + 1, rows)]
            else:  # SOUTH
                sources = [
                    topology.node_id(x, y)
                    for x in range(columns)
                    for y in range(yu, rows)
                ]
                dests = [topology.node_id(xu, y) for y in range(yu)]
            pairs.update(
                (source, dest)
                for source in sources
                for dest in dests
                if source != dest
            )
        detours: set[int] = set()
        for source, dest in pairs:
            try:
                live = self.route_path(source, dest)
            except UnroutableError:
                continue  # such packets are dropped/excised, not rerouted
            detours.update(set(live) - set(xy_route_path(topology, source, dest)))
        return frozenset(detours)

    def describe(self) -> str:
        links = sorted(
            (node, direction.name) for node, direction in self.dead_links
        )
        return (
            f"RouteProvider(dead_links={links}, "
            f"dead_routers={sorted(self.dead_routers)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
