"""Traditional threshold detector (non-ML comparator).

The pre-ML literature detects flooding by comparing monitored quantities
(packet arrival curves, buffer utilisation) against calibrated thresholds.
This baseline calibrates a threshold on the maximum (or mean) frame value of
benign samples and flags any frame whose statistic exceeds it, providing the
"no machine learning" reference point of the comparison bench.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector, flatten_frames

__all__ = ["ThresholdDetector"]


class ThresholdDetector(BaselineDetector):
    """Statistic-over-threshold detector calibrated on benign samples."""

    name = "threshold"

    def __init__(self, statistic: str = "max", percentile: float = 99.0) -> None:
        if statistic not in ("max", "mean"):
            raise ValueError("statistic must be 'max' or 'mean'")
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        self.statistic = statistic
        self.percentile = float(percentile)
        self.threshold: float | None = None

    def _statistic(self, inputs: np.ndarray) -> np.ndarray:
        features = flatten_frames(inputs)
        if self.statistic == "max":
            return features.max(axis=1)
        return features.mean(axis=1)

    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> "ThresholdDetector":
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        statistics = self._statistic(inputs)
        benign = statistics[labels < 0.5]
        if benign.size == 0:
            # No benign calibration data: fall back to the attack minimum.
            self.threshold = float(statistics.min())
        else:
            self.threshold = float(np.percentile(benign, self.percentile))
        return self

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        if self.threshold is None:
            raise RuntimeError("fit the detector before predicting")
        statistics = self._statistic(inputs)
        # Scores ramp smoothly around the threshold so the report thresholding
        # at 0.5 reproduces the hard decision.
        scale = max(abs(self.threshold), 1e-9)
        return 1.0 / (1.0 + np.exp(-(statistics - self.threshold) / (0.1 * scale)))

    @property
    def num_parameters(self) -> int:
        return 1
