"""Baseline DoS detectors used for the Table 4 comparison.

The paper compares DL2Fence against three ML-based related works — the
perceptron-based "Sniffer" [Sinha et al.], an SVM-based detector
[Kulkarni et al.] and an XGBoost-based detector [Sudusinghe et al.] — plus the
traditional threshold-style schemes of the non-ML literature.  None of those
code bases are available, so this package implements equivalent classifiers
from scratch on top of NumPy; they all consume the same flattened feature
frames as DL2Fence's detector so the comparison isolates the model choice.
"""

from repro.baselines.base import BaselineDetector, flatten_frames
from repro.baselines.perceptron import PerceptronDetector
from repro.baselines.svm import LinearSVMDetector
from repro.baselines.gradient_boosting import DecisionStump, GradientBoostingDetector
from repro.baselines.threshold import ThresholdDetector

__all__ = [
    "BaselineDetector",
    "DecisionStump",
    "GradientBoostingDetector",
    "LinearSVMDetector",
    "PerceptronDetector",
    "ThresholdDetector",
    "flatten_frames",
]
