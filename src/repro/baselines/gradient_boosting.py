"""Gradient-boosted decision stumps (the XGBoost comparator).

Sudusinghe et al. detect DoS attacks with an XGBoost classifier.  This
baseline implements gradient boosting of depth-1 regression trees (decision
stumps) on the logistic loss — the same algorithmic family, small enough to
run instantly on the frame datasets, and with an explicit parameter count for
the hardware comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineDetector

__all__ = ["DecisionStump", "GradientBoostingDetector"]


@dataclass
class DecisionStump:
    """A depth-1 regression tree: one feature, one threshold, two leaf values."""

    feature: int
    threshold: float
    left_value: float
    right_value: float

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Leaf value for each row of ``features``."""
        column = features[:, self.feature]
        return np.where(column <= self.threshold, self.left_value, self.right_value)


def _fit_stump(
    features: np.ndarray,
    residuals: np.ndarray,
    max_candidate_features: int,
    rng: np.random.Generator,
) -> DecisionStump:
    """Least-squares fit of a stump to the residuals.

    To keep fitting fast on wide frame vectors only a random subset of
    features is scanned per boosting round (feature subsampling, as XGBoost
    does by default).
    """
    n_samples, n_features = features.shape
    candidates = (
        np.arange(n_features)
        if n_features <= max_candidate_features
        else rng.choice(n_features, size=max_candidate_features, replace=False)
    )
    best = None
    best_error = np.inf
    for feature in candidates:
        column = features[:, feature]
        # Candidate thresholds: a handful of quantiles of the feature column.
        thresholds = np.unique(np.quantile(column, [0.1, 0.25, 0.5, 0.75, 0.9]))
        for threshold in thresholds:
            left = column <= threshold
            right = ~left
            if not left.any() or not right.any():
                continue
            left_value = float(residuals[left].mean())
            right_value = float(residuals[right].mean())
            prediction = np.where(left, left_value, right_value)
            error = float(((residuals - prediction) ** 2).sum())
            if error < best_error:
                best_error = error
                best = DecisionStump(int(feature), float(threshold), left_value, right_value)
    if best is None:
        # Degenerate data (constant features): predict the mean residual.
        best = DecisionStump(0, float("inf"), float(residuals.mean()), 0.0)
    return best


class GradientBoostingDetector(BaselineDetector):
    """Logistic gradient boosting over decision stumps."""

    name = "gradient_boosting"

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.3,
        max_candidate_features: int = 64,
        seed: int = 0,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_candidate_features <= 0:
            raise ValueError("max_candidate_features must be positive")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_candidate_features = int(max_candidate_features)
        self.seed = int(seed)
        self.stumps: list[DecisionStump] = []
        self.base_score = 0.0

    @staticmethod
    def _sigmoid(values: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(values, -50, 50)))

    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> "GradientBoostingDetector":
        features, labels = self._prepare(inputs, labels)
        rng = np.random.default_rng(self.seed)
        positive_rate = float(np.clip(labels.mean(), 1e-3, 1.0 - 1e-3))
        self.base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        scores = np.full(labels.shape[0], self.base_score)
        self.stumps = []
        for _ in range(self.n_estimators):
            probabilities = self._sigmoid(scores)
            residuals = labels - probabilities
            stump = _fit_stump(features, residuals, self.max_candidate_features, rng)
            self.stumps.append(stump)
            scores = scores + self.learning_rate * stump.predict(features)
        return self

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        if not self.stumps:
            raise RuntimeError("fit the detector before predicting")
        features = self._prepare(inputs)
        scores = np.full(features.shape[0], self.base_score)
        for stump in self.stumps:
            scores = scores + self.learning_rate * stump.predict(features)
        return self._sigmoid(scores)

    @property
    def num_parameters(self) -> int:
        # feature index, threshold and two leaf values per stump, plus base.
        return 4 * len(self.stumps) + 1
