"""Linear SVM baseline (the Kulkarni et al. comparator).

Trained with sub-gradient descent on the L2-regularised hinge loss.  The
decision value is squashed through a sigmoid so :meth:`predict_proba` returns
scores comparable to the other baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector

__all__ = ["LinearSVMDetector"]


class LinearSVMDetector(BaselineDetector):
    """Soft-margin linear SVM over flattened feature frames."""

    name = "svm"

    def __init__(
        self,
        learning_rate: float = 0.05,
        epochs: int = 300,
        regularization: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0 or epochs <= 0:
            raise ValueError("learning_rate and epochs must be positive")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.regularization = float(regularization)
        self.seed = int(seed)
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> "LinearSVMDetector":
        features, labels = self._prepare(inputs, labels)
        # Hinge loss uses {-1, +1} targets.
        targets = np.where(labels > 0.5, 1.0, -1.0)
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        self.weights = rng.normal(0.0, 0.01, size=n_features)
        self.bias = 0.0
        for epoch in range(self.epochs):
            lr = self.learning_rate / (1.0 + 0.01 * epoch)
            margins = targets * (features @ self.weights + self.bias)
            violating = margins < 1.0
            grad_w = self.regularization * self.weights
            grad_b = 0.0
            if violating.any():
                grad_w -= (targets[violating, None] * features[violating]).mean(axis=0)
                grad_b -= float(targets[violating].mean())
            self.weights -= lr * grad_w
            self.bias -= lr * grad_b
        return self

    def decision_function(self, inputs: np.ndarray) -> np.ndarray:
        """Raw signed margin for each sample."""
        if self.weights is None:
            raise RuntimeError("fit the detector before predicting")
        features = self._prepare(inputs)
        return features @ self.weights + self.bias

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        decision = self.decision_function(inputs)
        return 1.0 / (1.0 + np.exp(-np.clip(decision, -50, 50)))

    @property
    def num_parameters(self) -> int:
        return 0 if self.weights is None else int(self.weights.size) + 1
