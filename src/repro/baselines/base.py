"""Shared interface of the baseline detectors."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.nn.metrics import ClassificationReport

__all__ = ["flatten_frames", "BaselineDetector"]


def flatten_frames(inputs: np.ndarray) -> np.ndarray:
    """Flatten (N, H, W, C) frame stacks into (N, H*W*C) feature vectors.

    All baselines are frame-global classifiers without spatial structure, so
    they consume the same detector inputs as DL2Fence but flattened.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim == 2:
        return inputs
    return inputs.reshape(inputs.shape[0], -1)


class BaselineDetector(ABC):
    """A binary DoS detector trained on flattened feature frames."""

    name = "baseline"

    @abstractmethod
    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> "BaselineDetector":
        """Train on (N, ...) inputs with (N,) or (N, 1) binary labels."""

    @abstractmethod
    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Attack scores in [0, 1] for each input sample."""

    def predict(self, inputs: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary attack decision per sample."""
        return (self.predict_proba(inputs) >= threshold).astype(np.int64)

    def evaluate(self, inputs: np.ndarray, labels: np.ndarray) -> ClassificationReport:
        """Detection metrics on a labelled dataset."""
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        return ClassificationReport.from_predictions(labels, self.predict_proba(inputs))

    # -- hardware accounting ------------------------------------------------
    @property
    @abstractmethod
    def num_parameters(self) -> int:
        """Number of trained scalar parameters (for the overhead comparison)."""

    @staticmethod
    def _prepare(inputs: np.ndarray, labels: np.ndarray | None = None):
        features = flatten_frames(inputs)
        if labels is None:
            return features
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        if labels.shape[0] != features.shape[0]:
            raise ValueError("inputs and labels must align")
        return features, labels
