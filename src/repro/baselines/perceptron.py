"""Perceptron baseline (the "Sniffer" comparator).

Sinha et al. integrate a perceptron model into every router of an 8x8 NoC.
This baseline trains a single logistic perceptron (one weight per flattened
frame pixel) with gradient descent; it is the smallest possible ML detector
and the reference point for the paper's 42.4% hardware-saving claim.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector

__all__ = ["PerceptronDetector"]


class PerceptronDetector(BaselineDetector):
    """Single-layer logistic perceptron over flattened feature frames."""

    name = "perceptron"

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 200,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0 or epochs <= 0:
            raise ValueError("learning_rate and epochs must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self.seed = int(seed)
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    @staticmethod
    def _sigmoid(values: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        positive = values >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
        exp_v = np.exp(values[~positive])
        out[~positive] = exp_v / (1.0 + exp_v)
        return out

    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> "PerceptronDetector":
        features, labels = self._prepare(inputs, labels)
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        self.weights = rng.normal(0.0, 0.01, size=n_features)
        self.bias = 0.0
        for _ in range(self.epochs):
            scores = self._sigmoid(features @ self.weights + self.bias)
            error = scores - labels
            grad_w = features.T @ error / n_samples + self.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit the detector before predicting")
        features = self._prepare(inputs)
        return self._sigmoid(features @ self.weights + self.bias)

    @property
    def num_parameters(self) -> int:
        return 0 if self.weights is None else int(self.weights.size) + 1
