"""Floating-point precision control for the NumPy neural-network substrate.

The DL2Fence CNNs are tiny (a few thousand parameters) but their im2col
matrix multiplications dominate the wall-clock of both training and the
guard's online batched forward pass.  Running them in ``float32`` halves the
memory traffic of every GEMM and measurably speeds up the whole experiment
suite, while the models' *decisions* (thresholded detector probabilities,
binarized segmentation masks) are unchanged on the test fixtures — the
documented tolerance is ~1e-5 on raw probabilities for weight-equivalent
models.

The default dtype is ``float32`` and can be overridden with the
``REPRO_NN_DTYPE`` environment variable (``float32`` / ``float64``) or at
runtime with :func:`set_default_dtype` / the :func:`use_dtype` context
manager.  A :class:`~repro.nn.model.Sequential` model captures the default at
build time and keeps computing in that dtype afterwards, so changing the
global default never silently re-types an existing model.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["default_dtype", "set_default_dtype", "use_dtype", "resolve_dtype"]

_SUPPORTED = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}


def resolve_dtype(spec: str | np.dtype | type | None) -> np.dtype:
    """Normalise a dtype spec (name, dtype or scalar type) to a supported dtype."""
    if spec is None:
        return default_dtype()
    name = np.dtype(spec).name
    if name not in _SUPPORTED:
        raise ValueError(
            f"unsupported NN dtype {name!r}; supported: {sorted(_SUPPORTED)}"
        )
    return _SUPPORTED[name]


def _from_environment() -> np.dtype:
    raw = os.environ.get("REPRO_NN_DTYPE", "").strip().lower()
    if raw in _SUPPORTED:
        return _SUPPORTED[raw]
    return _SUPPORTED["float32"]


_default: np.dtype = _from_environment()


def default_dtype() -> np.dtype:
    """The dtype new models are built with (env-seeded, runtime-overridable)."""
    return _default


def set_default_dtype(spec: str | np.dtype | type) -> np.dtype:
    """Set the process-wide default NN dtype; returns the resolved dtype."""
    global _default
    _default = resolve_dtype(spec)
    return _default


@contextmanager
def use_dtype(spec: str | np.dtype | type) -> Iterator[np.dtype]:
    """Temporarily switch the default NN dtype (used by model loading/tests)."""
    previous = default_dtype()
    resolved = set_default_dtype(spec)
    try:
        yield resolved
    finally:
        set_default_dtype(previous)
