"""Save and load :class:`~repro.nn.model.Sequential` models.

Models are stored as a single ``.npz`` archive containing a JSON architecture
description plus every parameter array.  This keeps trained DL2Fence
detectors/localizers reusable between the dataset-generation step and the
benchmark harness without requiring pickle.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn import activations as _activations
from repro.nn import layers as _layers
from repro.nn.dtype import use_dtype
from repro.nn.model import Sequential

__all__ = ["save_model", "load_model"]

_LAYER_CLASSES = {
    name: getattr(module, name)
    for module in (_layers, _activations)
    for name in dir(module)
    if isinstance(getattr(module, name), type)
    and issubclass(getattr(module, name), _layers.Layer)
    and getattr(module, name) is not _layers.Layer
}


def _layer_from_config(config: dict) -> _layers.Layer:
    config = dict(config)
    layer_type = config.pop("type")
    if layer_type not in _LAYER_CLASSES:
        raise KeyError(f"unknown layer type {layer_type!r} in saved model")
    cls = _LAYER_CLASSES[layer_type]
    kwargs = {}
    for key, value in config.items():
        if key in ("kernel_size", "pool_size"):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def save_model(model: Sequential, path: str | Path) -> Path:
    """Serialise architecture + weights to ``path`` (``.npz``)."""
    if model.input_shape is None:
        raise ValueError("model must be built before saving")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    architecture = {
        "input_shape": list(model.input_shape),
        "seed": model.seed,
        "dtype": np.dtype(model.dtype).name,
        "layers": [layer.get_config() for layer in model.layers],
    }
    arrays: dict[str, np.ndarray] = {
        "architecture": np.frombuffer(
            json.dumps(architecture).encode("utf-8"), dtype=np.uint8
        )
    }
    for index, layer in enumerate(model.layers):
        for name, value in layer.params.items():
            arrays[f"layer{index}__{name}"] = value
    np.savez(path, **arrays)
    # np.savez appends .npz only when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path: str | Path) -> Sequential:
    """Load a model previously written by :func:`save_model`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        architecture = json.loads(bytes(archive["architecture"]).decode("utf-8"))
        model = Sequential(
            [_layer_from_config(cfg) for cfg in architecture["layers"]],
            seed=architecture.get("seed", 0),
        )
        # Models saved before the dtype-parameterized substrate were float64.
        with use_dtype(architecture.get("dtype", "float64")):
            model.build(architecture["input_shape"])
        for index, layer in enumerate(model.layers):
            for name in list(layer.params):
                key = f"layer{index}__{name}"
                if key not in archive:
                    raise KeyError(f"missing weight {key!r} in {path}")
                layer.params[name] = archive[key].astype(model.dtype)
    return model
