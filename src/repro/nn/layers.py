"""Trainable and structural layers for the NumPy neural-network substrate.

Layers operate on NHWC batches (``(batch, height, width, channels)``) for the
convolutional stages and on ``(batch, features)`` matrices for the dense
stages.  Convolution is implemented with an im2col transformation so that
forward and backward passes reduce to matrix multiplications, which keeps the
training of the small DL2Fence models (15x16 input frames, 8 kernels) fast
enough to run inside the test suite.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.dtype import default_dtype
from repro.nn.initializers import GlorotUniform, HeNormal, Initializer, Zeros, get_initializer

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "UpSample2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
]


#: Scratch attributes produced by forward/backward passes (cached input
#: batches, im2col buffers, pooling argmax maps, ...).  They are dropped when
#: a layer is pickled: worker processes and serialized artifacts only need
#: parameters and configuration, not megabytes of stale activations.
_TRANSIENT_STATE = frozenset(
    {
        "_argmax",
        "_axes",
        "_cache",
        "_centered",
        "_col_buffer",
        "_inputs",
        "_input_shape",
        "_mask",
        "_n",
        "_normed",
        "_out_dims",
        "_output",
        "_std_inv",
    }
)


class Layer:
    """Base class for every layer.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Trainable
    layers expose ``params`` and ``grads`` dictionaries keyed by parameter
    name; the optimizer updates ``params`` in place using ``grads``.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.built = False

    def __getstate__(self) -> dict:
        """Pickle without forward-pass scratch state (see _TRANSIENT_STATE)."""
        return {
            key: value
            for key, value in self.__dict__.items()
            if key not in _TRANSIENT_STATE
        }

    # -- lifecycle -----------------------------------------------------
    def build(self, input_shape: Sequence[int], rng: np.random.Generator) -> None:
        """Allocate parameters given the per-sample input shape."""
        self.built = True

    def output_shape(self, input_shape: Sequence[int]) -> tuple[int, ...]:
        """Per-sample output shape for a per-sample ``input_shape``."""
        return tuple(input_shape)

    # -- computation ---------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- bookkeeping ---------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def get_config(self) -> dict:
        """JSON-serialisable configuration used by model serialization."""
        return {"type": type(self).__name__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_parameters})"


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        units: int,
        kernel_initializer: str | Initializer = "glorot_uniform",
        use_bias: bool = True,
    ) -> None:
        super().__init__()
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = int(units)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.use_bias = bool(use_bias)

    def build(self, input_shape: Sequence[int], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat per-sample inputs, got shape {tuple(input_shape)}"
            )
        in_features = int(input_shape[0])
        dtype = default_dtype()
        self.params["W"] = self.kernel_initializer((in_features, self.units), rng).astype(
            dtype, copy=False
        )
        if self.use_bias:
            self.params["b"] = Zeros()((self.units,), rng).astype(dtype, copy=False)
        super().build(input_shape, rng)

    def output_shape(self, input_shape: Sequence[int]) -> tuple[int, ...]:
        return (self.units,)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._inputs = inputs
        out = inputs @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.grads["W"] = self._inputs.T @ grad_output
        if self.use_bias:
            self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T

    def get_config(self) -> dict:
        config = super().get_config()
        config.update({"units": self.units, "use_bias": self.use_bias})
        return config


def _pad_input(inputs: np.ndarray, pad: int) -> np.ndarray:
    if pad == 0:
        return inputs
    return np.pad(inputs, ((0, 0), (pad, pad), (pad, pad), (0, 0)), mode="constant")


def _im2col(
    inputs: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    buffer: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int, np.ndarray]:
    """Extract sliding patches from an NHWC batch into a contiguous GEMM matrix.

    Returns ``(cols, out_h, out_w, buffer)`` where ``cols`` has shape
    ``(batch * out_h * out_w, kh * kw * channels)``.  ``cols`` is a view into
    ``buffer``, a flat scratch array that callers keep and pass back in so the
    (large) patch matrix is allocated once and reused across minibatches
    instead of reallocated every forward pass.
    """
    batch, height, width, channels = inputs.shape
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}) does not fit input ({height}x{width}) with stride {stride}"
        )
    strides = inputs.strides
    patch_view = np.lib.stride_tricks.as_strided(
        inputs,
        shape=(batch, out_h, out_w, kh, kw, channels),
        strides=(
            strides[0],
            strides[1] * stride,
            strides[2] * stride,
            strides[1],
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    size = batch * out_h * out_w * kh * kw * channels
    if buffer is None or buffer.size < size or buffer.dtype != inputs.dtype:
        buffer = np.empty(size, dtype=inputs.dtype)
    cols6 = buffer[:size].reshape(batch, out_h, out_w, kh, kw, channels)
    np.copyto(cols6, patch_view)
    cols = cols6.reshape(batch * out_h * out_w, kh * kw * channels)
    return cols, out_h, out_w, buffer


def _col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back to the (padded) input layout."""
    batch, height, width, channels = input_shape
    grad_input = np.zeros(input_shape, dtype=cols.dtype)
    cols6 = cols.reshape(batch, out_h, out_w, kh, kw, channels)
    for i in range(kh):
        for j in range(kw):
            grad_input[:, i : i + out_h * stride : stride, j : j + out_w * stride : stride, :] += (
                cols6[:, :, :, i, j, :]
            )
    return grad_input


class Conv2D(Layer):
    """2-D convolution over NHWC inputs.

    Parameters mirror the layers shown in Figure 2 of the paper: the detector
    uses a single ``Conv2D(filters=8, kernel_size=3)`` stage and the localizer
    stacks two of them with 'same' padding so the segmentation output keeps
    the frame geometry.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int] = 3,
        stride: int = 1,
        padding: str = "valid",
        kernel_initializer: str | Initializer = "he_normal",
        use_bias: bool = True,
    ) -> None:
        super().__init__()
        if filters <= 0:
            raise ValueError("filters must be positive")
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        if kernel_size[0] <= 0 or kernel_size[1] <= 0:
            raise ValueError("kernel_size dims must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        if padding not in ("valid", "same"):
            raise ValueError("padding must be 'valid' or 'same'")
        if padding == "same" and stride != 1:
            raise ValueError("'same' padding requires stride 1")
        self.filters = int(filters)
        self.kernel_size = (int(kernel_size[0]), int(kernel_size[1]))
        self.stride = int(stride)
        self.padding = padding
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.use_bias = bool(use_bias)

    def _pad_amount(self) -> int:
        if self.padding == "valid":
            return 0
        # 'same' with stride 1 and odd kernels keeps spatial dims.
        return (self.kernel_size[0] - 1) // 2

    def build(self, input_shape: Sequence[int], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"Conv2D expects (H, W, C) per-sample inputs, got {tuple(input_shape)}"
            )
        channels = int(input_shape[2])
        kh, kw = self.kernel_size
        dtype = default_dtype()
        self.params["W"] = self.kernel_initializer(
            (kh, kw, channels, self.filters), rng
        ).astype(dtype, copy=False)
        if self.use_bias:
            self.params["b"] = Zeros()((self.filters,), rng).astype(dtype, copy=False)
        super().build(input_shape, rng)

    def output_shape(self, input_shape: Sequence[int]) -> tuple[int, ...]:
        height, width, _ = input_shape
        kh, kw = self.kernel_size
        pad = self._pad_amount()
        out_h = (height + 2 * pad - kh) // self.stride + 1
        out_w = (width + 2 * pad - kw) // self.stride + 1
        return (out_h, out_w, self.filters)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        pad = self._pad_amount()
        padded = _pad_input(inputs, pad)
        kh, kw = self.kernel_size
        cols, out_h, out_w, self._col_buffer = _im2col(
            padded, kh, kw, self.stride, getattr(self, "_col_buffer", None)
        )
        weights = self.params["W"].reshape(kh * kw * padded.shape[3], self.filters)
        out = cols @ weights
        if self.use_bias:
            out = out + self.params["b"]
        self._cache = (cols, padded.shape, inputs.shape, out_h, out_w)
        return out.reshape(inputs.shape[0], out_h, out_w, self.filters)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cols, padded_shape, input_shape, out_h, out_w = self._cache
        kh, kw = self.kernel_size
        channels = padded_shape[3]
        grad_flat = grad_output.reshape(-1, self.filters)
        self.grads["W"] = (cols.T @ grad_flat).reshape(kh, kw, channels, self.filters)
        if self.use_bias:
            self.grads["b"] = grad_flat.sum(axis=0)
        weights = self.params["W"].reshape(kh * kw * channels, self.filters)
        grad_cols = grad_flat @ weights.T
        grad_padded = _col2im(grad_cols, padded_shape, kh, kw, self.stride, out_h, out_w)
        pad = self._pad_amount()
        if pad:
            grad_padded = grad_padded[:, pad:-pad, pad:-pad, :]
        return grad_padded.reshape(input_shape)

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            {
                "filters": self.filters,
                "kernel_size": list(self.kernel_size),
                "stride": self.stride,
                "padding": self.padding,
                "use_bias": self.use_bias,
            }
        )
        return config


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) windows of NHWC inputs."""

    def __init__(self, pool_size: int | tuple[int, int] = 2, stride: int | None = None) -> None:
        super().__init__()
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        if pool_size[0] <= 0 or pool_size[1] <= 0:
            raise ValueError("pool_size dims must be positive")
        self.pool_size = (int(pool_size[0]), int(pool_size[1]))
        self.stride = int(stride) if stride is not None else int(pool_size[0])
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    def output_shape(self, input_shape: Sequence[int]) -> tuple[int, ...]:
        height, width, channels = input_shape
        ph, pw = self.pool_size
        out_h = (height - ph) // self.stride + 1
        out_w = (width - pw) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"pool {self.pool_size} does not fit input ({height}x{width})"
            )
        return (out_h, out_w, channels)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        batch, height, width, channels = inputs.shape
        ph, pw = self.pool_size
        out_h = (height - ph) // self.stride + 1
        out_w = (width - pw) // self.stride + 1
        strides = inputs.strides
        windows = np.lib.stride_tricks.as_strided(
            inputs,
            shape=(batch, out_h, out_w, ph, pw, channels),
            strides=(
                strides[0],
                strides[1] * self.stride,
                strides[2] * self.stride,
                strides[1],
                strides[2],
                strides[3],
            ),
            writeable=False,
        )
        flat = windows.reshape(batch, out_h, out_w, ph * pw, channels)
        self._argmax = flat.argmax(axis=3)
        self._input_shape = inputs.shape
        self._out_dims = (out_h, out_w)
        return flat.max(axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, height, width, channels = self._input_shape
        ph, pw = self.pool_size
        out_h, out_w = self._out_dims
        grad_input = np.zeros(self._input_shape, dtype=grad_output.dtype)
        # Decompose flat argmax indices back into window coordinates.
        win_rows, win_cols = np.divmod(self._argmax, pw)
        b_idx, oh_idx, ow_idx, c_idx = np.meshgrid(
            np.arange(batch),
            np.arange(out_h),
            np.arange(out_w),
            np.arange(channels),
            indexing="ij",
        )
        rows = oh_idx * self.stride + win_rows
        cols = ow_idx * self.stride + win_cols
        np.add.at(grad_input, (b_idx, rows, cols, c_idx), grad_output)
        return grad_input

    def get_config(self) -> dict:
        config = super().get_config()
        config.update({"pool_size": list(self.pool_size), "stride": self.stride})
        return config


class UpSample2D(Layer):
    """Nearest-neighbour spatial upsampling (for deeper segmentation variants)."""

    def __init__(self, factor: int = 2) -> None:
        super().__init__()
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = int(factor)

    def output_shape(self, input_shape: Sequence[int]) -> tuple[int, ...]:
        height, width, channels = input_shape
        return (height * self.factor, width * self.factor, channels)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.repeat(self.factor, axis=1).repeat(self.factor, axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, height, width, channels = self._input_shape
        reshaped = grad_output.reshape(
            batch, height, self.factor, width, self.factor, channels
        )
        return reshaped.sum(axis=(2, 4))

    def get_config(self) -> dict:
        config = super().get_config()
        config["factor"] = self.factor
        return config


class Flatten(Layer):
    """Flatten all per-sample dimensions into a single feature vector."""

    def output_shape(self, input_shape: Sequence[int]) -> tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= int(dim)
        return (size,)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = np.random.default_rng(0)

    def seed(self, seed: int) -> None:
        """Reseed the dropout mask generator (used by the Trainer)."""
        self._rng = np.random.default_rng(seed)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep).astype(inputs.dtype)
        mask /= np.asarray(keep, dtype=inputs.dtype)
        self._mask = mask
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def get_config(self) -> dict:
        config = super().get_config()
        config["rate"] = self.rate
        return config


class BatchNorm(Layer):
    """Batch normalisation over the channel (last) axis."""

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)

    def build(self, input_shape: Sequence[int], rng: np.random.Generator) -> None:
        channels = int(input_shape[-1])
        dtype = default_dtype()
        self.params["gamma"] = np.ones(channels, dtype=dtype)
        self.params["beta"] = np.zeros(channels, dtype=dtype)
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)
        super().build(input_shape, rng)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        axes = tuple(range(inputs.ndim - 1))
        if training:
            mean = inputs.mean(axis=axes)
            var = inputs.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        self._std_inv = 1.0 / np.sqrt(var + self.epsilon)
        self._centered = inputs - mean
        self._normed = self._centered * self._std_inv
        self._axes = axes
        self._n = inputs.size // inputs.shape[-1]
        return self.params["gamma"] * self._normed + self.params["beta"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        axes = self._axes
        gamma = self.params["gamma"]
        self.grads["gamma"] = np.sum(grad_output * self._normed, axis=axes)
        self.grads["beta"] = np.sum(grad_output, axis=axes)
        n = self._n
        grad_normed = grad_output * gamma
        grad_var = np.sum(
            grad_normed * self._centered * -0.5 * self._std_inv**3, axis=axes
        )
        grad_mean = np.sum(-grad_normed * self._std_inv, axis=axes) + grad_var * np.mean(
            -2.0 * self._centered, axis=axes
        )
        return (
            grad_normed * self._std_inv
            + grad_var * 2.0 * self._centered / n
            + grad_mean / n
        )

    def get_config(self) -> dict:
        config = super().get_config()
        config.update({"momentum": self.momentum, "epsilon": self.epsilon})
        return config
