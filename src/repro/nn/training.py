"""Training loop, history tracking and dataset utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.losses import Loss, get_loss
from repro.nn.metrics import accuracy_score, dice_coefficient
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam, Optimizer, get_optimizer

__all__ = ["History", "EarlyStopping", "Trainer", "train_test_split"]


@dataclass
class History:
    """Per-epoch training curves produced by :class:`Trainer.fit`."""

    loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    metric: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.loss)

    def best_epoch(self) -> int:
        """Index of the epoch with the lowest validation (or training) loss."""
        curve = self.val_loss if self.val_loss else self.loss
        if not curve:
            raise ValueError("history is empty")
        return int(np.argmin(curve))


@dataclass
class EarlyStopping:
    """Stop training when the monitored loss stops improving."""

    patience: int = 10
    min_delta: float = 1e-4
    _best: float = field(default=float("inf"), init=False)
    _stale: int = field(default=0, init=False)

    def update(self, value: float) -> bool:
        """Record a new loss value; return True when training should stop."""
        if value < self._best - self.min_delta:
            self._best = value
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


def train_test_split(
    *arrays: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple:
    """Shuffle-split any number of aligned arrays into train/test partitions.

    Returns ``(a_train, a_test, b_train, b_test, ...)`` mirroring the familiar
    scikit-learn calling convention.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = arrays[0].shape[0]
    for arr in arrays:
        if arr.shape[0] != n:
            raise ValueError("all arrays must share the first dimension")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1) if n > 1 else n_test
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    out = []
    for arr in arrays:
        out.append(arr[train_idx])
        out.append(arr[test_idx])
    return tuple(out)


class Trainer:
    """Mini-batch gradient-descent trainer for :class:`Sequential` models."""

    def __init__(
        self,
        model: Sequential,
        loss: str | Loss = "bce",
        optimizer: str | Optimizer | None = None,
        metric: Callable[[np.ndarray, np.ndarray], float] | str | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.loss = get_loss(loss)
        self.optimizer = (
            get_optimizer(optimizer) if optimizer is not None else Adam(learning_rate=0.005)
        )
        if metric == "accuracy" or metric is None:
            self.metric: Callable[[np.ndarray, np.ndarray], float] = accuracy_score
        elif metric == "dice":
            self.metric = dice_coefficient
        elif callable(metric):
            self.metric = metric
        else:
            raise ValueError(f"unknown metric {metric!r}")
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 50,
        batch_size: int = 32,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        early_stopping: EarlyStopping | None = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> History:
        """Train the model and return per-epoch history."""
        dtype = self._dtype()
        x = np.asarray(x, dtype=dtype)
        y = np.asarray(y, dtype=dtype)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of samples")
        if x.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")

        history = History()
        n = x.shape[0]
        for epoch in range(epochs):
            order = self._rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch_x, batch_y = x[idx], y[idx]
                predictions = self.model.forward(batch_x, training=True)
                epoch_loss += self.loss.forward(predictions, batch_y)
                grad = self.loss.backward(predictions, batch_y)
                self.model.backward(grad)
                self.optimizer.step(self.model.layers)
                batches += 1
            epoch_loss /= max(1, batches)
            history.loss.append(epoch_loss)

            train_pred = self.model.predict(x)
            history.metric.append(float(self.metric(y, train_pred)))

            monitored = epoch_loss
            if validation_data is not None:
                val_x, val_y = validation_data
                val_pred = self.model.predict(np.asarray(val_x, dtype=dtype))
                val_y = np.asarray(val_y, dtype=dtype)
                val_loss = self.loss.forward(val_pred, val_y)
                history.val_loss.append(val_loss)
                history.val_metric.append(float(self.metric(val_y, val_pred)))
                monitored = val_loss

            if verbose:  # pragma: no cover - console output only
                print(
                    f"epoch {epoch + 1}/{epochs}: loss={epoch_loss:.4f} "
                    f"metric={history.metric[-1]:.4f}"
                )

            if early_stopping is not None and early_stopping.update(monitored):
                break
        return history

    def _dtype(self) -> np.dtype:
        """The model's compute dtype (the substrate default until built)."""
        from repro.nn.dtype import default_dtype

        return getattr(self.model, "dtype", None) or default_dtype()

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """Return ``(loss, metric)`` on a held-out set."""
        dtype = self._dtype()
        x = np.asarray(x, dtype=dtype)
        y = np.asarray(y, dtype=dtype)
        predictions = self.model.predict(x)
        return self.loss.forward(predictions, y), float(self.metric(y, predictions))
