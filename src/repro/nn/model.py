"""Sequential model container for the NumPy neural-network substrate."""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.nn.dtype import default_dtype
from repro.nn.layers import Layer
from repro.obs.metrics import METRICS, nn_forward_histogram

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers with forward/backward propagation.

    The two DL2Fence CNNs (detector and localizer, Figure 2 of the paper) are
    both expressible as `Sequential` stacks, which keeps serialization and
    hardware-cost accounting straightforward.
    """

    def __init__(self, layers: Iterable[Layer] | None = None, seed: int = 0) -> None:
        self.layers: list[Layer] = list(layers) if layers is not None else []
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self.input_shape: tuple[int, ...] | None = None
        self.dtype: np.dtype = default_dtype()

    # -- construction ---------------------------------------------------
    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        if self.input_shape is not None:
            raise RuntimeError("cannot add layers after the model has been built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: Sequence[int]) -> "Sequential":
        """Allocate all layer parameters for a per-sample ``input_shape``."""
        shape = tuple(int(d) for d in input_shape)
        self.input_shape = shape
        # Parameters are allocated in the process-wide default dtype; the
        # model keeps computing in that dtype even if the default changes.
        self.dtype = default_dtype()
        for layer in self.layers:
            layer.build(shape, self._rng)
            shape = layer.output_shape(shape)
        self.output_shape = shape
        return self

    def _ensure_built(self, batch: np.ndarray) -> None:
        if self.input_shape is None:
            self.build(batch.shape[1:])
        elif tuple(batch.shape[1:]) != self.input_shape:
            raise ValueError(
                f"model built for per-sample shape {self.input_shape}, "
                f"got batch of per-sample shape {tuple(batch.shape[1:])}"
            )

    # -- computation ----------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a forward pass over a batch (in the model's build-time dtype)."""
        inputs = np.asarray(inputs)
        self._ensure_built(inputs)
        inputs = inputs.astype(self.dtype, copy=False)
        if METRICS.active:
            start = perf_counter()
            out = inputs
            for layer in self.layers:
                out = layer.forward(out, training=training)
            nn_forward_histogram().observe(
                perf_counter() - start, mode="train" if training else "infer"
            )
            return out
        out = inputs
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through the stack (after a forward pass)."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference-mode forward pass, processed in mini-batches."""
        inputs = np.asarray(inputs)
        if inputs.shape[0] == 0:
            self._ensure_built(inputs)
            return np.zeros((0,) + tuple(self.output_shape), dtype=self.dtype)
        chunks = [
            self.forward(inputs[start : start + batch_size], training=False)
            for start in range(0, inputs.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs, training=False)

    # -- bookkeeping ------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total trainable parameter count (used by the hardware area model)."""
        return int(sum(layer.num_parameters for layer in self.layers))

    def summary(self) -> str:
        """Human-readable architecture summary."""
        if self.input_shape is None:
            raise RuntimeError("build the model (or run a forward pass) before summary()")
        lines = [f"Sequential: input {self.input_shape}"]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(
                f"  {type(layer).__name__:<12} -> {shape}  params={layer.num_parameters}"
            )
        lines.append(f"Total parameters: {self.num_parameters}")
        return "\n".join(lines)

    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copy of every layer's parameter dictionary."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected weights for {len(self.layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            for name, value in layer_weights.items():
                if name not in layer.params:
                    raise KeyError(
                        f"layer {type(layer).__name__} has no parameter {name!r}"
                    )
                if layer.params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {type(layer).__name__}.{name}: "
                        f"{layer.params[name].shape} vs {value.shape}"
                    )
                layer.params[name] = np.asarray(value, dtype=self.dtype).copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential(layers={len(self.layers)}, params={self.num_parameters})"
