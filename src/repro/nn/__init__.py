"""NumPy deep-learning substrate used to train the DL2Fence CNN models.

The paper trains its detector and localizer with TensorFlow 2.0.  This
reproduction runs fully offline, so an equivalent — deliberately small but
complete — deep-learning framework is provided here.  It supports the layer
types the paper's two CNNs need (2-D convolution, max pooling, dense layers,
ReLU/Sigmoid activations), binary cross-entropy and Dice losses, SGD /
momentum / Adam optimizers, and a training loop with early stopping.

Everything operates on ``numpy.ndarray`` batches in NHWC layout
(``(batch, height, width, channels)``), which matches how the feature frames
of Section 3 are naturally expressed.
"""

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.dtype import default_dtype, resolve_dtype, set_default_dtype, use_dtype
from repro.nn.initializers import (
    Constant,
    GlorotUniform,
    HeNormal,
    Initializer,
    RandomNormal,
    Zeros,
    get_initializer,
)
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    UpSample2D,
)
from repro.nn.losses import (
    BinaryCrossEntropy,
    DiceLoss,
    Loss,
    MeanSquaredError,
    combined_bce_dice,
    get_loss,
)
from repro.nn.metrics import (
    ClassificationReport,
    accuracy_score,
    confusion_counts,
    dice_coefficient,
    f1_score,
    iou_score,
    precision_score,
    recall_score,
    segmentation_report,
)
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, get_optimizer
from repro.nn.serialization import load_model, save_model
from repro.nn.training import EarlyStopping, History, Trainer, train_test_split

__all__ = [
    "Adam",
    "BatchNorm",
    "BinaryCrossEntropy",
    "ClassificationReport",
    "Constant",
    "Conv2D",
    "Dense",
    "DiceLoss",
    "Dropout",
    "EarlyStopping",
    "Flatten",
    "GlorotUniform",
    "HeNormal",
    "History",
    "Initializer",
    "Layer",
    "LeakyReLU",
    "Loss",
    "MaxPool2D",
    "MeanSquaredError",
    "Momentum",
    "Optimizer",
    "RandomNormal",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "Trainer",
    "UpSample2D",
    "Zeros",
    "accuracy_score",
    "combined_bce_dice",
    "confusion_counts",
    "default_dtype",
    "dice_coefficient",
    "f1_score",
    "get_initializer",
    "get_loss",
    "get_optimizer",
    "iou_score",
    "load_model",
    "precision_score",
    "recall_score",
    "resolve_dtype",
    "save_model",
    "segmentation_report",
    "set_default_dtype",
    "train_test_split",
    "use_dtype",
]
