"""Activation layers for the NumPy neural-network substrate.

Each activation is a stateless :class:`repro.nn.layers.Layer` so it can be
placed anywhere inside a :class:`repro.nn.model.Sequential` stack.  The
DL2Fence detector uses ReLU after its convolution and a Sigmoid on the final
dense unit; the localizer uses ReLU between convolutions and a Sigmoid on the
per-pixel segmentation output.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with a configurable negative slope."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.alpha * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.alpha * grad_output)

    def get_config(self) -> dict:
        config = super().get_config()
        config["alpha"] = self.alpha
        return config


class Sigmoid(Layer):
    """Logistic sigmoid, numerically stabilised for large magnitude inputs."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not np.issubdtype(np.asarray(inputs).dtype, np.floating):
            inputs = np.asarray(inputs, dtype=np.float64)
        out = np.empty_like(inputs)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output**2)


class Softmax(Layer):
    """Softmax over the last axis (provided for multi-class extensions)."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = inputs - np.max(inputs, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / np.sum(exp, axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Jacobian-vector product of softmax, batched over leading axes.
        dot = np.sum(grad_output * self._output, axis=-1, keepdims=True)
        return self._output * (grad_output - dot)
