"""Gradient-descent optimizers for the NumPy neural-network substrate."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "get_optimizer"]


class Optimizer(ABC):
    """Base optimizer: updates every trainable parameter of a layer stack."""

    def __init__(self, learning_rate: float = 0.01, clip_norm: float | None = None) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive when given")
        self.learning_rate = float(learning_rate)
        self.clip_norm = clip_norm
        self.iterations = 0

    def step(self, layers: Iterable[Layer]) -> None:
        """Apply one update using the gradients currently stored on layers."""
        self.iterations += 1
        for layer_index, layer in enumerate(layers):
            for name, param in layer.params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                if self.clip_norm is not None:
                    norm = float(np.linalg.norm(grad))
                    if norm > self.clip_norm:
                        grad = grad * (self.clip_norm / norm)
                key = (layer_index, name)
                self._update(key, param, grad)

    @abstractmethod
    def _update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        """Update ``param`` in place."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(lr={self.learning_rate})"


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: dict[tuple, np.ndarray] = {}

    def _update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * grad
        self._velocity[key] = velocity
        param += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the default for the DL2Fence CNNs."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: dict[tuple, np.ndarray] = {}
        self._v: dict[tuple, np.ndarray] = {}
        self._t: dict[tuple, int] = {}

    def _update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        self._m[key] = m
        self._v[key] = v
        self._t[key] = t


_REGISTRY: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "momentum": Momentum,
    "adam": Adam,
}


def get_optimizer(spec: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by name or pass an instance through unchanged."""
    if isinstance(spec, Optimizer):
        return spec
    key = str(spec).lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown optimizer {spec!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key](**kwargs)
