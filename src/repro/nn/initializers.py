"""Weight initializers for the NumPy neural-network substrate.

The tiny CNNs of DL2Fence (eight 3x3 kernels per convolutional layer) are
sensitive to initial weight scale because the feature frames are small
(R x (R-1) pixels) and the training sets are modest.  Glorot and He schemes
are provided and used as the defaults for sigmoid- and ReLU-activated layers
respectively.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "Initializer",
    "Zeros",
    "Constant",
    "RandomNormal",
    "GlorotUniform",
    "HeNormal",
    "get_initializer",
]


def _fan_in_fan_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute the fan-in / fan-out of a weight tensor.

    Dense kernels are ``(fan_in, fan_out)``; convolution kernels are
    ``(kh, kw, in_channels, out_channels)``.
    """
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return int(shape[0]), int(shape[0])
    if len(shape) == 2:
        return int(shape[0]), int(shape[1])
    receptive_field = 1
    for dim in shape[:-2]:
        receptive_field *= int(dim)
    fan_in = receptive_field * int(shape[-2])
    fan_out = receptive_field * int(shape[-1])
    return fan_in, fan_out


class Initializer(ABC):
    """Base class: an initializer maps a shape to a weight array."""

    @abstractmethod
    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Return a freshly initialised array of ``shape``."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class Zeros(Initializer):
    """All-zeros initializer, used for biases."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=np.float64)


class Constant(Initializer):
    """Fill with a constant value."""

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.value, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Constant(value={self.value})"


class RandomNormal(Initializer):
    """Gaussian initializer with configurable standard deviation."""

    def __init__(self, stddev: float = 0.05, mean: float = 0.0) -> None:
        if stddev < 0:
            raise ValueError("stddev must be non-negative")
        self.stddev = float(stddev)
        self.mean = float(mean)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(self.mean, self.stddev, size=shape).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RandomNormal(stddev={self.stddev}, mean={self.mean})"


class GlorotUniform(Initializer):
    """Glorot / Xavier uniform initializer (default for sigmoid outputs)."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fan_in_fan_out(shape)
        limit = math.sqrt(6.0 / max(1, fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape).astype(np.float64)


class HeNormal(Initializer):
    """He normal initializer (default for ReLU-activated conv/dense layers)."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fan_in_fan_out(shape)
        stddev = math.sqrt(2.0 / max(1, fan_in))
        return rng.normal(0.0, stddev, size=shape).astype(np.float64)


_REGISTRY: dict[str, type[Initializer]] = {
    "zeros": Zeros,
    "constant": Constant,
    "random_normal": RandomNormal,
    "glorot_uniform": GlorotUniform,
    "he_normal": HeNormal,
}


def get_initializer(spec: str | Initializer) -> Initializer:
    """Resolve a string name (or pass through an instance) to an initializer."""
    if isinstance(spec, Initializer):
        return spec
    key = str(spec).lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown initializer {spec!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
