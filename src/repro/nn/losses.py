"""Loss functions used to train the DL2Fence CNNs.

The detector (binary classification of "attack frame" vs "benign frame") is
trained with binary cross-entropy; the localizer (per-pixel segmentation of
the attacking route) is trained with a Dice loss — the paper explicitly names
"dice accuracy" as the feedback signal for the segmentation model — optionally
blended with BCE for smoother gradients early in training.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Loss",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "DiceLoss",
    "combined_bce_dice",
    "get_loss",
]

_EPS = 1e-7


class Loss(ABC):
    """A loss maps ``(predictions, targets)`` to a scalar and a gradient."""

    @abstractmethod
    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Scalar loss value averaged over the batch."""

    @abstractmethod
    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the loss with respect to ``predictions``."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _validate(predictions: np.ndarray, targets: np.ndarray) -> None:
    if predictions.shape != targets.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} != target shape {targets.shape}"
        )


class MeanSquaredError(Loss):
    """Mean squared error; used by some baseline regressors and tests."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        _validate(predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        _validate(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on sigmoid outputs (expects values in (0, 1))."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        _validate(predictions, targets)
        p = np.clip(predictions, _EPS, 1.0 - _EPS)
        return float(np.mean(-(targets * np.log(p) + (1.0 - targets) * np.log(1.0 - p))))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        _validate(predictions, targets)
        p = np.clip(predictions, _EPS, 1.0 - _EPS)
        return (p - targets) / (p * (1.0 - p)) / predictions.size


class DiceLoss(Loss):
    """Soft Dice loss (``1 - dice coefficient``) computed per sample.

    Dice is the metric the paper reports for the segmentation localizer; the
    soft version keeps the loss differentiable on sigmoid probabilities.
    """

    def __init__(self, smooth: float = 1.0) -> None:
        if smooth <= 0:
            raise ValueError("smooth must be positive")
        self.smooth = float(smooth)

    def _per_sample(self, predictions: np.ndarray, targets: np.ndarray):
        flat_p = predictions.reshape(predictions.shape[0], -1)
        flat_t = targets.reshape(targets.shape[0], -1)
        intersection = np.sum(flat_p * flat_t, axis=1)
        denom = np.sum(flat_p, axis=1) + np.sum(flat_t, axis=1)
        dice = (2.0 * intersection + self.smooth) / (denom + self.smooth)
        return flat_p, flat_t, intersection, denom, dice

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        _validate(predictions, targets)
        _, _, _, _, dice = self._per_sample(predictions, targets)
        return float(np.mean(1.0 - dice))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        _validate(predictions, targets)
        flat_p, flat_t, intersection, denom, _ = self._per_sample(predictions, targets)
        batch = predictions.shape[0]
        # d(dice)/dp = (2*t*(denom+s) - (2*I+s)) / (denom+s)^2
        numerator = 2.0 * flat_t * (denom + self.smooth)[:, None] - (
            2.0 * intersection + self.smooth
        )[:, None]
        grad_dice = numerator / (denom + self.smooth)[:, None] ** 2
        grad = -grad_dice / batch
        return grad.reshape(predictions.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiceLoss(smooth={self.smooth})"


class combined_bce_dice(Loss):
    """Weighted sum of BCE and Dice, a common recipe for thin-structure masks."""

    def __init__(self, bce_weight: float = 0.5, dice_weight: float = 0.5) -> None:
        if bce_weight < 0 or dice_weight < 0:
            raise ValueError("weights must be non-negative")
        if bce_weight + dice_weight == 0:
            raise ValueError("at least one weight must be positive")
        self.bce_weight = float(bce_weight)
        self.dice_weight = float(dice_weight)
        self._bce = BinaryCrossEntropy()
        self._dice = DiceLoss()

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.bce_weight * self._bce.forward(
            predictions, targets
        ) + self.dice_weight * self._dice.forward(predictions, targets)

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return self.bce_weight * self._bce.backward(
            predictions, targets
        ) + self.dice_weight * self._dice.backward(predictions, targets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"combined_bce_dice(bce={self.bce_weight}, dice={self.dice_weight})"


_REGISTRY: dict[str, type[Loss]] = {
    "mse": MeanSquaredError,
    "bce": BinaryCrossEntropy,
    "binary_crossentropy": BinaryCrossEntropy,
    "dice": DiceLoss,
    "bce_dice": combined_bce_dice,
}


def get_loss(spec: str | Loss) -> Loss:
    """Resolve a loss by name or pass an instance through unchanged."""
    if isinstance(spec, Loss):
        return spec
    key = str(spec).lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown loss {spec!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
