"""Classification and segmentation metrics.

These are the metrics reported throughout Tables 1-4 of the paper: accuracy,
precision, recall and F1 for the frame-level detector, and the same metrics
(plus Dice / IoU) computed per pixel for the localization masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "confusion_counts",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "dice_coefficient",
    "iou_score",
    "ClassificationReport",
    "segmentation_report",
]


def _binarize(values: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    return (np.asarray(values, dtype=np.float64) >= threshold).astype(np.int64)


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5
) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, tn, fn)`` for binary labels/scores."""
    t = _binarize(y_true, 0.5).ravel()
    p = _binarize(y_pred, threshold).ravel()
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    tp = int(np.sum((t == 1) & (p == 1)))
    fp = int(np.sum((t == 0) & (p == 1)))
    tn = int(np.sum((t == 0) & (p == 0)))
    fn = int(np.sum((t == 1) & (p == 0)))
    return tp, fp, tn, fn


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correctly classified items (frames or pixels)."""
    tp, fp, tn, fn = confusion_counts(y_true, y_pred, threshold)
    total = tp + fp + tn + fn
    return (tp + tn) / total if total else 0.0


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Positive predictive value; 1.0 when no positives are predicted."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred, threshold)
    return tp / (tp + fp) if (tp + fp) else 1.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """True positive rate; 1.0 when there are no positives to find."""
    tp, _, _, fn = confusion_counts(y_true, y_pred, threshold)
    return tp / (tp + fn) if (tp + fn) else 1.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, threshold)
    recall = recall_score(y_true, y_pred, threshold)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def dice_coefficient(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Dice similarity between binary masks (the localizer's training target)."""
    t = _binarize(y_true, 0.5).ravel()
    p = _binarize(y_pred, threshold).ravel()
    intersection = int(np.sum(t * p))
    denom = int(np.sum(t)) + int(np.sum(p))
    if denom == 0:
        return 1.0
    return 2.0 * intersection / denom


def iou_score(y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5) -> float:
    """Intersection over union of binary masks."""
    t = _binarize(y_true, 0.5).ravel()
    p = _binarize(y_pred, threshold).ravel()
    intersection = int(np.sum(t & p))
    union = int(np.sum(t | p))
    if union == 0:
        return 1.0
    return intersection / union


@dataclass
class ClassificationReport:
    """Bundle of the four metrics reported in the paper's tables."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    support: int = 0
    extras: dict = field(default_factory=dict)

    @classmethod
    def from_predictions(
        cls, y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5
    ) -> "ClassificationReport":
        y_true = np.asarray(y_true)
        return cls(
            accuracy=accuracy_score(y_true, y_pred, threshold),
            precision=precision_score(y_true, y_pred, threshold),
            recall=recall_score(y_true, y_pred, threshold),
            f1=f1_score(y_true, y_pred, threshold),
            support=int(y_true.size),
        )

    def as_dict(self) -> dict:
        """Plain-dict view used by the benchmark tables."""
        out = {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "support": self.support,
        }
        out.update(self.extras)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"acc={self.accuracy:.3f} prec={self.precision:.3f} "
            f"rec={self.recall:.3f} f1={self.f1:.3f} (n={self.support})"
        )


def segmentation_report(
    y_true: np.ndarray, y_pred: np.ndarray, threshold: float = 0.5
) -> ClassificationReport:
    """Per-pixel classification report plus Dice/IoU extras for masks."""
    report = ClassificationReport.from_predictions(y_true, y_pred, threshold)
    report.extras["dice"] = dice_coefficient(y_true, y_pred, threshold)
    report.extras["iou"] = iou_score(y_true, y_pred, threshold)
    return report
