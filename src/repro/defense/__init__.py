"""Closed-loop runtime defense built on top of the DL2Fence pipeline.

The paper's framework detects and localizes refined flooding-DoS so that a
*fence* can act on the result.  This package is that fence:

* :mod:`repro.defense.policy` — throttle/quarantine countermeasures with
  confidence hysteresis (N detections to engage, M clean windows to release)
  and false-positive-safe per-node rollback;
* :mod:`repro.defense.guard` — :class:`DL2FenceGuard`, the online loop that
  subscribes to the global performance monitor stream, runs each window
  through the trained pipeline, and pulls the injection rate-limit hook on
  the mesh for every localized attacker;
* :mod:`repro.defense.evidence` — :class:`EvidenceAccumulator`, per-node
  EWMA suspicion fused across sampling windows (with decay and conviction
  hysteresis), which is what makes pulsed/ramping/migrating/colluding/
  on-route attacks localizable when no single window convicts them;
* :mod:`repro.defense.report` — :class:`DefenseReport`, the per-window
  timeline with detection latency, time-to-mitigation, benign latency
  before/during/after engagement, and collateral-damage accounting.
"""

from repro.defense.evidence import EvidenceAccumulator, EvidenceConfig
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseEvent, DefenseReport, WindowRecord

__all__ = [
    "DL2FenceGuard",
    "DefenseEvent",
    "DefenseReport",
    "EvidenceAccumulator",
    "EvidenceConfig",
    "MitigationPolicy",
    "WindowRecord",
]
