"""Mitigation policies applied to localized attackers.

The paper positions DL2Fence as the detection/localization front end of a
*fence*: once attackers are pinpointed, the NoC can rate-limit or isolate
their network interfaces.  A :class:`MitigationPolicy` captures the two
countermeasures the defense guard knows how to apply through the
:meth:`repro.noc.network.MeshNetwork.set_injection_limit` hook —

* **throttle** — localized attackers keep a small fraction of their injection
  bandwidth, so a false positive degrades an innocent node instead of cutting
  it off;
* **quarantine** — localized attackers are blocked outright, the strongest
  (and least forgiving) response.

Both are wrapped in confidence hysteresis: the guard only engages after
``engage_after`` consecutive detected windows, rolls a node back after
``release_after`` consecutive clean windows, and releases an individual node
early when the localizer stops re-flagging it for ``stale_after`` detection
windows (false-positive-safe rollback).

Two multi-attack safeguards ride on top.  ``reengage_backoff``
exponentially lengthens the hold of a node that has already been released
and re-engaged, bounding the quarantine release/probe oscillation a fully
fenced attacker otherwise causes (a fenced flood leaves no congestion
signature, so every release is a probe).  ``max_engaged_nodes`` caps how
many nodes may be fenced simultaneously, so a Table-Like-Method superset
that grossly over-approximates the attacker set cannot quarantine a large
part of the mesh in one sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MitigationPolicy"]

_ACTIONS = ("throttle", "quarantine")


@dataclass(frozen=True)
class MitigationPolicy:
    """Configuration of the closed-loop countermeasure.

    Attributes
    ----------
    action:
        ``"throttle"`` rate-limits flagged attackers to ``throttle_factor``
        of their injection bandwidth; ``"quarantine"`` blocks them entirely.
    throttle_factor:
        Injection-bandwidth fraction granted to a throttled attacker
        (ignored for quarantine).
    engage_after:
        Consecutive detected sampling windows a node must be localized in
        before the countermeasure engages on it (trigger hysteresis, N).
    release_after:
        Consecutive clean windows required before all restrictions are
        rolled back (release hysteresis, M).
    stale_after:
        Detection windows an engaged node may go without being re-flagged by
        the localizer before it is individually released — the
        false-positive-safe automatic rollback.
    flush_queue:
        Discard the backlog queued at an attacker's network interface when
        the countermeasure engages *and again when it releases*, so a fenced
        flood cannot pour out once the limit lifts.  Costs any benign
        packets the node had queued, which the collateral accounting makes
        visible.
    reengage_backoff:
        Hold multiplier for repeat offenders: a node engaged for the k-th
        time must survive ``release_after * backoff**(k-1)`` clean windows
        (and ``stale_after * backoff**(k-1)`` unflagged detection windows)
        before it is released again.  ``1.0`` disables the backoff and
        restores pure fixed-threshold hysteresis.
    max_engaged_nodes:
        Upper bound on simultaneously fenced nodes (``None`` = unlimited).
        Guards against an over-approximated localization superset; the guard
        engages the most persistently flagged candidates first and leaves
        the rest for the next sampling round.
    release_probe_spacing:
        Minimum clean windows between two staggered release probes.  Clean
        windows release **one** fenced node at a time (a quarantined
        attacker leaves no evidence, so every release is a probe — and a
        mass release of colluding sources would restart the whole flood at
        once); this spacing additionally leaves room for a released
        attacker's congestion to rebuild and break the clean streak before
        the next node is probed.  ``1`` releases on every qualifying clean
        window.
    adaptive_throttle:
        Let the guard steer the throttle limit instead of applying
        ``throttle_factor`` verbatim.  The guard runs a PI controller on
        the observed benign recovery ratio (fenced-window benign delivery
        over the pre-engagement baseline): under-recovery tightens the
        limit, full recovery relaxes it back towards (and above)
        ``throttle_factor``, so a mis-fenced innocent gets most of its
        bandwidth back while a still-hot flood is squeezed harder.  Only
        meaningful for ``action="throttle"``; quarantine stays absolute.
    """

    action: str = "throttle"
    throttle_factor: float = 0.1
    engage_after: int = 2
    release_after: int = 2
    stale_after: int = 3
    flush_queue: bool = False
    reengage_backoff: float = 2.0
    max_engaged_nodes: int | None = None
    release_probe_spacing: int = 1
    adaptive_throttle: bool = False

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}")
        if not 0.0 < self.throttle_factor < 1.0:
            raise ValueError("throttle_factor must be in (0, 1)")
        if self.engage_after < 1:
            raise ValueError("engage_after must be >= 1")
        if self.release_after < 1:
            raise ValueError("release_after must be >= 1")
        if self.stale_after < 1:
            raise ValueError("stale_after must be >= 1")
        if self.reengage_backoff < 1.0:
            raise ValueError("reengage_backoff must be >= 1.0")
        if self.max_engaged_nodes is not None and self.max_engaged_nodes < 1:
            raise ValueError("max_engaged_nodes must be >= 1 (or None)")
        if self.release_probe_spacing < 1:
            raise ValueError("release_probe_spacing must be >= 1")

    # -- hysteresis thresholds ----------------------------------------------
    def release_threshold(self, engagements: int) -> int:
        """Clean windows required to release a node engaged ``engagements`` times."""
        return self._backed_off(self.release_after, engagements)

    def stale_threshold(self, engagements: int) -> int:
        """Unflagged detection windows before a node's stale rollback."""
        return self._backed_off(self.stale_after, engagements)

    def _backed_off(self, base: int, engagements: int) -> int:
        exponent = max(0, engagements - 1)
        return int(math.ceil(base * self.reengage_backoff**exponent))

    @property
    def injection_limit(self) -> float:
        """Injection limit applied to an engaged node."""
        return 0.0 if self.action == "quarantine" else self.throttle_factor

    @property
    def name(self) -> str:
        """Short display name for tables and timelines."""
        if self.action == "quarantine":
            return "quarantine"
        return f"throttle@{self.throttle_factor:g}"

    # -- common configurations ---------------------------------------------
    @classmethod
    def throttle(cls, factor: float = 0.1, **overrides) -> "MitigationPolicy":
        """A rate-limiting policy keeping ``factor`` of the bandwidth."""
        return cls(action="throttle", throttle_factor=factor, **overrides)

    @classmethod
    def quarantine(cls, **overrides) -> "MitigationPolicy":
        """A full-isolation policy (injection limit 0)."""
        return cls(action="quarantine", **overrides)
