"""Online DL2Fence guard: closed-loop detection, localization and mitigation.

The guard turns the offline DL2Fence pipeline into a runtime system.  It
subscribes to the :class:`~repro.monitor.sampler.GlobalPerformanceMonitor`
stream, pushes every sampling window through the trained detector/localizer
(using the batched single-forward fast path of
:meth:`repro.core.pipeline.DL2Fence.process_sample`), and pulls the
injection rate-limit hook on the mesh's source queues for every node the
Table-Like Method pins as an attacker.

The countermeasure surface is backend-agnostic: ``set_injection_limit`` /
``flush_source_queue`` exist on both the object mesh and the vectorized
structure-of-arrays backend (where a limit update writes the per-node
limit/credit arrays the injection kernel gates on), and both backends feed
the guard identical windows and delivered-packet streams — a defended
episode produces the same :class:`DefenseReport` under either
``REPRO_SIM_BACKEND`` value (pinned by
``tests/noc/test_soa_equivalence.py``).  Reports round-trip losslessly
through :meth:`DefenseReport.to_payload`, which is what the experiment
engine's per-episode cache stores.

Engagement and release follow the hysteresis of the configured
:class:`~repro.defense.policy.MitigationPolicy` so a single noisy window can
neither trip nor lift the fence, and nodes that stop being re-flagged roll
back automatically even while an attack continues elsewhere.

Concurrent multi-attacker floods are handled through **iterative
localization rounds**, following the paper's Figure-3 multi-attacker rules:
fencing the loudest localized attacker removes its congestion signature, the
guard keeps streaming windows through the Table-Like Method, and the next
rounds surface the remaining attackers one batch at a time.  Per-node engage
counts drive an exponential re-engage backoff (quarantined attackers leave
no evidence, so every release is a probe; repeat offenders are held
exponentially longer), and ``max_engaged_nodes`` bounds the blast radius of
an over-approximated localization superset.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import DL2Fence
from repro.defense.degraded import DegradedModeConfig, WindowSanitizer
from repro.defense.evidence import EvidenceAccumulator, EvidenceConfig
from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseEvent, DefenseReport, WindowRecord
from repro.faults.monitor import DETOUR_KEY, LOCAL_BOC_KEY
from repro.monitor.frames import FrameSample
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator
from repro.obs.bus import BUS
from repro.obs.metrics import METRICS, guard_events_counter

__all__ = ["DL2FenceGuard"]


@dataclass(frozen=True)
class _WindowStats:
    """Per-window delivery measurements, split at the containment epoch."""

    latency: float
    benign_delivered: int
    malicious_delivered: int
    fresh_latency: float
    fresh_delivered: int
    backlog_delivered: int


@dataclass
class _EngagedNode:
    """Book-keeping for one node under an active countermeasure."""

    node: int
    previous_limit: float
    engaged_cycle: int
    windows_since_flagged: int = 0
    #: Shadow counter: estimated residual pressure behind the fence.  A
    #: quarantined node emits no congestion evidence, so the guard keeps a
    #: decaying estimate instead — seeded from the node's suspicion at
    #: engage time, bumped whenever the node is re-flagged while fenced,
    #: cooled every quiet window.  Release probes go lowest-pressure first.
    shadow_pressure: float = 0.0


class DL2FenceGuard:
    """Attaches DL2Fence to a live simulator and acts on what it localizes."""

    #: PI gains of the adaptive throttle (``MitigationPolicy.adaptive_throttle``):
    #: the controller tracks a benign recovery ratio of 1.0 against the
    #: pre-engagement delivery baseline; under-recovery tightens the limit,
    #: over-recovery relaxes it.
    _ADAPTIVE_KP = 0.5
    _ADAPTIVE_KI = 0.1
    #: Anti-windup clamp on the recovery-error integral.
    _ADAPTIVE_INTEGRAL_CAP = 5.0
    #: Adaptive limit bounds, as multiples of ``throttle_factor``.
    _ADAPTIVE_MIN_SCALE = 0.25
    _ADAPTIVE_MAX_SCALE = 4.0
    #: EWMA retention of the pre-engagement benign delivery baseline.
    _BASELINE_DECAY = 0.8
    #: Per-window retention of an engaged node's shadow-pressure counter.
    _SHADOW_DECAY = 0.8

    def __init__(
        self,
        fence: DL2Fence,
        policy: MitigationPolicy | None = None,
        attack_start: int | None = None,
        attack_end: int | None = None,
        true_attackers: tuple[int, ...] = (),
        force_localization: bool = False,
        evidence: EvidenceConfig | bool = True,
        degraded: DegradedModeConfig | bool = True,
    ) -> None:
        """``attack_start``, ``attack_end`` and ``true_attackers`` are
        optional ground truth used only for evaluation metrics (detection
        latency, recovery, collateral); the guard's decisions never read
        them.

        ``evidence`` configures the cross-window evidence accumulator the
        guard consults alongside the per-window Table-Like Method (see
        :mod:`repro.defense.evidence`): ``True`` (the default) uses
        :class:`EvidenceConfig` defaults, an explicit config tunes it, and
        ``False`` restores pure single-window localization.

        ``degraded`` configures degraded-mode operation against faulty
        telemetry (see :mod:`repro.defense.degraded`): windows are scrubbed
        through a :class:`WindowSanitizer`, delivery gaps charge extra
        evidence decay, stale (delayed) windows never drive release probes,
        and nodes with no trustworthy telemetry — declared-silent or
        stuck-counter — are excluded from evidence, flag streaks and new
        engagements.  On a healthy stream the whole machinery is a no-op,
        which is why it defaults on; ``False`` disables it."""
        self.fence = fence
        self.policy = policy or MitigationPolicy()
        self.force_localization = force_localization
        if evidence is True:
            evidence = EvidenceConfig()
        self.evidence_config: EvidenceConfig | None = evidence or None
        if degraded is True:
            degraded = DegradedModeConfig()
        self.degraded_config: DegradedModeConfig | None = degraded or None
        # Built lazily on the first window (the scripted test harness wires
        # a guard to a simulator without attach(), so the mesh size is only
        # reliably known once a sample arrives).
        self.evidence: EvidenceAccumulator | None = None
        self.simulator: NoCSimulator | None = None
        self.monitor: GlobalPerformanceMonitor | None = None
        self.report = DefenseReport(
            policy=self.policy,
            sample_period=0,
            attack_start=attack_start,
            attack_end=attack_end,
            true_attackers=tuple(true_attackers),
        )
        self._engaged: dict[int, _EngagedNode] = {}
        # Consecutive detection windows each candidate node was flagged in —
        # per-node engagement hysteresis, so one spurious localization in an
        # otherwise correct detection streak cannot fence an innocent node.
        self._flag_streaks: dict[int, int] = {}
        # Lifetime engagement count per node: feeds the policy's re-engage
        # backoff so an attacker that oscillates through release probes is
        # held exponentially longer each time.
        self._engage_counts: dict[int, int] = {}
        # Iterative localization round counter: each batch of engagements is
        # one round of the paper's multi-attacker sampling procedure.
        self._round = 0
        self._consecutive_detections = 0
        self._consecutive_clean = 0
        self._delivered_index = 0
        self._window_index = 0
        # Degraded-mode state: the sanitizer is built lazily (mesh size is
        # only known once a sample arrives), the last-window cycle detects
        # delivery gaps, and the containment epoch anchors the drain-aware
        # fresh/backlog split of the latency accounting.
        self._sanitizer: WindowSanitizer | None = None
        self._last_window_cycle: int | None = None
        self._containment_epoch: int | None = None
        self._last_probe_window: int | None = None
        # Adaptive-throttle (PI controller) state: the benign delivery
        # baseline is learned on un-engaged windows, the integral and the
        # steered limit only live while fences are up.
        self._baseline_rate: float | None = None
        self._throttle_integral = 0.0
        self._adaptive_limit: float | None = None

    # -- wiring ------------------------------------------------------------
    def attach(
        self,
        simulator: NoCSimulator,
        monitor: GlobalPerformanceMonitor | None = None,
        monitor_config: MonitorConfig | None = None,
    ) -> "DL2FenceGuard":
        """Wire the guard into a simulator's monitoring stream.

        Reuses ``monitor`` when given (it must already observe ``simulator``);
        otherwise creates and attaches a fresh
        :class:`GlobalPerformanceMonitor` with ``monitor_config``.
        """
        if monitor is None:
            monitor = GlobalPerformanceMonitor(monitor_config).attach(simulator)
        self.simulator = simulator
        self.monitor = monitor
        self.report.sample_period = monitor.config.sample_period
        # The guard is the one listener whose failure must abort the episode
        # (a defense silently detached from its stream is worse than a
        # crash); auxiliary listeners default to isolated dispatch.
        monitor.add_listener(self.on_sample, critical=True)
        return self

    # -- state --------------------------------------------------------------
    @property
    def engaged_nodes(self) -> list[int]:
        """Nodes currently under an active countermeasure."""
        return sorted(self._engaged)

    @property
    def is_engaged(self) -> bool:
        return bool(self._engaged)

    @property
    def localization_round(self) -> int:
        """Engagement rounds completed so far (0 before the first fence)."""
        return self._round

    # -- the closed loop -----------------------------------------------------
    def on_sample(self, sample: FrameSample, simulator: NoCSimulator) -> None:
        """Process one sampling window: detect, accumulate, localize, mitigate.

        The window's actionable attacker set is the union of the Table-Like
        Method's per-window localization and the nodes the cross-window
        evidence accumulator currently holds convicted.  A window counts as
        "acted on" when either the detector fires or the evidence convicts a
        not-yet-fenced node — the latter is what makes stealth, migrating
        and on-route attacks actionable even though no single window trips
        the detector.  Convictions on already-fenced nodes deliberately do
        *not* keep the loop in attack mode: a fenced attacker leaves no
        fresh evidence, so its stale suspicion must not block the release
        probing the hysteresis machinery schedules.
        """
        engaged_at_start = bool(self._engaged)
        period = self.report.sample_period
        if BUS.active:
            # Coordinates for every event this window emits, including from
            # nested emitters (evidence accumulator, sanitizer).  The episode
            # label is the batched backend's lane index; solo simulators
            # default to 0 unless the harness stamps one.
            BUS.set_context(
                episode=getattr(simulator, "lane_index", 0),
                cycle=sample.cycle,
                window=self._window_index,
            )
            if not self.report.event_counts:
                self.report.event_counts = {
                    "engagements": 0,
                    "releases": 0,
                    "convictions": 0,
                    "clamps": 0,
                    "detour_discounts": 0,
                }

        # Keep localization topology-aware: point the pipeline's TLM/VCE at
        # the live (possibly fault-degraded) routing function every window,
        # so a mid-episode link death re-anchors the reverse deduction at
        # the next sample.  ``None`` on a pristine mesh — a no-op.
        sync_provider = getattr(self.fence, "set_route_provider", None)
        if sync_provider is not None:
            sync_provider(
                getattr(getattr(simulator, "network", None), "route_provider", None)
            )

        # Detour carriers of an active data-plane fault: trustworthy
        # telemetry, but congestion partly caused by the reroute itself.
        detour: frozenset[int] = frozenset()
        corroborated: frozenset[int] = frozenset()
        if self.degraded_config is not None:
            metadata = getattr(sample, "metadata", None) or {}
            detour = frozenset(int(node) for node in metadata.get(DETOUR_KEY, ()))
            # Injection-corroborated carriers: the reroute can shift what a
            # router forwards, never what its PE injects.  A carrier whose
            # LOCAL-port activity runs well above the mesh-wide median this
            # window is injecting a flood of its own, and any accusation
            # against it keeps full evidence weight — per-window, so one
            # benign burst never latches an innocent carrier out of the
            # protections.
            if detour:
                local = metadata.get(LOCAL_BOC_KEY)
                if local:
                    activity = np.asarray(local, dtype=np.float64)
                    bar = self.degraded_config.detour_injection_factor * max(
                        float(np.median(activity)), 1.0
                    )
                    corroborated = frozenset(
                        node for node in detour if activity[node] >= bar
                    )
                    detour -= corroborated

        # -- degraded-mode preprocessing ----------------------------------
        # Scrub the window against fault signatures (stuck counters,
        # implausible cells, declared-silent nodes).  Scripted harnesses
        # push frame-less stub samples; those bypass sanitisation.
        unobservable: frozenset[int] = frozenset()
        if self.degraded_config is not None and getattr(sample, "vco", None) is not None:
            if self._sanitizer is None:
                self._sanitizer = WindowSanitizer(
                    simulator.topology,
                    self.degraded_config,
                    sample_period=period or None,
                )
            sample, health = self._sanitizer.sanitize(sample)
            unobservable = health.unobservable
            if BUS.active and health.imputed_cells:
                self._count_event("clamps", health.imputed_cells)
        # Delivery-gap and clock-staleness bookkeeping.  A gap (dropped
        # windows) charges the evidence accumulator the decay it missed; a
        # stale capture clock (delayed windows arriving in a burst) blocks
        # release decisions below — stale windows testify about the past,
        # and fences are only lifted on *current* cleanliness.
        missed_windows = 0
        if period > 0 and self._last_window_cycle is not None:
            elapsed = int(round((sample.cycle - self._last_window_cycle) / period))
            missed_windows = max(0, elapsed - 1)
        if self._last_window_cycle is None or sample.cycle > self._last_window_cycle:
            self._last_window_cycle = sample.cycle
        fresh_clock = True
        if period > 0 and self.degraded_config is not None:
            lag = simulator.cycle - sample.cycle
            fresh_clock = lag <= self.degraded_config.stale_window_tolerance * period

        result = self.fence.process_sample(
            sample, force_localization=self.force_localization
        )
        window_stats = self._window_latency(simulator)

        convicted: list[int] = []
        if self.evidence_config is not None:
            if self.evidence is None:
                self.evidence = EvidenceAccumulator(
                    simulator.topology.num_nodes, self.evidence_config
                )
            if missed_windows:
                cap = (
                    self.degraded_config.max_gap_decay
                    if self.degraded_config is not None
                    else 8
                )
                self.evidence.decay_gap(min(missed_windows, cap))
            weight = self.evidence.window_weight(
                result.detected,
                result.detection_probability,
                benign_calibration=getattr(
                    getattr(self.fence, "detector", None), "benign_calibration", None
                ),
            )
            if not result.detected and weight > 0.0 and not self.force_localization:
                # Sub-threshold window: run segmentation anyway so weak
                # evidence (partial routes, frontier candidates) enters the
                # accumulator instead of being discarded with the window.
                # The detection outcome is handed back in, so the detector
                # forward pass is not repeated.
                result = self.fence.process_sample(
                    sample,
                    force_localization=True,
                    detection=(result.detected, result.detection_probability),
                )
            observed = result
            if unobservable:
                # Hard invariant: a node with no trustworthy telemetry this
                # window contributes no affirmative evidence — a merely
                # silent or stuck node can decay out of suspicion but never
                # accrue into it.
                observed = dataclasses.replace(
                    result,
                    attackers=[n for n in result.attackers if n not in unobservable],
                    frontier=[n for n in result.frontier if n not in unobservable],
                )
            discounts = (
                dict.fromkeys(detour, self.degraded_config.detour_discount)
                if detour and self.degraded_config is not None
                else None
            )
            if BUS.active and (discounts or corroborated):
                BUS.emit(
                    "detour_discount",
                    nodes=detour,
                    discount=(
                        self.degraded_config.detour_discount if discounts else 1.0
                    ),
                    promoted=corroborated,
                )
                if discounts:
                    self._count_event("detour_discounts", len(detour))
            fresh = self.evidence.observe(
                observed,
                weight,
                discounts=discounts,
                promotions=corroborated or None,
            )
            if fresh:
                self.report.events.append(
                    DefenseEvent(
                        cycle=sample.cycle,
                        kind="convicted",
                        nodes=tuple(sorted(fresh)),
                        detail="cross-window evidence",
                    )
                )
                if BUS.active:
                    self._count_event("convictions", len(fresh))
                if METRICS.active:
                    guard_events_counter().inc(len(fresh), kind="convicted")
            convicted = self.evidence.convicted_nodes()

        acted = result.detected or any(
            node not in self._engaged and node not in unobservable
            for node in convicted
        )
        flagged = sorted(set(result.attackers).union(convicted) - unobservable)
        # Detour carriers never engage on raw per-window flag streaks: a
        # reroute shifts legitimate congestion onto their row/column, so
        # per-frame naming is expected, not incriminating.  Only a full
        # cross-window conviction — which discounted evidence cannot
        # deliver unless the carrier's own injection telemetry lifts the
        # discount — makes them streak-eligible.  (``detour`` here already
        # excludes injection-corroborated carriers.)
        convicted_set = set(convicted)
        streak_eligible = [
            node for node in flagged if node not in detour or node in convicted_set
        ]
        self._update_shadow_pressure(set(flagged))
        self._update_adaptive_throttle(window_stats, simulator)

        if acted:
            if self._consecutive_detections == 0:
                detail = f"p={result.detection_probability:.2f}"
                if not result.detected:
                    detail += " evidence"
                self.report.events.append(
                    DefenseEvent(cycle=sample.cycle, kind="detected", detail=detail)
                )
                if BUS.active or METRICS.active:
                    self._trace(
                        "detected",
                        probability=float(result.detection_probability),
                        via="detector" if result.detected else "evidence",
                    )
            self._consecutive_detections += 1
            self._consecutive_clean = 0
        else:
            self._consecutive_clean += 1
            self._consecutive_detections = 0
            if not self._engaged:
                # Before anything engages, a clean window breaks every flag
                # streak: engagement requires N *consecutive* detections.
                # While mitigation is active, clean windows are expected (the
                # fence suppresses the evidence), so streaks survive there.
                self._flag_streaks.clear()

        if acted:
            self._engage_flagged(streak_eligible, sample.cycle, simulator)
            self._rollback_stale(
                set(flagged), sample.cycle, simulator, fresh_clock=fresh_clock
            )
        elif self._engaged and fresh_clock:
            self._release_ready(sample.cycle, simulator)

        if engaged_at_start:
            phase = "mitigated"
        elif acted:
            phase = "attack"
        else:
            phase = "benign"
        self.report.windows.append(
            WindowRecord(
                index=self._window_index,
                cycle=sample.cycle,
                detected=acted,
                probability=result.detection_probability,
                phase=phase,
                victims=tuple(result.victims),
                attackers=tuple(result.attackers),
                restricted=tuple(sorted(self._engaged)),
                benign_latency=window_stats.latency,
                benign_delivered=window_stats.benign_delivered,
                malicious_delivered=window_stats.malicious_delivered,
                suspected=tuple(convicted),
                unobservable=tuple(sorted(unobservable)),
                benign_fresh_latency=window_stats.fresh_latency,
                benign_fresh_delivered=window_stats.fresh_delivered,
                benign_backlog_delivered=window_stats.backlog_delivered,
            )
        )
        if BUS.active or METRICS.active:
            self._trace(
                "window",
                phase=phase,
                detected=acted,
                probability=float(result.detection_probability),
                attackers=sorted(result.attackers),
                suspected=list(convicted),
                engaged=sorted(self._engaged),
                unobservable=unobservable,
            )
        self._window_index += 1

    # -- mitigation mechanics ---------------------------------------------------
    def _engage_flagged(
        self, attackers: list[int], cycle: int, simulator: NoCSimulator
    ) -> None:
        """Apply the countermeasure to persistently localized attackers.

        A node engages only once it has been flagged in ``engage_after``
        consecutive detection windows — per-node hysteresis on top of the
        detection itself, which keeps one-off localization noise from
        throttling innocents.  When the policy caps simultaneously engaged
        nodes, the most persistently flagged candidates are fenced first and
        the rest wait for the next localization round — the superset-recovery
        safeguard for a Table-Like Method that over-approximates.
        """
        flagged = set(attackers)
        for node in list(self._flag_streaks):
            if node not in flagged:
                del self._flag_streaks[node]
        eligible: list[tuple[int, int]] = []
        for node in attackers:
            if node in self._engaged:
                continue
            streak = self._flag_streaks.get(node, 0) + 1
            self._flag_streaks[node] = streak
            if streak >= self.policy.engage_after:
                eligible.append((node, streak))
        budget = len(eligible)
        if self.policy.max_engaged_nodes is not None:
            budget = max(0, self.policy.max_engaged_nodes - len(self._engaged))
        # Longest streak first: the most consistently localized candidate is
        # the "loudest" attacker of this round.
        eligible.sort(key=lambda item: (-item[1], item[0]))
        newly_engaged = []
        limit = self._current_limit()
        for node, _streak in eligible[:budget]:
            previous = simulator.network.injection_limit(node)
            simulator.throttle_node(node, limit)
            if self.policy.flush_queue:
                simulator.network.flush_source_queue(node)
            self._engage_counts[node] = self._engage_counts.get(node, 0) + 1
            self._engaged[node] = _EngagedNode(
                node=node,
                previous_limit=previous,
                engaged_cycle=cycle,
                # Seed the shadow counter from the suspicion the node built
                # in the open: the loudest conviction enters quarantine with
                # the most residual pressure to decay off.
                shadow_pressure=(
                    float(self.evidence.suspicion_of(node))
                    if self.evidence is not None
                    else 1.0
                ),
            )
            newly_engaged.append(node)
        if newly_engaged:
            if self._containment_epoch is None:
                # Anchor of the drain-aware latency split: benign packets
                # created before this cycle experienced the unmitigated
                # attack and drain as backlog; packets created after it
                # measure the fenced network itself.
                self._containment_epoch = cycle
            self._round += 1
            # A new localization round just opened: the attack is still
            # surfacing attackers, and a fenced attacker is indistinguishable
            # from a false positive (no evidence either way).  Restart the
            # stale clocks of every held node so the round churn cannot roll
            # back attacker k right as attacker k+1 engages — the whack-a-mole
            # failure of multi-source floods.  Once rounds stop opening, the
            # stale clocks run again and innocents release as before.
            for state in self._engaged.values():
                state.windows_since_flagged = 0
            self.report.events.append(
                DefenseEvent(
                    cycle=cycle,
                    kind="engaged",
                    nodes=tuple(sorted(newly_engaged)),
                    detail=f"limit={limit:g}",
                    round=self._round,
                )
            )
            if BUS.active or METRICS.active:
                self._trace(
                    "engaged",
                    nodes=newly_engaged,
                    limit=float(limit),
                    round=self._round,
                )
                if BUS.active:
                    self._count_event("engagements", len(newly_engaged))

    def _rollback_stale(
        self,
        flagged: set[int],
        cycle: int,
        simulator: NoCSimulator,
        fresh_clock: bool = True,
    ) -> None:
        """Release engaged nodes the localizer has stopped flagging.

        The per-node threshold grows with the node's engagement count: a
        fenced attacker looks exactly like a false positive (no congestion
        evidence), so a node that already bounced through a release probe is
        held longer before the next one.  Stale-clocked windows (delayed
        delivery) re-flag as usual but never advance the rollback clocks:
        releases are only earned on current observations.
        """
        rolled_back = []
        for node, state in list(self._engaged.items()):
            if node in flagged:
                state.windows_since_flagged = 0
                continue
            if not fresh_clock:
                continue
            state.windows_since_flagged += 1
            threshold = self.policy.stale_threshold(self._engage_counts.get(node, 1))
            if state.windows_since_flagged >= threshold:
                self._release_node(node, simulator)
                rolled_back.append(node)
        if rolled_back:
            self.report.events.append(
                DefenseEvent(
                    cycle=cycle,
                    kind="rolled_back",
                    nodes=tuple(rolled_back),
                    detail="no longer localized",
                )
            )
            if BUS.active or METRICS.active:
                self._trace(
                    "rolled_back",
                    nodes=rolled_back,
                    remaining=len(self._engaged),
                )
                if BUS.active:
                    self._count_event("releases", len(rolled_back))
            if not self._engaged:
                # The rollback lifted the last restriction: record a full
                # release so the report's release_cycle reflects reality.
                self.report.events.append(
                    DefenseEvent(
                        cycle=cycle,
                        kind="released",
                        nodes=tuple(rolled_back),
                        detail="all restrictions rolled back",
                    )
                )
                if BUS.active or METRICS.active:
                    self._trace("released", nodes=rolled_back, remaining=0)

    def _release_ready(self, cycle: int, simulator: NoCSimulator) -> None:
        """Release ONE engaged node whose clean-window hold has expired.

        Per-node release state: each node's required clean streak is scaled
        by the policy's re-engage backoff, so first offenders release after
        ``release_after`` clean windows exactly as before, while oscillating
        nodes wait exponentially longer.

        Releases are **staggered, one fence at a time**: a quarantined
        attacker leaves no evidence, so every release is a probe, and
        releasing all ready nodes at once would restart a distributed flood
        in a single window and forfeit containment.  The least re-engaged
        node goes first (most likely an innocent), ties broken by the
        lowest shadow-pressure estimate — the node whose residual pressure
        behind the fence has decayed furthest is the safest probe — and the
        policy's
        ``release_probe_spacing`` leaves clean windows between consecutive
        probes so a released attacker's congestion has time to rebuild and
        break the streak before the next fence lifts.
        """
        ready = [
            node
            for node in sorted(self._engaged)
            if self._consecutive_clean
            >= self.policy.release_threshold(self._engage_counts.get(node, 1))
        ]
        if not ready:
            return
        if (
            self._last_probe_window is not None
            and self._window_index - self._last_probe_window
            < self.policy.release_probe_spacing
        ):
            return
        probe = min(
            ready,
            key=lambda node: (
                self._engage_counts.get(node, 1),
                self._engaged[node].shadow_pressure,
                node,
            ),
        )
        self._release_node(probe, simulator)
        self._last_probe_window = self._window_index
        if not self._engaged:
            self._flag_streaks.clear()
        detail = f"{self._consecutive_clean} clean windows"
        if self._engaged:
            detail += f"; staggered probe, {len(self._engaged)} still fenced"
        self.report.events.append(
            DefenseEvent(
                cycle=cycle,
                kind="released",
                nodes=(probe,),
                detail=detail,
            )
        )
        if BUS.active or METRICS.active:
            self._trace(
                "released",
                nodes=(probe,),
                clean_windows=self._consecutive_clean,
                remaining=len(self._engaged),
            )
            if BUS.active:
                self._count_event("releases", 1)

    def _release_node(self, node: int, simulator: NoCSimulator) -> None:
        state = self._engaged.pop(node)
        # A released node must rebuild a full engage_after streak before it
        # can be fenced again — without this, a streak surviving a partial
        # release would let one noisy localization instantly re-engage it.
        self._flag_streaks.pop(node, None)
        if self.evidence is not None:
            # The release is a probe: whatever suspicion the node retained
            # while fenced is stale (a fenced flood leaves no signature), so
            # re-conviction must come from fresh post-release evidence.
            self.evidence.reset_node(node)
        if self.policy.flush_queue:
            # Restart the interface cleanly: the backlog accumulated while
            # fenced would otherwise pour out the moment the limit lifts.
            simulator.network.flush_source_queue(node)
        simulator.throttle_node(node, state.previous_limit)
        if not self._engaged:
            self._containment_epoch = None
            # The PI controller's error history belongs to the episode that
            # just closed; the next engagement starts from the base factor.
            self._throttle_integral = 0.0
            self._adaptive_limit = None

    # -- adaptive throttle & shadow counters ----------------------------------
    def _current_limit(self) -> float:
        """Injection limit to apply at the next engagement.

        The policy's static limit, unless the adaptive throttle has steered
        one (throttle action only — quarantine is absolute by definition).
        """
        if (
            self.policy.adaptive_throttle
            and self.policy.action == "throttle"
            and self._adaptive_limit is not None
        ):
            return self._adaptive_limit
        return self.policy.injection_limit

    def _update_adaptive_throttle(
        self, stats: "_WindowStats", simulator: NoCSimulator
    ) -> None:
        """One PI step of the adaptive throttle; re-applies the steered limit.

        Un-engaged windows learn the benign delivery baseline (EWMA of
        benign packets delivered per window).  Engaged windows measure the
        *fresh* benign delivery — packets created under the fence, the
        drain-aware recovery signal — against that baseline and steer the
        limit: under-recovery (error > 0) tightens it below
        ``throttle_factor``, sustained full recovery relaxes it above, so
        a mis-fenced innocent wins its bandwidth back without a release.
        """
        if not self.policy.adaptive_throttle or self.policy.action != "throttle":
            return
        if not self._engaged:
            rate = float(stats.benign_delivered)
            if self._baseline_rate is None:
                self._baseline_rate = rate
            else:
                decay = self._BASELINE_DECAY
                self._baseline_rate = decay * self._baseline_rate + (1.0 - decay) * rate
            return
        baseline = self._baseline_rate
        if not baseline:
            return
        # Cap the ratio: a backlog draining out can briefly over-deliver,
        # and one such burst must not slam the integral.
        recovery = min(float(stats.fresh_delivered) / baseline, 2.0)
        error = 1.0 - recovery
        cap = self._ADAPTIVE_INTEGRAL_CAP
        self._throttle_integral = float(
            np.clip(self._throttle_integral + error, -cap, cap)
        )
        base = self.policy.throttle_factor
        limit = base * (
            1.0
            - self._ADAPTIVE_KP * error
            - self._ADAPTIVE_KI * self._throttle_integral
        )
        limit = float(
            np.clip(
                limit,
                self._ADAPTIVE_MIN_SCALE * base,
                min(self._ADAPTIVE_MAX_SCALE * base, 0.95),
            )
        )
        self._adaptive_limit = limit
        for node in self._engaged:
            simulator.throttle_node(node, limit)

    def _update_shadow_pressure(self, flagged: set[int]) -> None:
        """Cool every engaged node's shadow counter; re-heat re-flagged ones.

        Runs every window (detected or clean): pressure is an estimate of
        what the fence is currently holding back, and quiet windows are the
        only evidence a quarantined source has actually stopped pushing.
        """
        for node, state in self._engaged.items():
            state.shadow_pressure *= self._SHADOW_DECAY
            if node in flagged:
                state.shadow_pressure += 1.0

    # -- observability ---------------------------------------------------------
    def _trace(self, kind: str, **fields) -> None:
        """Mirror one decision into the trace bus and the metrics registry.

        Call sites gate on ``BUS.active or METRICS.active`` so a fully
        disabled observability stack never reaches this method (the
        zero-cost-when-off contract); here each backend re-checks its own
        switch, since either can be enabled alone.
        """
        BUS.emit(kind, **fields)
        if METRICS.active:
            guard_events_counter().inc(kind=kind)

    def _count_event(self, key: str, amount: int = 1) -> None:
        """Bump the report's deterministic event-count summary (tracing on)."""
        counts = self.report.event_counts
        counts[key] = counts.get(key, 0) + amount

    # -- measurement ----------------------------------------------------------
    def _window_latency(self, simulator: NoCSimulator) -> "_WindowStats":
        """Benign latency and delivery counts since the last window.

        Alongside the plain benign mean, delivered benign packets are split
        at the containment epoch (the first engagement of the current
        episode) into **backlog** — created before the fence went up, so
        their latency is attack damage draining out — and **fresh** —
        created under the fence, measuring the quality of the fenced
        network itself.  Before any engagement everything counts as fresh.
        """
        delivered = simulator.stats.delivered
        new = delivered[self._delivered_index :]
        self._delivered_index = len(delivered)
        benign = [p for p in new if not p.is_malicious]
        malicious_count = len(new) - len(benign)
        latencies = [p.total_latency() for p in benign]
        mean = float(np.mean(latencies)) if latencies else math.nan
        epoch = self._containment_epoch
        if epoch is None:
            fresh_latencies = latencies
        else:
            fresh_latencies = [
                p.total_latency() for p in benign if p.created_cycle >= epoch
            ]
        fresh_mean = float(np.mean(fresh_latencies)) if fresh_latencies else math.nan
        return _WindowStats(
            latency=mean,
            benign_delivered=len(benign),
            malicious_delivered=malicious_count,
            fresh_latency=fresh_mean,
            fresh_delivered=len(fresh_latencies),
            backlog_delivered=len(benign) - len(fresh_latencies),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DL2FenceGuard(policy={self.policy.name}, "
            f"engaged={self.engaged_nodes}, windows={self._window_index})"
        )
