"""Degraded-mode window sanitisation: self-healing telemetry for the guard.

The guard's detection/localization pipeline implicitly trusts every monitor
window.  :class:`WindowSanitizer` removes that assumption: before a window
reaches the pipeline it is scrubbed against the fault signatures of
:mod:`repro.faults.monitor` —

* **declared-silent nodes** — the collection layer annotates windows with
  nodes whose monitor stopped reporting (``metadata["unobservable_nodes"]``,
  a missing report being locally detectable); their zeroed cells are taken
  at face value and the node is marked unobservable;
* **stuck counters** — a node whose *entire* 8-cell signature (VCO + BOC,
  four directions) is bit-identical across ``stuck_after`` consecutive
  delivered windows while non-zero is declared stuck: its cells are masked
  to zero and the node marked unobservable.  The raw stream keeps being
  watched, so the moment real values flow again the node heals and rejoins
  the observable set;
* **implausible cells** — VCO is a ratio in [0, 1] and BOC is bounded by
  buffer operations per sampling window, so any cell beyond those physical
  ceilings (times ``ceiling_slack``) is corruption, not congestion; the
  cell is imputed from the previous sanitized window (0 when there is
  none).  Clamping is *physics*-based rather than history-based on purpose:
  a genuine flood can legitimately multiply a cell between two windows, and
  must never be clamped away.

The sanitizer returns a :class:`WindowHealth` next to the scrubbed sample;
the guard folds ``health.unobservable`` into its hard invariant — a node
that is currently unobservable contributes no evidence, accrues no flag
streak, and is never newly fenced ("no conviction without fresh affirmative
evidence": merely-silent or stuck nodes stay free).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.base import clone_sample, node_port_cells
from repro.faults.monitor import DETOUR_KEY, UNOBSERVABLE_KEY
from repro.monitor.features import FeatureKind
from repro.monitor.frames import FrameSample
from repro.noc.topology import Direction, MeshTopology
from repro.obs.bus import BUS

__all__ = ["DegradedModeConfig", "WindowHealth", "WindowSanitizer"]


@dataclass(frozen=True)
class DegradedModeConfig:
    """Knobs of the guard's degraded-mode window sanitisation."""

    #: Consecutive delivered windows a node's full 8-cell signature must
    #: repeat bit-identically (while non-zero) before it is declared stuck.
    stuck_after: int = 3
    #: Physical ceiling of a VCO cell (occupied / total VCs — a ratio).
    vco_ceiling: float = 1.0
    #: Buffer operations per cycle per port upper bound; the BOC ceiling of
    #: a window is this rate times the sampling period.
    boc_rate_ceiling: float = 4.0
    #: Multiplier on the ceilings before a cell is ruled implausible.
    ceiling_slack: float = 1.5
    #: Windows of capture-clock lag (relative to the simulator clock) a
    #: window may carry before the guard treats it as stale; stale windows
    #: still deliver evidence and may engage, but never drive release
    #: probes — a burst of delayed windows describes the past, and lifting
    #: a fence on past cleanliness hands a current attacker its bandwidth
    #: back.
    stale_window_tolerance: int = 1
    #: Cap on the extra evidence-decay steps charged for one delivery gap
    #: (missed windows cool suspicion like observed-clean windows would,
    #: but a pathological outage must not zero the accumulator in one hit).
    max_gap_decay: int = 8
    #: Evidence multiplier for **detour carriers** — nodes the data plane
    #: rerouted traffic onto after a link/router death (the collection layer
    #: names them in ``metadata["detour_nodes"]``).  Reroute-shifted
    #: backpressure makes the TLM deduce phantom attackers on the detour
    #: column with naming trajectories as dense as a real weak colluder's —
    #: no static weight separates the two — so all evidence against a
    #: carrier (direct naming and frontier) is scaled by this factor, and
    #: carriers never engage on raw flag streaks, *unless* the carrier's
    #: own LOCAL-port telemetry corroborates the accusation (see
    #: :attr:`detour_injection_factor`).  ``1.0`` disables the discount.
    detour_discount: float = 0.5
    #: LOCAL-port injection level — as a multiple of the mesh-wide median —
    #: at which a detour carrier's telemetry *corroborates* an accusation
    #: and the window's evidence keeps full weight (discount and streak
    #: gate both waived for that window).  The LOCAL input port only holds
    #: a node's own injected flits, so a carrier that merely forwards
    #: rerouted traffic sits at the benign median while a colluder flooding
    #: from the detour column runs several multiples above it; the reroute
    #: can shift what a router *forwards*, never what its PE *injects*.
    #: Per-window and self-calibrating (the median tracks the live offered
    #: load), so it holds across mesh sizes and benchmarks.
    detour_injection_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.stuck_after < 2:
            raise ValueError("stuck_after must be >= 2")
        if self.vco_ceiling <= 0.0:
            raise ValueError("vco_ceiling must be positive")
        if self.boc_rate_ceiling <= 0.0:
            raise ValueError("boc_rate_ceiling must be positive")
        if self.ceiling_slack < 1.0:
            raise ValueError("ceiling_slack must be >= 1.0")
        if self.stale_window_tolerance < 0:
            raise ValueError("stale_window_tolerance must be >= 0")
        if self.max_gap_decay < 0:
            raise ValueError("max_gap_decay must be >= 0")
        if not 0.0 < self.detour_discount <= 1.0:
            raise ValueError("detour_discount must be in (0, 1]")
        if self.detour_injection_factor < 1.0:
            raise ValueError("detour_injection_factor must be >= 1.0")


@dataclass
class WindowHealth:
    """What the sanitizer found (and fixed) in one delivered window."""

    #: Nodes the collection layer itself declared unobservable.
    declared_silent: frozenset
    #: Nodes currently held stuck by the signature detector.
    stuck: frozenset
    #: Cells imputed by the plausibility clamp this window.
    imputed_cells: int
    #: Nodes absorbing rerouted traffic of an active data-plane fault
    #: (``metadata["detour_nodes"]``).  Their telemetry is *trustworthy* —
    #: they are not unobservable — but its congestion content is partly
    #: infrastructure-caused, so the guard discounts evidence against them.
    detour_carriers: frozenset = frozenset()

    @property
    def unobservable(self) -> frozenset:
        """Nodes with no trustworthy telemetry this window."""
        return self.declared_silent | self.stuck

    @property
    def degraded(self) -> bool:
        """Whether the *telemetry* of this window was degraded.

        Detour carriers deliberately do not count: a rerouted data plane
        delivers pristine telemetry about a degraded mesh.
        """
        return bool(self.unobservable) or self.imputed_cells > 0


class WindowSanitizer:
    """Stateful per-episode scrubber for the guard's window stream."""

    def __init__(
        self,
        topology: MeshTopology,
        config: DegradedModeConfig | None = None,
        sample_period: int | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or DegradedModeConfig()
        self.sample_period = sample_period
        self._cells = [
            node_port_cells(topology, node) for node in range(topology.num_nodes)
        ]
        self._streaks = np.zeros(topology.num_nodes, dtype=np.int64)
        self._stuck: set[int] = set()
        #: Previous delivered raw (clamped, unmasked) signature per node.
        self._previous: list[tuple | None] = [None] * topology.num_nodes
        #: Previous sanitized frames, for corrupted-cell imputation.
        self._last_frames: dict[tuple, np.ndarray] = {}

    # -- plausibility --------------------------------------------------------
    def _ceiling(self, kind: FeatureKind) -> float:
        if kind is FeatureKind.VCO:
            return self.config.vco_ceiling * self.config.ceiling_slack
        period = self.sample_period or 0
        if period <= 0:
            return float("inf")
        return self.config.boc_rate_ceiling * period * self.config.ceiling_slack

    # -- the scrub -----------------------------------------------------------
    def sanitize(self, sample: FrameSample) -> tuple[FrameSample, WindowHealth]:
        """Scrub one delivered window; returns (clean sample, health)."""
        declared = frozenset(
            int(node) for node in sample.metadata.get(UNOBSERVABLE_KEY, ())
        )
        detour = frozenset(
            int(node) for node in sample.metadata.get(DETOUR_KEY, ())
        )
        sample = clone_sample(sample)
        imputed = 0
        for frame_set in (sample.vco, sample.boc):
            ceiling = self._ceiling(frame_set.kind)
            if not np.isfinite(ceiling):
                continue
            for direction in Direction.cardinal():
                values = frame_set.frames[direction].values
                mask = values > ceiling
                if not mask.any():
                    continue
                previous = self._last_frames.get((frame_set.kind, direction))
                values[mask] = previous[mask] if previous is not None else 0.0
                imputed += int(mask.sum())

        # Stuck-signature detection on the clamped (pre-mask) values: the
        # raw stream keeps being compared even while a node is held stuck,
        # which is what lets a healed counter rejoin the observable set.
        for node in range(self.topology.num_nodes):
            signature = tuple(
                float(
                    (sample.vco if kind is FeatureKind.VCO else sample.boc)
                    .frames[direction]
                    .values[row, col]
                )
                for direction, row, col in self._cells[node]
                for kind in (FeatureKind.VCO, FeatureKind.BOC)
            )
            previous = self._previous[node]
            self._previous[node] = signature
            if (
                previous is not None
                and signature == previous
                and any(value != 0.0 for value in signature)
            ):
                self._streaks[node] += 1
            else:
                self._streaks[node] = 0
                self._stuck.discard(node)
            if self._streaks[node] >= self.config.stuck_after - 1:
                self._stuck.add(node)

        # Mask the cells of every stuck node: frozen counters are noise the
        # localizer must not see (and must not convict on).
        for node in self._stuck:
            for direction, row, col in self._cells[node]:
                sample.vco.frames[direction].values[row, col] = 0.0
                sample.boc.frames[direction].values[row, col] = 0.0

        for frame_set in (sample.vco, sample.boc):
            for direction in Direction.cardinal():
                self._last_frames[(frame_set.kind, direction)] = (
                    frame_set.frames[direction].values.copy()
                )

        health = WindowHealth(
            declared_silent=declared,
            stuck=frozenset(self._stuck),
            imputed_cells=imputed,
            detour_carriers=detour,
        )
        if BUS.active and health.degraded:
            BUS.emit(
                "window_sanitized",
                imputed_cells=imputed,
                declared_silent=health.declared_silent,
                stuck=health.stuck,
            )
        return sample, health
