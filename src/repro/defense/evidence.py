"""Cross-window evidence fusion: per-node EWMA suspicion with hysteresis.

A single sampling window convicts only the attacks that are loud *in that
window*.  The refined variants of :mod:`repro.attacks` are built to never be
that loud: a pulsed flood averages its burst away, a ramping flood stays
under the detector's threshold for most of its climb, a migrating attacker
has moved on before a per-window streak completes, a distributed collusion
keeps every per-source signature weak, and an on-route attacker is
geometrically indistinguishable from a turning point while the louder flow
runs.  What all of them cannot avoid is leaving *correlated* weak evidence
across windows — and that is what this module accumulates.

The :class:`EvidenceAccumulator` maintains one exponentially weighted
suspicion score per node.  Every window it decays all scores by
``decay`` and then adds weighted evidence from the window's localization
result:

* **TLM evidence** — nodes the Table-Like Method names as attackers
  (weight ``tlm_weight``);
* **frontier evidence** — TLM candidates discarded for falling *inside* the
  fused victim set (route turning points — or on-route attackers hiding as
  one).  Only credited when the window is under-localized (the estimated
  attacker count exceeds the named attackers), so a cleanly explained
  single-flow window never taxes its own turning point;
* window weight — ``1.0`` for detected windows; an undetected window with
  detection probability ``>= probability_floor`` still contributes,
  scaled by that probability.  This is the stealth-flood channel: windows
  individually below the detector's threshold accumulate until the source
  is convictable.

A node whose suspicion reaches ``conviction_threshold`` is *convicted* and
stays convicted until its score decays below ``release_threshold``
(hysteresis, so a score oscillating around the threshold cannot flap).  The
guard treats convicted nodes as localized attackers — and resets a node's
evidence when it releases the node's fence, so a release probe demands
fresh evidence rather than re-convicting on the stale residue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import LocalizationResult
from repro.obs.bus import BUS

__all__ = ["EvidenceConfig", "EvidenceAccumulator"]


@dataclass(frozen=True)
class EvidenceConfig:
    """Knobs of the cross-window evidence accumulator.

    The defaults encode two measured facts about the localization stream:

    * a **real** refined source is named by the TLM in near-consecutive
      runs — four consecutive evidence-bearing windows reach
      ``1 + d + d² + d³ ≈ 3.44`` and convict;
    * congestion **spillover** around a saturated victim makes the TLM
      deduce phantom attackers one hop upstream of backpressured benign
      ports, but their naming patterns are gappy — a 4-in-6 phantom
      trajectory plateaus near ``3.2``, just under the bar.

    The slow decay is what carries suspicion *across* a migrating
    attacker's silent dwells (eight windows of silence still retain ~43%
    of a position's score), which is exactly the memory a per-window
    localizer lacks.  Frontier (turning-point) evidence is deliberately
    corroborative only: its steady state ``0.3 / (1 - decay) = 3.0`` sits
    *below* the conviction threshold, so frontier evidence alone can never
    convict — it primes a node the TLM then confirms once the flow it
    hides behind is fenced.
    """

    #: Per-window EWMA retention of every suspicion score.
    decay: float = 0.9
    #: Suspicion at which a node is convicted (treated as a localized attacker).
    conviction_threshold: float = 3.4
    #: Suspicion below which an existing conviction is dropped (hysteresis).
    release_threshold: float = 0.75
    #: Evidence for a node the Table-Like Method names as an attacker.
    tlm_weight: float = 1.0
    #: Evidence for a discarded in-victim-set candidate (on-route suspect).
    frontier_weight: float = 0.3
    #: Undetected windows with detection probability >= the stealth floor
    #: carry full evidence weight (stealth channel).  The gate is binary
    #: rather than probability-scaled: resting detector probabilities vary
    #: wildly with mesh scale and training, but the TLM naming the *same
    #: node* four windows running is scale-invariant — localization
    #: consistency is the signal, the probability only qualifies the
    #: window.  For a *calibrated* detector the floor is
    #: ``benign_calibration + calibration_margin``: a detector resting at
    #: 0.35 on benign traffic (measured at 8x8) must not have its noise
    #: feed the long evidence memory, while one resting at 0.04 (measured
    #: at 16x16) should honour windows at 0.3.  Without calibration the
    #: floor defaults to the detection threshold itself — sub-threshold
    #: probabilities of a detector whose benign operating point was never
    #: measured are not trusted (lower it explicitly to opt in).
    probability_floor: float = 0.5
    #: Elevation over the detector's calibrated benign operating point
    #: (:attr:`repro.core.detector.DoSDetector.benign_calibration`) at which
    #: an undetected window becomes evidence-bearing.
    calibration_margin: float = 0.04

    def __post_init__(self) -> None:
        if not 0.0 < self.decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        if self.conviction_threshold <= 0.0:
            raise ValueError("conviction_threshold must be positive")
        if not 0.0 <= self.release_threshold < self.conviction_threshold:
            raise ValueError(
                "release_threshold must be in [0, conviction_threshold)"
            )
        if self.tlm_weight <= 0.0:
            raise ValueError("tlm_weight must be positive")
        if self.frontier_weight < 0.0:
            raise ValueError("frontier_weight must be non-negative")
        if not 0.0 <= self.probability_floor <= 1.0:
            raise ValueError("probability_floor must be in [0, 1]")
        if self.calibration_margin < 0.0:
            raise ValueError("calibration_margin must be non-negative")

    def stealth_floor(self, benign_calibration: float | None) -> float:
        """Effective evidence floor for a detector's calibrated resting point.

        A calibrated detector's measured benign operating point *replaces*
        the static floor rather than clamping it: a detector resting at
        0.04 (measured at 16x16) legitimately testifies at 0.15, while one
        resting at 0.35 (measured at 8x8) must stay silent until ~0.4.  The
        static ``probability_floor`` only covers uncalibrated pipelines,
        and its default (0.5, the detection threshold) disables the
        stealth channel for them entirely — an unmeasured benign operating
        point could sit above any lower constant.
        """
        if benign_calibration is None:
            return self.probability_floor
        return benign_calibration + self.calibration_margin


class EvidenceAccumulator:
    """Per-node EWMA suspicion over the localization stream of one episode."""

    def __init__(self, num_nodes: int, config: EvidenceConfig | None = None) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.config = config or EvidenceConfig()
        self.suspicion = np.zeros(num_nodes, dtype=np.float64)
        self._convicted: set[int] = set()

    # -- window weighting ----------------------------------------------------
    def window_weight(
        self,
        detected: bool,
        probability: float,
        benign_calibration: float | None = None,
    ) -> float:
        """Evidence weight of one window (0.0 = the window contributes nothing).

        Windows hovering under the detector's bar but above the stealth
        floor carry *full* weight: the stealth floods this channel exists
        for sit just below the binary threshold by design, and what
        separates their source from noise is the TLM naming it window after
        window — so the probability gates the window, it does not scale the
        evidence.  ``benign_calibration`` lifts the floor above the
        detector's measured resting probability (see
        :meth:`EvidenceConfig.stealth_floor`).
        """
        if detected:
            return 1.0
        if probability >= self.config.stealth_floor(benign_calibration):
            return 1.0
        return 0.0

    # -- accumulation ---------------------------------------------------------
    def observe(
        self,
        result: LocalizationResult,
        weight: float,
        discounts: dict[int, float] | None = None,
        promotions: frozenset[int] | None = None,
    ) -> list[int]:
        """Fold one window's localization into the scores; returns new convictions.

        Every call decays all scores once (windows with no evidence still
        cool the accumulator down); ``weight`` scales this window's
        contributions.  ``discounts`` scales individual nodes'
        contributions on *both* channels (direct TLM naming and frontier) —
        the degraded guard passes the detour-carrier discount here for
        carriers whose own injection telemetry does not corroborate the
        accusation, and omits carriers it does corroborate (so a colluder
        squatting on a detour column still accrues full weight; see
        :class:`repro.defense.degraded.DegradedModeConfig`).

        ``promotions`` lifts individual nodes' *frontier* contributions to
        direct-naming weight, and past the under-localization gate.  A
        frontier candidate is a node the TLM traced abnormal flows through
        but discarded for sitting inside the fused victim set — ambiguous
        because its congestion could be forwarded rather than self-made.
        When independent telemetry resolves that ambiguity (a detour
        carrier whose LOCAL-port meter shows it injecting well above the
        mesh median), being traced *is* being named: reroute-shifted
        phantoms sharing the detour column otherwise both steal the direct
        namings a real colluder's conviction needs *and* fill the
        estimated attacker count, closing the ordinary frontier channel in
        exactly the windows the colluder is traced.
        """
        config = self.config
        self.suspicion *= config.decay
        if weight > 0.0:
            for node in result.attackers:
                contribution = config.tlm_weight * weight
                if discounts:
                    contribution *= discounts.get(node, 1.0)
                self.suspicion[node] += contribution
            # Under-localized windows spread frontier evidence: somewhere an
            # attacker exists the TLM could not name, and the discarded
            # in-victim-set candidates are where it can hide.
            under_localized = result.estimated_attacker_count > len(result.attackers)
            for node in result.frontier:
                promoted = bool(promotions) and node in promotions
                if not under_localized and not promoted:
                    continue
                base = config.tlm_weight if promoted else config.frontier_weight
                contribution = base * weight
                if discounts:
                    contribution *= discounts.get(node, 1.0)
                self.suspicion[node] += contribution
        fresh: list[int] = []
        for node in np.nonzero(self.suspicion >= config.conviction_threshold)[0]:
            node = int(node)
            if node not in self._convicted:
                self._convicted.add(node)
                fresh.append(node)
        lapsed = [
            n for n in self._convicted
            if self.suspicion[n] < config.release_threshold
        ]
        for node in lapsed:
            self._convicted.discard(node)
        if BUS.active:
            if fresh:
                BUS.emit("convicted", nodes=fresh)
            if lapsed:
                BUS.emit("conviction_lapsed", nodes=lapsed, reason="decay")
        return fresh

    def decay_gap(self, steps: int) -> None:
        """Extra decay for sampling windows lost in delivery.

        A dropped monitor window is evidence of nothing: the accumulator
        cools exactly as it would have over ``steps`` observed-but-empty
        windows, and convictions whose score sinks below the release
        threshold lapse.  This keeps suspicion half-life a function of
        *time*, not of how many windows happened to survive a lossy
        monitor channel.
        """
        if steps <= 0:
            return
        self.suspicion *= self.config.decay**steps
        lapsed = [
            n
            for n in self._convicted
            if self.suspicion[n] < self.config.release_threshold
        ]
        for node in lapsed:
            self._convicted.discard(node)
        if BUS.active and lapsed:
            BUS.emit("conviction_lapsed", nodes=lapsed, reason="gap", steps=steps)

    def reset_node(self, node: int) -> None:
        """Clear a node's evidence (called when the guard releases its fence).

        A fenced attacker leaves no congestion signature, so whatever
        suspicion remains at release time is stale by construction; the
        release probe must re-convict on fresh evidence or not at all.
        """
        self.suspicion[node] = 0.0
        self._convicted.discard(node)

    # -- views -----------------------------------------------------------------
    def convicted_nodes(self) -> list[int]:
        """Nodes currently held convicted by the hysteresis, sorted."""
        return sorted(self._convicted)

    def suspicion_of(self, node: int) -> float:
        return float(self.suspicion[node])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvidenceAccumulator(convicted={self.convicted_nodes()}, "
            f"max={float(self.suspicion.max()):.2f})"
        )
