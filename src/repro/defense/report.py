"""Defense timeline: per-window records, events and recovery metrics.

The :class:`DefenseReport` is the measurement product of a closed-loop run.
It records one :class:`WindowRecord` per sampling window (what the pipeline
decided, what was restricted, and the benign latency observed in that window)
plus discrete :class:`DefenseEvent` transitions (first detection, engagement,
rollback, release), and derives the headline metrics of a runtime defense:
detection latency, time-to-mitigation, benign latency before/during/after
engagement, and collateral damage to throttled-but-innocent nodes.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.defense.policy import MitigationPolicy

__all__ = ["DefenseEvent", "WindowRecord", "DefenseReport"]

#: Window phases, in the order a successful defended run traverses them.
PHASES = ("benign", "attack", "mitigated")


@dataclass(frozen=True)
class DefenseEvent:
    """A discrete state transition of the defense loop.

    ``round`` numbers the iterative localization round the event belongs to:
    each batch of engagements opens a new round, mirroring the paper's
    multi-attacker sampling rounds (quarantine the loudest attacker, keep
    sampling, and the next round's frames reveal the rest).
    """

    cycle: int
    kind: str  # "detected" | "engaged" | "rolled_back" | "released"
    nodes: tuple[int, ...] = ()
    detail: str = ""
    round: int = 0

    def describe(self) -> str:
        text = f"cycle {self.cycle:>7d}: {self.kind}"
        if self.nodes:
            text += f" nodes={list(self.nodes)}"
        if self.round:
            text += f" round={self.round}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass(frozen=True)
class WindowRecord:
    """Everything the guard observed and did in one sampling window."""

    index: int
    cycle: int
    detected: bool
    probability: float
    phase: str  # one of PHASES, judged at the start of the window
    victims: tuple[int, ...] = ()
    attackers: tuple[int, ...] = ()
    restricted: tuple[int, ...] = ()
    benign_latency: float = math.nan
    benign_delivered: int = 0
    malicious_delivered: int = 0
    #: Nodes the cross-window evidence accumulator held convicted this
    #: window (empty when the guard runs with evidence fusion disabled).
    suspected: tuple[int, ...] = ()
    #: Nodes with no trustworthy telemetry this window (declared-silent or
    #: stuck-counter; empty on a healthy stream or with degraded mode off).
    unobservable: tuple[int, ...] = ()
    #: Drain-aware split of the benign deliveries: *fresh* packets were
    #: created after the containment epoch (first engagement of the current
    #: episode) and measure the fenced network; *backlog* packets were
    #: created before it and merely drain attack damage.  Before any
    #: engagement every delivery is fresh.
    benign_fresh_latency: float = math.nan
    benign_fresh_delivered: int = 0
    benign_backlog_delivered: int = 0


@dataclass
class DefenseReport:
    """Timeline and aggregate metrics of one closed-loop defended run."""

    policy: MitigationPolicy
    sample_period: int = 0
    attack_start: int | None = None
    attack_end: int | None = None
    true_attackers: tuple[int, ...] = ()
    windows: list[WindowRecord] = field(default_factory=list)
    events: list[DefenseEvent] = field(default_factory=list)
    #: Deterministic decision-event tallies (engagements, releases,
    #: convictions, clamps, detour discounts), populated by the guard from
    #: the trace bus when tracing is active.  Empty on untraced runs; when
    #: populated, backend-identical — the counts are pure functions of the
    #: fingerprint-identical window stream.
    event_counts: dict[str, int] = field(default_factory=dict)

    # -- event accessors ----------------------------------------------------
    def _first_event_cycle(self, kind: str) -> int | None:
        for event in self.events:
            if event.kind == kind:
                return event.cycle
        return None

    @property
    def first_detection_cycle(self) -> int | None:
        """Cycle of the first window the detector flagged."""
        return self._first_event_cycle("detected")

    @property
    def engagement_cycle(self) -> int | None:
        """Cycle at which the first countermeasure engaged."""
        return self._first_event_cycle("engaged")

    @property
    def release_cycle(self) -> int | None:
        """Cycle of the final full rollback (None while still engaged).

        A re-engagement after a release invalidates the earlier release, so
        the scan stops at whichever of the two happened last.
        """
        for event in reversed(self.events):
            if event.kind == "engaged":
                return None
            if event.kind == "released":
                return event.cycle
        return None

    # -- headline latencies --------------------------------------------------
    @property
    def detection_latency(self) -> int | None:
        """Cycles from attack start to the first detection of *the attack*.

        Needs ``attack_start``.  Judged on per-window records rather than
        transition events: detections before the attack began are false
        positives and do not count, but a detection streak that started as a
        false positive and runs into the real attack still counts from its
        first window at or after ``attack_start``.
        """
        if self.attack_start is None:
            return None
        for window in self.windows:
            if window.detected and window.cycle >= self.attack_start:
                return window.cycle - self.attack_start
        return None

    @property
    def time_to_mitigation(self) -> int | None:
        """Cycles from attack start until a countermeasure is active.

        Needs ``attack_start``; judged on the first window at or after the
        attack began in which any node was restricted — including
        restrictions carried over from a pre-attack false positive that
        happen to already fence the attacker.
        """
        if self.attack_start is None:
            return None
        for window in self.windows:
            if window.restricted and window.cycle >= self.attack_start:
                return window.cycle - self.attack_start
        return None

    # -- per-attacker metrics (multi-attack) ----------------------------------
    def per_attacker_detection_latency(self) -> dict[int, int | None]:
        """Cycles from attack start until each true attacker is first localized.

        Needs ``attack_start`` and ``true_attackers``.  Judged on the
        per-window TLM output: an attacker only "surfaces" once the
        localizer names it, which for concurrent floods typically happens in
        a later sampling round, after louder attackers are fenced.
        """
        latencies: dict[int, int | None] = {}
        for attacker in self.true_attackers:
            latencies[attacker] = None
            if self.attack_start is None:
                continue
            for window in self.windows:
                if window.cycle >= self.attack_start and attacker in window.attackers:
                    latencies[attacker] = window.cycle - self.attack_start
                    break
        return latencies

    def per_attacker_time_to_mitigation(self) -> dict[int, int | None]:
        """Cycles from attack start until each true attacker is restricted."""
        latencies: dict[int, int | None] = {}
        for attacker in self.true_attackers:
            latencies[attacker] = None
            if self.attack_start is None:
                continue
            for window in self.windows:
                if window.cycle >= self.attack_start and attacker in window.restricted:
                    latencies[attacker] = window.cycle - self.attack_start
                    break
        return latencies

    @property
    def containment_cycle(self) -> int | None:
        """First window cycle with *every* true attacker under restriction."""
        truth = set(self.true_attackers)
        if not truth:
            return None
        for window in self.windows:
            if truth.issubset(window.restricted):
                return window.cycle
        return None

    @property
    def time_to_full_containment(self) -> int | None:
        """Cycles from attack start until all true attackers are fenced at once.

        The headline multi-attack metric: it absorbs every iterative
        localization round needed to surface quieter attackers after louder
        ones are fenced.  Needs ``attack_start`` and ``true_attackers``.
        """
        if self.attack_start is None or self.containment_cycle is None:
            return None
        return max(0, self.containment_cycle - self.attack_start)

    def engage_counts(self) -> dict[int, int]:
        """How many times each node was (re-)engaged over the episode."""
        counts: dict[int, int] = {}
        for event in self.events:
            if event.kind == "engaged":
                for node in event.nodes:
                    counts[node] = counts.get(node, 0) + 1
        return counts

    @property
    def reengagements(self) -> int:
        """Total release-and-re-engage transitions (oscillation measure)."""
        return sum(count - 1 for count in self.engage_counts().values())

    @property
    def localization_rounds(self) -> int:
        """Number of iterative engagement rounds the episode needed."""
        return max((e.round for e in self.events if e.kind == "engaged"), default=0)

    # -- node sets -----------------------------------------------------------
    @property
    def engaged_nodes(self) -> set[int]:
        """Every node a countermeasure was ever applied to."""
        nodes: set[int] = set()
        for event in self.events:
            if event.kind == "engaged":
                nodes.update(event.nodes)
        return nodes

    @property
    def collateral_nodes(self) -> set[int]:
        """Engaged nodes that are not true attackers (needs true_attackers)."""
        return self.engaged_nodes - set(self.true_attackers)

    @property
    def collateral_node_windows(self) -> int:
        """Total (innocent node x restricted window) count — damage exposure."""
        truth = set(self.true_attackers)
        return sum(
            sum(1 for node in window.restricted if node not in truth)
            for window in self.windows
        )

    # -- latency aggregation ---------------------------------------------------
    def phase_windows(self, phase: str) -> list[WindowRecord]:
        """All windows of one phase (``benign`` / ``attack`` / ``mitigated``)."""
        if phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}")
        return [window for window in self.windows if window.phase == phase]

    @staticmethod
    def _weighted_latency(windows: list[WindowRecord]) -> float:
        """Delivery-weighted mean benign latency over ``windows``."""
        total = 0.0
        count = 0
        for window in windows:
            if window.benign_delivered and not math.isnan(window.benign_latency):
                total += window.benign_latency * window.benign_delivered
                count += window.benign_delivered
        return total / count if count else math.nan

    def phase_latency(self, phase: str, skip: int = 0) -> float:
        """Delivery-weighted mean benign packet latency over a phase.

        ``skip`` drops the first windows of the phase — used for the
        post-mitigation metric, where the first window after engagement still
        drains packets queued during the attack.
        """
        return self._weighted_latency(self.phase_windows(phase)[skip:])

    def pre_attack_latency(self) -> float:
        """Benign latency before any attack activity.

        Only benign-phase windows *before* the first detection count; clean
        windows after a release can still be draining attack backlog and
        would bias the baseline.  When the ground-truth ``attack_start`` is
        known it bounds the cut-off too, so attack windows the detector
        missed cannot inflate the "before the attack" figure.
        """
        cutoffs = [
            cycle
            for cycle in (self.first_detection_cycle, self.attack_start)
            if cycle is not None
        ]
        cutoff = min(cutoffs) if cutoffs else None
        return self._weighted_latency(
            [
                window
                for window in self.phase_windows("benign")
                if cutoff is None or window.cycle < cutoff
            ]
        )

    def attack_latency(self) -> float:
        """Benign latency while the attack ran unmitigated."""
        return self.phase_latency("attack")

    def post_mitigation_latency(self, skip: int = 1) -> float:
        """Benign latency once the countermeasure is engaged and settled.

        When the ground-truth ``attack_end`` is known, only mitigated
        windows *during* the attack count — windows where the guard is still
        engaged after the attacker stopped would otherwise pad the metric
        with naturally attack-free traffic.
        """
        windows = self.phase_windows("mitigated")[skip:]
        if self.attack_end is not None:
            windows = [w for w in windows if w.cycle <= self.attack_end]
        return self._weighted_latency(windows)

    def recovery_ratio(self, baseline_latency: float, skip: int = 1) -> float:
        """Post-mitigation benign latency relative to a no-attack baseline."""
        post = self.post_mitigation_latency(skip=skip)
        if math.isnan(post) or baseline_latency <= 0.0:
            return math.nan
        return post / baseline_latency

    # -- drain-aware recovery --------------------------------------------------
    @staticmethod
    def _weighted_fresh_latency(windows: list[WindowRecord]) -> float:
        """Delivery-weighted mean over the *fresh* (post-epoch) deliveries."""
        total = 0.0
        count = 0
        for window in windows:
            if window.benign_fresh_delivered and not math.isnan(
                window.benign_fresh_latency
            ):
                total += window.benign_fresh_latency * window.benign_fresh_delivered
                count += window.benign_fresh_delivered
        return total / count if count else math.nan

    def post_mitigation_fresh_latency(self, skip: int = 1) -> float:
        """Benign latency of packets *created under the fence*.

        The plain post-mitigation figure mixes two populations: packets
        created during the unmitigated attack (whose latency is attack
        damage draining out of saturated queues) and packets created after
        containment (which measure the fenced network itself).  This metric
        keeps only the second population, so fence quality is separable
        from backlog drain — the colluding 8x8 episode's ~8x plain recovery
        ratio, for instance, is almost entirely drain.
        """
        windows = self.phase_windows("mitigated")[skip:]
        if self.attack_end is not None:
            windows = [w for w in windows if w.cycle <= self.attack_end]
        return self._weighted_fresh_latency(windows)

    def fresh_recovery_ratio(self, baseline_latency: float, skip: int = 1) -> float:
        """Drain-corrected recovery: fenced-traffic latency over the baseline."""
        post = self.post_mitigation_fresh_latency(skip=skip)
        if math.isnan(post) or baseline_latency <= 0.0:
            return math.nan
        return post / baseline_latency

    @property
    def backlog_drained(self) -> int:
        """Total benign packets delivered out of the pre-containment backlog."""
        return sum(window.benign_backlog_delivered for window in self.windows)

    # -- rendering ------------------------------------------------------------
    def summary(self) -> dict:
        """Headline metrics as a plain dict (for tables and logs)."""
        return {
            "policy": self.policy.name,
            "windows": len(self.windows),
            "sample_period": self.sample_period,
            "first_detection_cycle": self.first_detection_cycle,
            "engagement_cycle": self.engagement_cycle,
            "release_cycle": self.release_cycle,
            "detection_latency": self.detection_latency,
            "time_to_mitigation": self.time_to_mitigation,
            "time_to_full_containment": self.time_to_full_containment,
            "localization_rounds": self.localization_rounds,
            "reengagements": self.reengagements,
            "pre_attack_latency": self.pre_attack_latency(),
            "attack_latency": self.attack_latency(),
            "post_mitigation_latency": self.post_mitigation_latency(),
            "post_mitigation_fresh_latency": self.post_mitigation_fresh_latency(),
            "backlog_drained": self.backlog_drained,
            "engaged_nodes": sorted(self.engaged_nodes),
            "collateral_nodes": sorted(self.collateral_nodes),
            "collateral_node_windows": self.collateral_node_windows,
        }

    def as_dict(self) -> dict:
        """Full deterministic serialization of the defended episode.

        Everything the report holds — configuration, per-window records,
        events and derived metrics — as plain JSON-able types.  NaN
        latencies become ``None`` so two reports from identically seeded
        runs compare equal with ``==`` (NaN never equals itself), which the
        reproducibility tests rely on.
        """

        def scrub(value: float) -> float | None:
            return None if isinstance(value, float) and math.isnan(value) else value

        return {
            "policy": {
                "action": self.policy.action,
                "throttle_factor": self.policy.throttle_factor,
                "engage_after": self.policy.engage_after,
                "release_after": self.policy.release_after,
                "stale_after": self.policy.stale_after,
                "flush_queue": self.policy.flush_queue,
                "reengage_backoff": self.policy.reengage_backoff,
                "max_engaged_nodes": self.policy.max_engaged_nodes,
                "release_probe_spacing": self.policy.release_probe_spacing,
                "adaptive_throttle": self.policy.adaptive_throttle,
            },
            "sample_period": self.sample_period,
            "attack_start": self.attack_start,
            "attack_end": self.attack_end,
            "true_attackers": list(self.true_attackers),
            "windows": [
                {
                    "index": w.index,
                    "cycle": w.cycle,
                    "detected": w.detected,
                    "probability": scrub(w.probability),
                    "phase": w.phase,
                    "victims": list(w.victims),
                    "attackers": list(w.attackers),
                    "restricted": list(w.restricted),
                    "benign_latency": scrub(w.benign_latency),
                    "benign_delivered": w.benign_delivered,
                    "malicious_delivered": w.malicious_delivered,
                    "suspected": list(w.suspected),
                    "unobservable": list(w.unobservable),
                    "benign_fresh_latency": scrub(w.benign_fresh_latency),
                    "benign_fresh_delivered": w.benign_fresh_delivered,
                    "benign_backlog_delivered": w.benign_backlog_delivered,
                }
                for w in self.windows
            ],
            "events": [
                {
                    "cycle": e.cycle,
                    "kind": e.kind,
                    "nodes": list(e.nodes),
                    "detail": e.detail,
                    "round": e.round,
                }
                for e in self.events
            ],
            "per_attacker_detection_latency": {
                str(node): value
                for node, value in self.per_attacker_detection_latency().items()
            },
            "per_attacker_time_to_mitigation": {
                str(node): value
                for node, value in self.per_attacker_time_to_mitigation().items()
            },
            "event_counts": dict(sorted(self.event_counts.items())),
            "summary": {key: scrub(value) for key, value in self.summary().items()},
        }

    # -- lossless (de)serialization -------------------------------------------
    def to_payload(self) -> dict:
        """Full-fidelity dict for the artifact cache (inverse: ``from_payload``).

        Unlike :meth:`as_dict` — a read-only view with derived metrics and
        NaN scrubbing — this payload round-trips the report exactly, so a
        cached mitigation episode reproduces every downstream metric bit
        for bit.
        """
        return {
            "policy": dataclasses.asdict(self.policy),
            "sample_period": self.sample_period,
            "attack_start": self.attack_start,
            "attack_end": self.attack_end,
            "true_attackers": list(self.true_attackers),
            "windows": [dataclasses.asdict(window) for window in self.windows],
            "events": [dataclasses.asdict(event) for event in self.events],
            "event_counts": dict(self.event_counts),
        }

    @classmethod
    def from_payload(cls, data: dict) -> "DefenseReport":
        """Rebuild a report stored with :meth:`to_payload`."""
        windows = [
            WindowRecord(
                **{
                    **window,
                    "victims": tuple(window["victims"]),
                    "attackers": tuple(window["attackers"]),
                    "restricted": tuple(window["restricted"]),
                    "suspected": tuple(window.get("suspected", ())),
                    "unobservable": tuple(window.get("unobservable", ())),
                }
            )
            for window in data["windows"]
        ]
        events = [
            DefenseEvent(**{**event, "nodes": tuple(event["nodes"])})
            for event in data["events"]
        ]
        return cls(
            policy=MitigationPolicy(**data["policy"]),
            sample_period=int(data["sample_period"]),
            attack_start=data["attack_start"],
            attack_end=data["attack_end"],
            true_attackers=tuple(int(node) for node in data["true_attackers"]),
            windows=windows,
            events=events,
            # .get(): payloads cached before event_counts existed still load.
            event_counts=dict(data.get("event_counts") or {}),
        )

    def format_timeline(self) -> str:
        """Human-readable per-window timeline followed by the event log."""
        header = (
            f"{'win':>3}  {'cycle':>7}  {'phase':<9}  {'det':>3}  {'prob':>5}  "
            f"{'benign lat':>10}  {'restricted':<18}  attackers"
        )
        lines = [header, "-" * len(header)]
        for window in self.windows:
            latency = (
                f"{window.benign_latency:10.1f}"
                if not math.isnan(window.benign_latency)
                else f"{'-':>10}"
            )
            lines.append(
                f"{window.index:>3}  {window.cycle:>7}  {window.phase:<9}  "
                f"{'yes' if window.detected else 'no':>3}  "
                f"{window.probability:5.2f}  {latency}  "
                f"{str(list(window.restricted)):<18}  {list(window.attackers)}"
            )
        if self.events:
            lines.append("")
            lines.append("events:")
            lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)
