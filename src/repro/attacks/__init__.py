"""Refined-DoS attack library: adversarial scenarios beyond the constant flood.

Five refined variants of the paper's flooding threat model, each a frozen
:class:`~repro.attacks.base.AttackModel` with a vectorized, stream-identical
traffic source under both simulator backends:

=============  ==============================================================
``pulsed``     duty-cycled on/off bursts that dodge per-window thresholds
``ramping``    a sub-threshold FIR that climbs until far too late to ignore
``migrating``  the flooding source hops across the mesh ahead of the fence
``colluding``  N distributed sources, each below the single-attacker
               detection FIR, aggregating on one victim
``onroute``    a colluder hidden *on* another flow's route — the Table-Like
               Method's single-window blind spot
=============  ==============================================================

:func:`default_attack_suite` builds the canonical deterministic placement of
every variant for a given mesh — the robustness matrix and the equivalence
tests share it.
"""

from __future__ import annotations

from repro.attacks.base import AttackModel, AttackSource
from repro.attacks.colluding import ColludingFloodAttack
from repro.attacks.migrating import MigratingFloodAttack
from repro.attacks.onroute import OnRouteFloodAttack
from repro.attacks.pulsed import PulsedFloodAttack
from repro.attacks.ramping import RampingFloodAttack
from repro.noc.topology import MeshTopology

__all__ = [
    "ATTACK_LIBRARY",
    "AttackModel",
    "AttackSource",
    "ColludingFloodAttack",
    "MigratingFloodAttack",
    "OnRouteFloodAttack",
    "PulsedFloodAttack",
    "RampingFloodAttack",
    "default_attack",
    "default_attack_suite",
]

#: Registry of every attack variant by its ``name``.
ATTACK_LIBRARY: dict[str, type[AttackModel]] = {
    cls.name: cls
    for cls in (
        PulsedFloodAttack,
        RampingFloodAttack,
        MigratingFloodAttack,
        ColludingFloodAttack,
        OnRouteFloodAttack,
    )
}


def default_attack(
    name: str,
    topology: MeshTopology,
    sample_period: int,
    fir: float = 0.8,
    colluding_fir: float = 0.2,
) -> AttackModel:
    """The canonical deterministic placement of one variant on ``topology``.

    ``fir`` is the loud-flow injection rate (burst/peak/primary rate
    depending on the variant); ``colluding_fir`` the per-source rate of the
    distributed flood.  Time constants are expressed in sampling periods so
    the same attack shape stresses the monitor identically at every scale:
    the pulse duty-cycles *within* a window, the ramp climbs over several
    windows, and a migration dwell spans a few windows per position.
    """
    rows, cols = topology.rows, topology.columns
    if rows < 6 or cols < 6:
        raise ValueError("default attack placements need at least a 6x6 mesh")
    victim = topology.node_id(1, 1)
    far_corner = topology.node_id(cols - 2, rows - 2)
    if name == "pulsed":
        return PulsedFloodAttack(
            attackers=(far_corner,),
            victim=victim,
            fir=min(1.0, fir * 1.125),
            on_cycles=max(1, sample_period // 3),
            off_cycles=max(1, 2 * sample_period // 3),
        )
    if name == "ramping":
        return RampingFloodAttack(
            attackers=(far_corner,),
            victim=victim,
            fir_start=0.05,
            fir_peak=fir,
            ramp_cycles=5 * sample_period,
        )
    if name == "migrating":
        # The source patrols the east edge and floods the victim from three
        # different rows — every hop's route keeps the two-leg (row, then
        # column) shape.  Pure edge-row/column flows are a measured detector
        # soft spot at scale and belong to their own stimulus study, not in
        # the canonical migration placement.
        return MigratingFloodAttack(
            path=(
                far_corner,
                topology.node_id(cols - 2, 1),
                topology.node_id(cols - 2, rows // 2),
            ),
            victim=victim,
            fir=fir,
            # Four windows per position: the first window of a dwell mostly
            # pays for congestion build-up, so a three-window dwell leaves a
            # large mesh at most two convictable windows per visit.
            dwell_cycles=4 * sample_period,
        )
    if name == "colluding":
        # The colluders surround a *central* victim in a cross: one straight
        # single-leg flow per direction, no two flows sharing a router.  A
        # corner victim cascades (outer colluders hide behind brighter inner
        # ones on the shared legs — the on-route problem, not the
        # distributed one), and quadrant placements funnel every flow
        # through one junction router that then looks exactly like the
        # attacker.  The cross keeps each source the unique frontier of its
        # own directional frame.
        center_x, center_y = cols // 2, rows // 2
        return ColludingFloodAttack(
            sources=(
                topology.node_id(1, center_y),
                topology.node_id(cols - 2, center_y),
                topology.node_id(center_x, 1),
                topology.node_id(center_x, rows - 2),
            ),
            victim=topology.node_id(center_x, center_y),
            fir=colluding_fir,
        )
    if name == "onroute":
        # The primary runs the standard far-corner diagonal (row leg, then
        # column leg) — a single-row edge flow is a weak stimulus on large
        # meshes — and the colluder parks mid-way along the row leg, inside
        # the primary's fused victim set.
        return OnRouteFloodAttack(
            primary_attacker=far_corner,
            onroute_attacker=topology.node_id(cols // 2, rows - 2),
            victim=victim,
            primary_fir=fir,
            onroute_fir=fir * 0.625,
        )
    raise KeyError(f"unknown attack variant {name!r}; known: {sorted(ATTACK_LIBRARY)}")


def default_attack_suite(
    topology: MeshTopology,
    sample_period: int,
    fir: float = 0.8,
    colluding_fir: float = 0.2,
) -> dict[str, AttackModel]:
    """All five canonical attack placements for ``topology``, keyed by name."""
    return {
        name: default_attack(
            name, topology, sample_period, fir=fir, colluding_fir=colluding_fir
        )
        for name in ATTACK_LIBRARY
    }
