"""Distributed colluding flood: N quiet sources aggregating on one victim.

The distributed-DoS shape related work (topology-aware NoC DDoS detection)
identifies as the realistic threat model: every individual source floods at
a FIR *below* the rate at which a single attacker becomes detectable, so no
per-source signature convicts anyone — but the flows converge, and the
victim's neighbourhood absorbs their sum.  Localizing the full colluder set
requires accumulating each source's weak, intermittent route signature
across windows until the union is convicted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackModel

__all__ = ["ColludingFloodAttack"]


@dataclass(frozen=True)
class ColludingFloodAttack(AttackModel):
    """``len(sources)`` independent low-rate floods on a single victim.

    Attributes
    ----------
    sources:
        The colluding malicious node ids.
    victim:
        The common target victim node id.
    fir:
        Per-source Flooding Injection Rate — the stealth knob.  The
        aggregate arriving at the victim is ``fir * len(sources)`` per
        cycle in expectation, so the collusion trades per-source
        detectability for headcount.
    """

    sources: tuple[int, ...]
    victim: int
    fir: float = 0.15

    name = "colluding"

    def __post_init__(self) -> None:
        if len(self.sources) < 2:
            raise ValueError("a colluding flood needs at least two sources")
        if len(set(self.sources)) != len(self.sources):
            raise ValueError("colluding sources must be distinct")
        if self.victim in self.sources:
            raise ValueError("the victim cannot also be a source")
        if not 0.0 <= self.fir <= 1.0:
            raise ValueError("fir must be in [0, 1]")

    @property
    def attackers(self) -> tuple[int, ...]:
        return tuple(sorted(self.sources))

    @property
    def aggregate_fir(self) -> float:
        """Expected combined packets/cycle converging on the victim."""
        return self.fir * len(self.sources)

    def emitters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return self.sources, (self.victim,) * len(self.sources)

    def fir_profile_at(self, rel_cycle: int) -> np.ndarray | None:
        return np.full(len(self.sources), self.fir, dtype=np.float64)

    def describe(self) -> str:
        return (
            f"colluding flood {list(self.sources)} -> {self.victim} @ "
            f"per-source FIR {self.fir:g} (aggregate {self.aggregate_fir:g})"
        )
