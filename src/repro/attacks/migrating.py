"""Migrating attacker: the flooding source hops across the mesh over time.

A single-window localizer pins the attacker of the *current* window; by the
time the countermeasure engages, a migrating attacker has already moved on
and the fence lands on a now-silent node.  Every hop resets the guard's
per-node engagement streak, so without memory the defense oscillates one
step behind the attacker forever.  Cross-window evidence keeps suspicion on
previously convicted positions while they are silent, which is what lets
the guard pin the whole hop set down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackModel

__all__ = ["MigratingFloodAttack"]


@dataclass(frozen=True)
class MigratingFloodAttack(AttackModel):
    """One flooding source that relocates along ``path`` every ``dwell_cycles``.

    Attributes
    ----------
    path:
        Node ids the attacker occupies in order; after the last entry the
        attacker wraps back to the first (a patrol loop).
    victim:
        Target victim node id (fixed while the source moves).
    fir:
        Flooding Injection Rate of the currently active position.
    dwell_cycles:
        How long the attacker floods from each position.
    """

    path: tuple[int, ...]
    victim: int
    fir: float = 0.8
    dwell_cycles: int = 512

    name = "migrating"

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a migrating attack needs at least two positions")
        if len(set(self.path)) != len(self.path):
            raise ValueError("path positions must be distinct")
        if self.victim in self.path:
            raise ValueError("the victim cannot be a hop position")
        if not 0.0 <= self.fir <= 1.0:
            raise ValueError("fir must be in [0, 1]")
        if self.dwell_cycles < 1:
            raise ValueError("dwell_cycles must be >= 1")

    @property
    def attackers(self) -> tuple[int, ...]:
        """All hop positions — each injects maliciously at some point."""
        return tuple(sorted(self.path))

    def position_at(self, rel_cycle: int) -> int:
        """The hop position flooding at ``rel_cycle`` since attack start."""
        return self.path[(rel_cycle // self.dwell_cycles) % len(self.path)]

    def emitters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return self.path, (self.victim,) * len(self.path)

    def fir_profile_at(self, rel_cycle: int) -> np.ndarray | None:
        profile = np.zeros(len(self.path), dtype=np.float64)
        profile[(rel_cycle // self.dwell_cycles) % len(self.path)] = self.fir
        return profile

    def describe(self) -> str:
        return (
            f"migrating flood {list(self.path)} -> {self.victim} @ FIR "
            f"{self.fir:g}, dwell {self.dwell_cycles} cycles"
        )
