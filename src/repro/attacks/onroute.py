"""On-route attacker: a second flooder hiding *inside* another flow's route.

The Table-Like Method discards attacker candidates that fall inside the
fused victim set — geometrically they are route turning points, not sources
(Figure 3's two/three-abnormal-frame conditions).  An attacker that parks
itself **on** another flow's XY route exploits exactly that rule: its own
injection merges with the through-traffic of the louder flow, its position
is part of the observed victim set, and no single window can distinguish it
from an innocent forwarding router.  The scenario generator used to exclude
such placements outright (the documented single-window blind spot of the
TLM); this model lifts the exclusion and makes the placement a first-class
library member.  Unmasking it takes iterative rounds plus cross-window
evidence: once the loud primary is fenced, the residual abnormality keeps
terminating at the on-route node, and accumulated frontier suspicion
convicts it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackModel
from repro.noc.routing import xy_route_victims
from repro.noc.topology import MeshTopology

__all__ = ["OnRouteFloodAttack"]


@dataclass(frozen=True)
class OnRouteFloodAttack(AttackModel):
    """A primary flood plus a colluder placed on the primary's XY route.

    Attributes
    ----------
    primary_attacker:
        The loud outer source flooding ``victim``.
    onroute_attacker:
        The hidden source; must lie on the XY route from
        ``primary_attacker`` to ``victim`` (validated against the mesh).
    victim:
        The shared target victim node id.
    primary_fir, onroute_fir:
        Per-flow Flooding Injection Rates; the on-route flow is typically
        quieter — it free-rides on the primary's congestion.
    """

    primary_attacker: int
    onroute_attacker: int
    victim: int
    primary_fir: float = 0.8
    onroute_fir: float = 0.5

    name = "onroute"

    def __post_init__(self) -> None:
        if len({self.primary_attacker, self.onroute_attacker, self.victim}) != 3:
            raise ValueError("primary, on-route attacker and victim must be distinct")
        for value in (self.primary_fir, self.onroute_fir):
            if not 0.0 <= value <= 1.0:
                raise ValueError("FIRs must be in [0, 1]")

    @property
    def attackers(self) -> tuple[int, ...]:
        return tuple(sorted((self.primary_attacker, self.onroute_attacker)))

    def emitters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return (
            (self.primary_attacker, self.onroute_attacker),
            (self.victim, self.victim),
        )

    def fir_profile_at(self, rel_cycle: int) -> np.ndarray | None:
        return np.array([self.primary_fir, self.onroute_fir], dtype=np.float64)

    def validate(self, topology: MeshTopology) -> None:
        super().validate(topology)
        route = xy_route_victims(topology, self.primary_attacker, self.victim)
        if self.onroute_attacker not in route[:-1]:
            raise ValueError(
                f"node {self.onroute_attacker} is not an intermediate router of "
                f"the {self.primary_attacker}->{self.victim} XY route"
            )

    def describe(self) -> str:
        return (
            f"on-route flood: primary {self.primary_attacker} -> {self.victim} "
            f"@ FIR {self.primary_fir:g}, hidden {self.onroute_attacker} on its "
            f"route @ FIR {self.onroute_fir:g}"
        )
