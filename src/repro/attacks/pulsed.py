"""Pulsed (duty-cycled) flooding: bursts tuned to dodge per-window thresholds.

A constant-rate flood saturates every sampling window it overlaps, so any
per-window detector sees it immediately.  A pulsed attacker floods hard for
``on_cycles``, then goes silent for ``off_cycles``: each monitor window
averages the burst over the whole period, so the windowed VCO/BOC signature
sits far below what the same peak FIR would produce continuously — while the
victim still suffers periodic congestion spikes (the classic low-rate
shrew/pulsing DoS shape).  Detecting it reliably takes evidence accumulated
across windows, not a single-window threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackModel
from repro.noc.topology import MeshTopology

__all__ = ["PulsedFloodAttack"]


@dataclass(frozen=True)
class PulsedFloodAttack(AttackModel):
    """On/off flood: FIR ``fir`` for ``on_cycles``, silence for ``off_cycles``.

    Attributes
    ----------
    attackers:
        Malicious node ids, all flooding ``victim``.
    victim:
        Target victim node id.
    fir:
        Flooding Injection Rate during the on phase.
    on_cycles, off_cycles:
        Burst and silence lengths; the duty cycle is
        ``on_cycles / (on_cycles + off_cycles)``.
    phase:
        Offset (in cycles) into the on/off period at attack start, so several
        pulsed attackers can interleave their bursts.
    """

    attackers: tuple[int, ...]
    victim: int
    fir: float = 0.9
    on_cycles: int = 64
    off_cycles: int = 128
    phase: int = 0

    name = "pulsed"

    def __post_init__(self) -> None:
        if not self.attackers:
            raise ValueError("at least one attacker node is required")
        if self.victim in self.attackers:
            raise ValueError("the victim cannot also be an attacker")
        if not 0.0 <= self.fir <= 1.0:
            raise ValueError("fir must be in [0, 1]")
        if self.on_cycles < 1 or self.off_cycles < 1:
            raise ValueError("on_cycles and off_cycles must be >= 1")
        if self.phase < 0:
            raise ValueError("phase must be non-negative")

    @property
    def period(self) -> int:
        return self.on_cycles + self.off_cycles

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the attacker emits — its window-averaged stealth."""
        return self.on_cycles / self.period

    def emitters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return self.attackers, (self.victim,) * len(self.attackers)

    def fir_profile_at(self, rel_cycle: int) -> np.ndarray | None:
        if (rel_cycle + self.phase) % self.period >= self.on_cycles:
            return None
        return np.full(len(self.attackers), self.fir, dtype=np.float64)

    def emits_between(self, rel_start: int, rel_end: int) -> bool:
        """Any burst inside ``[rel_start, rel_end)``: modular interval overlap."""
        span = rel_end - rel_start
        if span <= 0 or self.fir == 0.0:
            return False
        if span >= self.period:
            return True
        offset = (rel_start + self.phase) % self.period
        # Either the range starts inside a burst, or it reaches the next one.
        return offset < self.on_cycles or span > self.period - offset

    def describe(self) -> str:
        return (
            f"pulsed flood {list(self.attackers)} -> {self.victim} @ FIR "
            f"{self.fir:g}, {self.on_cycles}on/{self.off_cycles}off "
            f"(duty {self.duty_cycle:.0%})"
        )
