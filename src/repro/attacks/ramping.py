"""Ramping / stealth flooding: a sub-threshold FIR that slowly climbs.

A detector trained on full-rate floods has an effective FIR floor below
which single windows look benign.  The ramping attacker starts well under
that floor and raises its injection rate linearly over ``ramp_cycles``, so
early windows are individually unconvictable; by the time any single window
crosses the detector's threshold the victim has already been degraded for
the whole climb.  Catching the climb early requires fusing weak evidence
(sub-threshold detector probabilities, partial segmentations) across
windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackModel

__all__ = ["RampingFloodAttack"]


@dataclass(frozen=True)
class RampingFloodAttack(AttackModel):
    """Linear FIR ramp from ``fir_start`` to ``fir_peak`` over ``ramp_cycles``.

    After the ramp completes the attack holds ``fir_peak``.
    """

    attackers: tuple[int, ...]
    victim: int
    fir_start: float = 0.05
    fir_peak: float = 0.8
    ramp_cycles: int = 1024

    name = "ramping"

    def __post_init__(self) -> None:
        if not self.attackers:
            raise ValueError("at least one attacker node is required")
        if self.victim in self.attackers:
            raise ValueError("the victim cannot also be an attacker")
        for value in (self.fir_start, self.fir_peak):
            if not 0.0 <= value <= 1.0:
                raise ValueError("FIRs must be in [0, 1]")
        if self.fir_peak < self.fir_start:
            raise ValueError("fir_peak must be >= fir_start")
        if self.ramp_cycles < 1:
            raise ValueError("ramp_cycles must be >= 1")

    def emitters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return self.attackers, (self.victim,) * len(self.attackers)

    def fir_at(self, rel_cycle: int) -> float:
        """Scalar FIR of the ramp at ``rel_cycle`` since attack start."""
        if rel_cycle >= self.ramp_cycles:
            return self.fir_peak
        span = self.fir_peak - self.fir_start
        return self.fir_start + span * (rel_cycle / self.ramp_cycles)

    def fir_profile_at(self, rel_cycle: int) -> np.ndarray | None:
        return np.full(len(self.attackers), self.fir_at(rel_cycle), dtype=np.float64)

    def describe(self) -> str:
        return (
            f"ramping flood {list(self.attackers)} -> {self.victim} @ FIR "
            f"{self.fir_start:g}->{self.fir_peak:g} over {self.ramp_cycles} cycles"
        )
