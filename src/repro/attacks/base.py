"""Common interface of the refined-DoS attack library.

The paper's headline claim is detection and localization of **refined**
denial-of-service, but a single constant-rate flood exercises only the
easiest corner of that threat model.  An :class:`AttackModel` is a frozen,
declarative description of one adversarial scenario — who injects, at whom,
and how the injection intensity evolves over the attack — that every layer
of the system can consume:

* the simulator, through :meth:`AttackModel.build_source`, which returns an
  :class:`AttackSource` traffic source with a **stream-identical** object
  path (``packets_for_cycle``) and vectorized batch path
  (``packet_batch_for_cycle``), so episodes reproduce bit for bit under both
  the object and the structure-of-arrays simulator backends;
* the defense evaluation, through :attr:`AttackModel.attackers` /
  :meth:`AttackModel.ground_truth_victims` (metrics only — the guard's
  decisions never read them);
* the experiment engine, whose artifact cache hashes the model dataclass
  directly into episode cache keys.

Concrete variants live in sibling modules (pulsed, ramping, migrating,
colluding, on-route) and are registered in :data:`repro.attacks.ATTACK_LIBRARY`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.noc.packet import Packet
from repro.noc.routing import xy_route_victims
from repro.noc.topology import MeshTopology

__all__ = ["AttackModel", "AttackSource"]


class AttackModel(ABC):
    """Declarative description of one refined-DoS scenario.

    Subclasses are frozen dataclasses: hashable into artifact-cache keys and
    safe to share across worker processes.  The model itself holds no
    mutable state — randomness lives in the :class:`AttackSource` built from
    it.
    """

    #: Registry key of the variant (e.g. ``"pulsed"``).
    name: str = "abstract"

    # -- emission plan -------------------------------------------------------
    @abstractmethod
    def emitters(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Aligned ``(sources, victims)`` of every potential injection flow.

        One entry per flow that may inject at some point of the attack; the
        per-cycle intensity of each flow comes from :meth:`fir_profile_at`.
        """

    @abstractmethod
    def fir_profile_at(self, rel_cycle: int) -> np.ndarray | None:
        """Per-flow injection probabilities at ``rel_cycle`` since attack start.

        ``None`` marks a silent cycle (no RNG draw at all — e.g. the off
        phase of a pulsed flood); otherwise a float array aligned with
        :meth:`emitters`, entries in [0, 1].
        """

    def emits_between(self, rel_start: int, rel_end: int) -> bool:
        """True when any cycle of ``[rel_start, rel_end)`` can emit.

        Window-level ground truth for the monitor's ``attack_active`` flag:
        an instantaneous probe would mislabel duty-cycled attacks whose
        bursts fall between sampling instants.  The default answers from
        the range's first cycle (every non-pulsed variant emits on all
        cycles of its window); intermittent variants override it.
        """
        if rel_end <= rel_start:
            return False
        profile = self.fir_profile_at(rel_start)
        return profile is not None and bool((profile > 0.0).any())

    # -- ground truth (evaluation only) --------------------------------------
    # NOTE: ``attackers`` is deliberately *not* a base-class property — most
    # variants declare it as a dataclass field, and a base property would
    # become that field's spurious default.  Every subclass provides it.
    attackers: tuple[int, ...]

    @property
    def victims(self) -> tuple[int, ...]:
        """All flood target node ids, sorted."""
        _, victims = self.emitters()
        return tuple(sorted(set(victims)))

    @property
    def containment_nodes(self) -> tuple[int, ...]:
        """Nodes that must be simultaneously fenced to call the attack contained."""
        return self.attackers

    def ground_truth_victims(self, topology: MeshTopology) -> set[int]:
        """Every router any flow of the attack traverses under XY routing."""
        victims: set[int] = set()
        for source, victim in zip(*self.emitters()):
            victims.update(xy_route_victims(topology, source, victim))
        return victims

    # -- wiring ---------------------------------------------------------------
    def build_source(
        self,
        topology: MeshTopology,
        seed: int = 0,
        packet_size_flits: int = 4,
        start_cycle: int = 0,
        end_cycle: int | None = None,
    ) -> "AttackSource":
        """The simulator traffic source realising this attack."""
        return AttackSource(
            self,
            topology,
            seed=seed,
            packet_size_flits=packet_size_flits,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        sources, victims = self.emitters()
        return f"{self.name}: {sorted(set(sources))} -> {sorted(set(victims))}"

    def validate(self, topology: MeshTopology) -> None:
        """Raise when any referenced node falls outside ``topology``."""
        sources, victims = self.emitters()
        if not sources:
            raise ValueError(f"{self.name} attack has no emitters")
        for node in (*sources, *victims):
            if node not in topology:
                raise ValueError(f"node {node} outside the {topology!r} mesh")
        for source, victim in zip(sources, victims):
            if source == victim:
                raise ValueError(f"flow {source}->{victim} floods its own source")


class AttackSource:
    """Traffic source driven by an :class:`AttackModel`'s emission plan.

    Mirrors :class:`repro.traffic.flooding.FloodingAttacker`: the object-
    building and array-batch paths share one vectorized RNG draw per active
    cycle (``rng.random(num_flows)``), so the injected packet stream is
    identical whichever path the simulator backend takes.
    """

    #: Marker the global performance monitor uses to track ground-truth
    #: "attack active" flags without importing every attack class.
    is_attack_source = True

    def __init__(
        self,
        model: AttackModel,
        topology: MeshTopology,
        seed: int = 0,
        packet_size_flits: int = 4,
        start_cycle: int = 0,
        end_cycle: int | None = None,
    ) -> None:
        if packet_size_flits < 1:
            raise ValueError("packet_size_flits must be >= 1")
        if start_cycle < 0:
            raise ValueError("start_cycle must be non-negative")
        if end_cycle is not None and end_cycle <= start_cycle:
            raise ValueError("end_cycle must be after start_cycle")
        model.validate(topology)
        self.model = model
        self.topology = topology
        self.packet_size_flits = int(packet_size_flits)
        self.start_cycle = int(start_cycle)
        self.end_cycle = end_cycle
        self.rng = np.random.default_rng(seed)
        self.packets_generated = 0
        sources, victims = model.emitters()
        self._flow_sources = np.asarray(sources, dtype=np.int64)
        self._flow_victims = np.asarray(victims, dtype=np.int64)

    # -- ground-truth window ---------------------------------------------------
    def in_window(self, cycle: int) -> bool:
        """True when ``cycle`` falls inside the configured attack window."""
        if cycle < self.start_cycle:
            return False
        if self.end_cycle is not None and cycle >= self.end_cycle:
            return False
        return True

    def is_active_at(self, cycle: int) -> bool:
        """True when the attack can emit during ``cycle`` (monitor labels)."""
        if not self.in_window(cycle):
            return False
        profile = self.model.fir_profile_at(cycle - self.start_cycle)
        return profile is not None and bool((profile > 0.0).any())

    def is_active_in(self, start: int, end: int) -> bool:
        """True when the attack can emit at any cycle of ``[start, end)``.

        The monitor labels whole sampling windows with this, so a pulsed
        attack bursting *between* two sampling instants still marks the
        window attack-active.
        """
        lo = max(start, self.start_cycle)
        hi = end if self.end_cycle is None else min(end, self.end_cycle)
        if hi <= lo:
            return False
        return self.model.emits_between(lo - self.start_cycle, hi - self.start_cycle)

    # -- TrafficSource protocol ------------------------------------------------
    def _draw_batch(self, cycle: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Flows injecting during ``cycle`` as (sources, victims), or None.

        One ``rng.random(num_flows)`` call per non-silent cycle — shared by
        both emission paths, so the stream is identical across backends.
        """
        if not self.in_window(cycle):
            return None
        profile = self.model.fir_profile_at(cycle - self.start_cycle)
        if profile is None:
            return None
        draws = self.rng.random(self._flow_sources.size)
        keep = draws < profile
        sources = self._flow_sources[keep]
        self.packets_generated += int(sources.size)
        return sources, self._flow_victims[keep]

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Flooding packets injected by all active flows during ``cycle``."""
        batch = self._draw_batch(cycle)
        if batch is None:
            return []
        sources, victims = batch
        return [
            Packet(
                source=source,
                destination=victim,
                size_flits=self.packet_size_flits,
                created_cycle=cycle,
                is_malicious=True,
            )
            for source, victim in zip(sources.tolist(), victims.tolist())
        ]

    def packet_batch_for_cycle(
        self, cycle: int
    ) -> tuple[np.ndarray, np.ndarray, int, bool] | None:
        """Array form of :meth:`packets_for_cycle` for batch-capable backends."""
        batch = self._draw_batch(cycle)
        if batch is None or batch[0].size == 0:
            return None
        sources, victims = batch
        return sources, victims, self.packet_size_flits, True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AttackSource({self.model.describe()}, "
            f"window=[{self.start_cycle}, {self.end_cycle}))"
        )
