"""Runtime-plane fault models: breaking the experiment runtime on purpose.

:class:`WorkerChaosFault` injects crashes and hangs into
:class:`~repro.runtime.parallel.ParallelRunner` worker processes — the
runner's retry/timeout/serial-fallback machinery must return results
bit-identical to a fault-free serial run no matter what the fault does.
:class:`CacheCorruptionFault` vandalises on-disk
:class:`~repro.runtime.cache.ArtifactCache` entries the way a torn write or
disk error would — fetches must quarantine the damage (with a warning) and
rebuild, never load garbage or crash.

Both are frozen, seeded and cache-hashable like every other
:class:`~repro.faults.base.FaultModel`.  The runner deliberately treats the
chaos fault as a duck-typed ``before_task``/``after_task`` hook so the
low-level runtime never imports this package.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.faults.base import FaultModel

__all__ = ["InjectedWorkerCrash", "WorkerChaosFault", "CacheCorruptionFault"]


class InjectedWorkerCrash(RuntimeError):
    """A worker failure injected by :class:`WorkerChaosFault`."""


@dataclass(frozen=True)
class WorkerChaosFault(FaultModel):
    """Deterministic crash/hang injection for parallel-runner workers.

    Each ``(task index, attempt)`` pair gets one independent draw ``r``:
    ``r < crash_probability`` crashes the task (at dispatch for
    ``crash_point="enter"``, after the result is computed — and any
    shared-memory segment already written — for ``"exit"``), and
    ``crash_probability <= r < crash_probability + hang_probability`` hangs
    it for ``hang_seconds``.  Draws depend only on the seed, index and
    attempt, so a retried task re-rolls while every other task replays —
    and the fault trace is identical under any worker count.
    """

    crash_probability: float = 0.0
    hang_probability: float = 0.0
    hang_seconds: float = 30.0
    crash_point: str = "enter"  # "enter" | "exit"
    seed: int = 0

    name = "worker-chaos"
    plane = "runtime"

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ValueError("crash_probability must be in [0, 1]")
        if not 0.0 <= self.hang_probability <= 1.0:
            raise ValueError("hang_probability must be in [0, 1]")
        if self.crash_probability + self.hang_probability > 1.0:
            raise ValueError("crash + hang probability must not exceed 1")
        if self.hang_seconds < 0.0:
            raise ValueError("hang_seconds must be non-negative")
        if self.crash_point not in ("enter", "exit"):
            raise ValueError("crash_point must be 'enter' or 'exit'")

    def describe(self) -> str:
        return (
            f"worker chaos (crash={self.crash_probability:g}, "
            f"hang={self.hang_probability:g}@{self.hang_seconds:g}s)"
        )

    def _draw(self, index: int, attempt: int) -> float:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=int(self.seed) & 0xFFFFFFFFFFFFFFFF,
                spawn_key=(int(index), int(attempt)),
            )
        )
        return float(rng.random())

    # -- runner hooks (executed inside worker processes) ---------------------
    def before_task(self, index: int, attempt: int) -> None:
        """Crash or stall a task at dispatch (raises :class:`InjectedWorkerCrash`)."""
        draw = self._draw(index, attempt)
        if self.crash_point == "enter" and draw < self.crash_probability:
            raise InjectedWorkerCrash(
                f"injected crash on task {index} attempt {attempt}"
            )
        if self.crash_probability <= draw < self.crash_probability + self.hang_probability:
            time.sleep(self.hang_seconds)

    def after_task(self, index: int, attempt: int) -> bool:
        """True when the task must crash *after* computing its result."""
        if self.crash_point != "exit":
            return False
        return self._draw(index, attempt) < self.crash_probability


@dataclass(frozen=True)
class CacheCorruptionFault(FaultModel):
    """Deterministic on-disk vandalism against artifact-cache entries.

    ``apply`` walks the cache root and, per complete entry, draws once:
    with ``entry_probability`` the entry is damaged by truncating its
    largest data file (a torn write) or deleting the manifest (an
    interrupted rename), chosen by a second draw.  Returns the damaged
    entry paths so tests can assert every one of them is later quarantined.
    """

    entry_probability: float = 0.5
    seed: int = 0

    name = "cache-corruption"
    plane = "runtime"

    def __post_init__(self) -> None:
        if not 0.0 <= self.entry_probability <= 1.0:
            raise ValueError("entry_probability must be in [0, 1]")

    def describe(self) -> str:
        return f"cache corruption ({self.entry_probability:.0%} of entries)"

    def apply(self, root: Path) -> list[Path]:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=int(self.seed) & 0xFFFFFFFFFFFFFFFF)
        )
        damaged: list[Path] = []
        root = Path(root)
        if not root.is_dir():
            return damaged
        for shard in sorted(root.iterdir()):
            if not shard.is_dir() or shard.name.startswith("."):
                continue
            for entry in sorted(shard.iterdir()):
                if not entry.is_dir() or entry.name.startswith("."):
                    continue
                if float(rng.random()) >= self.entry_probability:
                    continue
                manifest = entry / "manifest.json"
                data_files = sorted(
                    (path for path in entry.iterdir() if path.is_file() and path != manifest),
                    key=lambda path: path.stat().st_size,
                    reverse=True,
                )
                if float(rng.random()) < 0.5 and data_files:
                    with data_files[0].open("r+b") as handle:
                        handle.truncate(max(0, data_files[0].stat().st_size // 2))
                else:
                    manifest.unlink(missing_ok=True)
                damaged.append(entry)
        return damaged
