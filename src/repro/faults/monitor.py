"""Monitor-plane fault models: degraded telemetry for the defense to survive.

Each model transforms the pristine sampling-window stream of the
:class:`~repro.monitor.sampler.GlobalPerformanceMonitor` the way a broken
collection fabric would:

* :class:`SilentMonitorFault` — one router's monitor stops reporting; its
  frame cells read zero and the window is annotated with the node as
  *unobservable* (a missing report is locally detectable by the collector,
  unlike a plausible-but-wrong one);
* :class:`StuckCounterFault` — one router's counters freeze at their
  last-reported values and keep reporting them, with **no** annotation: the
  guard's degraded-mode sanitizer must detect the stuck signature itself;
* :class:`DroppedWindowFault` — whole windows are lost in transit;
* :class:`DelayedWindowFault` — windows are stalled behind a slow monitor
  channel and delivered late, in order, with their original (now stale)
  capture cycles;
* :class:`CorruptedFrameFault` — individual frame cells are overwritten
  with implausibly large values (an exponent bit-flip), testing the guard's
  plausibility clamp.

All transforms operate on deep copies (:func:`repro.faults.base.clone_sample`)
and draw from seeded generators, so the same episode seed replays the same
fault trace under either simulator backend and any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.base import (
    MonitorFaultInjector,
    MonitorFaultModel,
    clone_sample,
    node_port_cells,
)
from repro.monitor.frames import FrameSample
from repro.noc.topology import Direction, MeshTopology

__all__ = [
    "SilentMonitorFault",
    "StuckCounterFault",
    "DroppedWindowFault",
    "DelayedWindowFault",
    "CorruptedFrameFault",
    "UNOBSERVABLE_KEY",
    "DETOUR_KEY",
    "LOCAL_BOC_KEY",
]

#: Metadata key carrying collection-layer-declared unobservable nodes.
UNOBSERVABLE_KEY = "unobservable_nodes"

#: Metadata key carrying the detour carriers of an active data-plane fault:
#: nodes newly absorbing traffic that fault-free XY routed elsewhere.  The
#: sampler annotates it from the simulator's route provider; the degraded
#: guard discounts evidence against these nodes (their congestion is
#: infrastructure-caused, not attacker-caused).
DETOUR_KEY = "detour_nodes"

#: Metadata key carrying per-node LOCAL-port buffer-operation counts for the
#: window (a tuple indexed by node id).  The LOCAL input port only ever
#: holds the node's *own* injected flits, so this is a per-router injection
#: activity meter the four directional frames never expose.  The sampler
#: annotates it whenever a data-plane fault has live detour carriers; the
#: degraded guard uses it to separate a carrier that merely forwards
#: rerouted traffic (discounted) from one injecting a flood of its own
#: (full evidence weight — a colluder squatting on a detour column).
LOCAL_BOC_KEY = "local_boc"


def _mark_unobservable(sample: FrameSample, node: int) -> None:
    current = set(sample.metadata.get(UNOBSERVABLE_KEY, ()))
    current.add(int(node))
    sample.metadata[UNOBSERVABLE_KEY] = tuple(sorted(current))


def _node_frame_views(sample: FrameSample, topology: MeshTopology, node: int):
    """(array, row, col) of every cell of ``node`` across the 8 frames."""
    views = []
    for direction, row, col in node_port_cells(topology, node):
        views.append((sample.vco.frames[direction].values, row, col))
        views.append((sample.boc.frames[direction].values, row, col))
    return views


@dataclass(frozen=True)
class SilentMonitorFault(MonitorFaultModel):
    """One router's monitor goes dark from ``start_window`` on."""

    node: int
    start_window: int = 0

    name = "silent-monitor"

    def describe(self) -> str:
        return f"silent monitor @ node {self.node}"

    def affected_nodes(self, topology: MeshTopology) -> frozenset[int]:
        return frozenset((self.node,))

    def build_injector(self, topology: MeshTopology, seed: int = 0) -> "_SilentInjector":
        return _SilentInjector(self, topology)


class _SilentInjector(MonitorFaultInjector):
    def __init__(self, model: SilentMonitorFault, topology: MeshTopology) -> None:
        super().__init__(model)
        self.topology = topology
        self._window = 0

    def process(self, sample: FrameSample) -> list[FrameSample]:
        window = self._window
        self._window += 1
        if window < self.model.start_window:
            return [sample]
        sample = clone_sample(sample)
        for values, row, col in _node_frame_views(sample, self.topology, self.model.node):
            values[row, col] = 0.0
        _mark_unobservable(sample, self.model.node)
        return [sample]


@dataclass(frozen=True)
class StuckCounterFault(MonitorFaultModel):
    """One router's counters freeze at their ``start_window`` values.

    Deliberately *not* self-declared: a stuck counter keeps producing
    plausible numbers, so only the guard's stuck-signature detection (all
    cells of one node bit-identical across consecutive windows) can catch
    it.
    """

    node: int
    start_window: int = 0

    name = "stuck-counter"

    def describe(self) -> str:
        return f"stuck counters @ node {self.node}"

    def affected_nodes(self, topology: MeshTopology) -> frozenset[int]:
        return frozenset((self.node,))

    def build_injector(self, topology: MeshTopology, seed: int = 0) -> "_StuckInjector":
        return _StuckInjector(self, topology)


class _StuckInjector(MonitorFaultInjector):
    def __init__(self, model: StuckCounterFault, topology: MeshTopology) -> None:
        super().__init__(model)
        self.topology = topology
        self._window = 0
        self._frozen: list[float] | None = None

    def process(self, sample: FrameSample) -> list[FrameSample]:
        window = self._window
        self._window += 1
        if window < self.model.start_window:
            return [sample]
        sample = clone_sample(sample)
        views = _node_frame_views(sample, self.topology, self.model.node)
        if self._frozen is None:
            # Freeze at onset: the first faulty window still reports truth.
            self._frozen = [float(values[row, col]) for values, row, col in views]
        for (values, row, col), frozen in zip(views, self._frozen):
            values[row, col] = frozen
        return [sample]


@dataclass(frozen=True)
class DroppedWindowFault(MonitorFaultModel):
    """Each sampling window is independently lost with ``probability``."""

    probability: float = 0.125
    seed: int = 0

    name = "dropped-window"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")

    def describe(self) -> str:
        return f"{self.probability:.0%} window dropout"

    def build_injector(self, topology: MeshTopology, seed: int = 0) -> "_DropInjector":
        return _DropInjector(self, self._rng(seed, self.seed))


class _DropInjector(MonitorFaultInjector):
    def __init__(self, model: DroppedWindowFault, rng: np.random.Generator) -> None:
        super().__init__(model)
        self.rng = rng

    def process(self, sample: FrameSample) -> list[FrameSample]:
        if float(self.rng.random()) < self.model.probability:
            return []
        return [sample]


@dataclass(frozen=True)
class DelayedWindowFault(MonitorFaultModel):
    """Windows stall behind a slow monitor channel and arrive late, in order.

    A delayed window blocks the windows captured after it (head-of-line: the
    channel is stalled, not reordering), so a single delay delivers a burst
    of consecutive windows at one instant — each still carrying its original
    capture cycle, which is what exercises the guard's stale-clock handling.
    """

    probability: float = 0.2
    delay_windows: int = 2
    seed: int = 0

    name = "delayed-window"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        if self.delay_windows < 1:
            raise ValueError("delay_windows must be >= 1")

    def describe(self) -> str:
        return f"{self.probability:.0%} windows delayed {self.delay_windows}"

    def build_injector(self, topology: MeshTopology, seed: int = 0) -> "_DelayInjector":
        return _DelayInjector(self, self._rng(seed, self.seed))


class _DelayInjector(MonitorFaultInjector):
    def __init__(self, model: DelayedWindowFault, rng: np.random.Generator) -> None:
        super().__init__(model)
        self.rng = rng
        self._index = 0
        self._queue: list[tuple[int, FrameSample]] = []

    def process(self, sample: FrameSample) -> list[FrameSample]:
        index = self._index
        self._index += 1
        due = index
        if float(self.rng.random()) < self.model.probability:
            due = index + self.model.delay_windows
        self._queue.append((due, sample))
        released: list[FrameSample] = []
        while self._queue and self._queue[0][0] <= index:
            released.append(self._queue.pop(0)[1])
        return released


@dataclass(frozen=True)
class CorruptedFrameFault(MonitorFaultModel):
    """Individual frame cells are overwritten with an implausible magnitude.

    Models an exponent bit-flip in the collection path: the corrupted value
    is physically impossible (VCO is a ratio in [0, 1]; BOC is bounded by
    buffer operations per window), which is exactly what the guard's
    plausibility clamp keys on.
    """

    cell_probability: float = 0.01
    magnitude: float = float(1 << 20)
    seed: int = 0

    name = "corrupted-frame"

    def __post_init__(self) -> None:
        if not 0.0 <= self.cell_probability < 1.0:
            raise ValueError("cell_probability must be in [0, 1)")
        if self.magnitude <= 0.0:
            raise ValueError("magnitude must be positive")

    def describe(self) -> str:
        return f"{self.cell_probability:.1%} cells corrupted"

    def build_injector(self, topology: MeshTopology, seed: int = 0) -> "_CorruptInjector":
        return _CorruptInjector(self, self._rng(seed, self.seed))


class _CorruptInjector(MonitorFaultInjector):
    def __init__(self, model: CorruptedFrameFault, rng: np.random.Generator) -> None:
        super().__init__(model)
        self.rng = rng

    def process(self, sample: FrameSample) -> list[FrameSample]:
        sample = clone_sample(sample)
        # Fixed iteration order (VCO then BOC, cardinal direction order)
        # keeps the draw sequence — and therefore the fault trace —
        # deterministic for a given seed.
        for frame_set in (sample.vco, sample.boc):
            for direction in Direction.cardinal():
                values = frame_set.frames[direction].values
                mask = self.rng.random(values.shape) < self.model.cell_probability
                if mask.any():
                    values[mask] = self.model.magnitude
        return [sample]
