"""Data-plane fault models: dead links and dead routers.

Unlike the monitor-plane faults of :mod:`repro.faults.monitor` — which
corrupt the *telemetry* while the simulated hardware keeps working — these
faults break the mesh itself.  A dead link (or a dead router, which kills
every link incident to it) is applied to the simulator mid-episode via
:meth:`~repro.noc.simulator.NoCSimulator.schedule_data_fault`: the backend
installs a fault-aware :class:`~repro.noc.route_provider.RouteProvider`,
excises in-flight packets stranded by the kill, and reroutes all surviving
traffic along deadlock-free west-first detours.

Both models are frozen, seed-free and cache-hashable, so a
:class:`~repro.faults.base.FaultScenario` carrying them hashes into episode
cache keys exactly like its monitor-plane siblings.  ``affected_nodes``
deliberately includes the *detour carriers* — the innocent nodes that newly
carry rerouted traffic — because the chaos matrix's zero-collateral gate
must also prove the guard never convicts a node merely for absorbing a
detour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.base import FaultModel
from repro.noc.topology import Direction, MeshTopology

__all__ = ["DataFaultModel", "DeadLinkFault", "DeadRouterFault"]


class DataFaultModel(FaultModel):
    """A fault that degrades the mesh's data plane (links / routers)."""

    plane: str = "data"
    #: Simulation cycle at which the fault strikes (0 = before first cycle).
    start_cycle: int = 0

    def dead_links(self, topology: MeshTopology) -> tuple:
        """``(node, Direction)`` pairs of the physical links this fault kills."""
        return ()

    def dead_routers(self, topology: MeshTopology) -> tuple:
        """Node ids of the routers this fault kills."""
        return ()

    def affected_nodes(self, topology: MeshTopology) -> frozenset[int]:
        """Fault endpoints plus every detour carrier of the reroute.

        Builds a single-fault :class:`~repro.noc.route_provider.RouteProvider`
        to enumerate the nodes that newly carry traffic XY would have routed
        elsewhere — the chaos matrix treats all of them as
        never-legitimate fence targets.
        """
        from repro.noc.route_provider import RouteProvider

        provider = RouteProvider(
            topology,
            dead_links=self.dead_links(topology),
            dead_routers=self.dead_routers(topology),
        )
        endpoints: set[int] = set(int(node) for node in provider.dead_routers)
        for node, _direction in provider.dead_links:
            endpoints.add(int(node))
        return frozenset(endpoints) | provider.detour_nodes


@dataclass(frozen=True)
class DeadLinkFault(DataFaultModel):
    """One bidirectional mesh link goes dark mid-episode.

    ``node``/``direction`` name the physical link (either endpoint works —
    the provider normalizes to both directed halves).  Traffic that XY
    would have pushed across the link detours around it under the
    west-first turn model; in-flight packets whose wormhole binding or
    travel state is stranded by the kill are excised at activation.
    """

    node: int
    direction: Direction
    start_cycle: int = 0

    name = "dead-link"

    def dead_links(self, topology: MeshTopology) -> tuple:
        return ((self.node, self.direction),)

    def describe(self) -> str:
        return (
            f"link {self.node}->{self.direction.name} dead "
            f"from cycle {self.start_cycle}"
        )


@dataclass(frozen=True)
class DeadRouterFault(DataFaultModel):
    """A whole router (crossbar and all incident links) dies mid-episode.

    Nothing can transit, enter or leave the node afterwards: packets
    sourced at or destined to it are dropped as unroutable, and through
    traffic detours around it.
    """

    node: int
    start_cycle: int = 0

    name = "dead-router"

    def dead_routers(self, topology: MeshTopology) -> tuple:
        return (self.node,)

    def describe(self) -> str:
        return f"router {self.node} dead from cycle {self.start_cycle}"
