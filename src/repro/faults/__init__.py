"""Deterministic, seeded fault-injection library.

Mirrors :mod:`repro.attacks`: frozen, declarative, cache-hashable
:class:`FaultModel` descriptions of infrastructure degradation, realised as
monitor-plane injectors (:mod:`repro.faults.monitor`) slotted into the
global performance monitor, and runtime-plane hooks
(:mod:`repro.faults.runtime`) aimed at the parallel runner and the artifact
cache.  :data:`FAULT_LIBRARY` registers every concrete model;
:func:`default_fault_suite` builds the named :class:`FaultScenario` axis the
chaos matrix sweeps (selectable at the bench level via ``REPRO_FAULTS``).
"""

from __future__ import annotations

from repro.faults.base import (
    FaultModel,
    FaultPlane,
    FaultScenario,
    MonitorFaultInjector,
    MonitorFaultModel,
    clone_sample,
    node_port_cells,
)
from repro.faults.data import DataFaultModel, DeadLinkFault, DeadRouterFault
from repro.faults.monitor import (
    UNOBSERVABLE_KEY,
    CorruptedFrameFault,
    DelayedWindowFault,
    DroppedWindowFault,
    SilentMonitorFault,
    StuckCounterFault,
)
from repro.faults.runtime import (
    CacheCorruptionFault,
    InjectedWorkerCrash,
    WorkerChaosFault,
)
from repro.noc.topology import Direction, MeshTopology

__all__ = [
    "FAULT_LIBRARY",
    "DataFaultModel",
    "DeadLinkFault",
    "DeadRouterFault",
    "FaultModel",
    "FaultPlane",
    "FaultScenario",
    "MonitorFaultInjector",
    "MonitorFaultModel",
    "SilentMonitorFault",
    "StuckCounterFault",
    "DroppedWindowFault",
    "DelayedWindowFault",
    "CorruptedFrameFault",
    "WorkerChaosFault",
    "CacheCorruptionFault",
    "InjectedWorkerCrash",
    "UNOBSERVABLE_KEY",
    "clone_sample",
    "node_port_cells",
    "dead_link_for",
    "default_fault_suite",
    "silent_node_for",
    "stuck_node_for",
]

#: Every concrete fault model, keyed by its registry name.
FAULT_LIBRARY: dict[str, type[FaultModel]] = {
    model.name: model
    for model in (
        SilentMonitorFault,
        StuckCounterFault,
        DroppedWindowFault,
        DelayedWindowFault,
        CorruptedFrameFault,
        WorkerChaosFault,
        CacheCorruptionFault,
        DeadLinkFault,
        DeadRouterFault,
    )
}


def silent_node_for(topology: MeshTopology) -> int:
    """Canonical silent-monitor placement for a mesh.

    ``(2, 2)`` sits near — but never on — the canonical attack placements of
    :func:`repro.attacks.default_attack` (victim ``(1, 1)``, colluding cross,
    far-corner and migrating sources all avoid it at every supported scale),
    so the chaos matrix measures a fault *adjacent to the action* without
    ever overlapping a true attacker.  Small meshes fall back toward the
    origin.
    """
    x = min(2, topology.columns - 1)
    y = min(2, topology.rows - 1)
    return topology.node_id(x, y)


def stuck_node_for(topology: MeshTopology) -> int:
    """Canonical stuck-counter placement: mid-west, off every attacker set."""
    x = min(2, topology.columns - 1)
    y = max(0, min(topology.rows - 3, topology.rows - 1))
    return topology.node_id(x, y)


def dead_link_for(topology: MeshTopology) -> int:
    """Canonical dead-link placement: the NORTH link out of this node.

    Column 2 sits off every canonical attack row/column at all supported
    scales (attack rows 1, ``rows//2`` and ``rows - 2``, columns 1,
    ``columns//2`` and ``columns - 2`` never own this vertical segment), so
    killing the link reroutes *benign* traffic while the refined-DoS flows
    keep their fault-free XY paths — the chaos matrix then measures
    detection and containment on a degraded mesh without the fault
    masking or rerouting the attack itself.  The west-first detour around
    the cut prefers the EAST side (ascending tie-break), i.e. the quiet
    column 3, not the flooded column 1.  Small meshes clamp toward the
    origin while keeping the link on the mesh.
    """
    x = min(2, topology.columns - 1)
    y = min(2, max(topology.rows - 2, 0))
    return topology.node_id(x, y)


def default_fault_suite(
    topology: MeshTopology, link_kill_cycle: int = 0
) -> dict[str, FaultScenario]:
    """The named fault scenarios of the chaos matrix's fault axis.

    ``dropout_silent`` is the acceptance gate: >=10% monitor-window dropout
    *plus* one silent monitor node, under which all five refined-DoS
    variants must stay contained with zero fault-node convictions.

    ``link_faults`` is the data-plane gate: the canonical mesh link dies at
    ``link_kill_cycle`` (0 = before the first cycle; the chaos matrix
    passes a mid-attack cycle), traffic detours around the cut, and the
    guard must keep containing the attack with zero collateral — including
    zero convictions of the detour carriers newly absorbing rerouted load.
    """
    silent = SilentMonitorFault(node=silent_node_for(topology))
    stuck = StuckCounterFault(node=stuck_node_for(topology))
    dropout = DroppedWindowFault(probability=0.125, seed=7)
    corrupt = CorruptedFrameFault(cell_probability=0.02, seed=11)
    delay = DelayedWindowFault(probability=0.2, delay_windows=2, seed=13)
    dead_link = DeadLinkFault(
        node=dead_link_for(topology),
        direction=Direction.NORTH,
        start_cycle=int(link_kill_cycle),
    )
    return {
        "none": FaultScenario(name="none"),
        "dropout": FaultScenario(name="dropout", monitor_faults=(dropout,)),
        "silent": FaultScenario(name="silent", monitor_faults=(silent,)),
        "dropout_silent": FaultScenario(
            name="dropout_silent", monitor_faults=(dropout, silent)
        ),
        "stuck": FaultScenario(name="stuck", monitor_faults=(stuck,)),
        "corrupt": FaultScenario(name="corrupt", monitor_faults=(corrupt,)),
        "delay": FaultScenario(name="delay", monitor_faults=(delay,)),
        "link_faults": FaultScenario(
            name="link_faults", data_faults=(dead_link,)
        ),
    }
