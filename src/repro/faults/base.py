"""Common interface of the fault-injection library.

The attack library (:mod:`repro.attacks`) describes *adversarial* scenarios;
this package describes *infrastructure degradation* the same way: a
:class:`FaultModel` is a frozen, declarative, cache-hashable description of
one fault the system must survive.  Faults live on two planes:

* **monitor-plane** faults corrupt the telemetry the defense consumes — a
  silent monitor node, stuck-at counters, dropped or delayed sampling
  windows, corrupted frame cells.  They are realised as
  :class:`MonitorFaultInjector` transforms slotted into the
  :class:`~repro.monitor.sampler.GlobalPerformanceMonitor` between frame
  capture and listener dispatch, so both simulator backends (which produce
  bit-identical pristine frames) observe bit-identical *faulted* streams;
* **runtime-plane** faults break the experiment runtime itself — injected
  worker crashes/hangs inside :class:`~repro.runtime.parallel.ParallelRunner`
  and cache-entry corruption against
  :class:`~repro.runtime.cache.ArtifactCache` (see
  :mod:`repro.faults.runtime`).

All randomness is seeded: a fault model holds only parameters (including its
own ``seed`` field), and the injector built from it derives every draw from
``(episode seed, model seed)`` — the same episode replays the same fault
trace under any backend, worker count, or cache state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.monitor.frames import DirectionalFrame, FrameSample, FrameSet
from repro.noc.topology import MeshTopology

__all__ = [
    "FaultModel",
    "MonitorFaultModel",
    "MonitorFaultInjector",
    "FaultPlane",
    "FaultScenario",
    "clone_sample",
    "node_port_cells",
]


def node_port_cells(topology: MeshTopology, node: int):
    """``(direction, row, col)`` of every directional-frame cell owned by ``node``.

    The inverse of the frame geometry in :mod:`repro.monitor.features`: a
    router's EAST input port exists for ``x < columns - 1`` at frame cell
    ``(y, x)``, WEST for ``x >= 1`` at ``(y, x - 1)``, NORTH for
    ``y < rows - 1`` at ``(y, x)`` and SOUTH for ``y >= 1`` at ``(y - 1, x)``.
    """
    from repro.noc.topology import Direction

    x, y = topology.coordinates(node)
    cells = []
    if x < topology.columns - 1:
        cells.append((Direction.EAST, y, x))
    if x >= 1:
        cells.append((Direction.WEST, y, x - 1))
    if y < topology.rows - 1:
        cells.append((Direction.NORTH, y, x))
    if y >= 1:
        cells.append((Direction.SOUTH, y - 1, x))
    return cells


def clone_sample(sample: FrameSample) -> FrameSample:
    """Deep copy of a frame sample (faults never mutate the pristine capture)."""

    def clone_set(frame_set: FrameSet) -> FrameSet:
        return FrameSet(
            kind=frame_set.kind,
            frames={
                direction: DirectionalFrame(
                    direction=frame.direction,
                    kind=frame.kind,
                    values=np.array(frame.values, dtype=np.float64, copy=True),
                    cycle=frame.cycle,
                )
                for direction, frame in frame_set.frames.items()
            },
            cycle=frame_set.cycle,
        )

    return FrameSample(
        cycle=sample.cycle,
        vco=clone_set(sample.vco),
        boc=clone_set(sample.boc),
        attack_active=sample.attack_active,
        metadata=dict(sample.metadata),
    )


class FaultModel(ABC):
    """Declarative description of one infrastructure fault.

    Subclasses are frozen dataclasses: hashable into artifact-cache keys and
    safe to share across worker processes.  The model holds no mutable
    state — fault-trace randomness lives in the injector (or runtime hook)
    built from it.
    """

    #: Registry key of the fault (e.g. ``"dropped-window"``).
    name: str = "abstract"
    #: ``"monitor"`` or ``"runtime"`` — which plane the fault degrades.
    plane: str = "monitor"

    def describe(self) -> str:
        """One-line human description for tables and logs."""
        return self.name


class MonitorFaultInjector(ABC):
    """Stateful realisation of one monitor-plane fault for one episode."""

    def __init__(self, model: "MonitorFaultModel") -> None:
        self.model = model

    @abstractmethod
    def process(self, sample: FrameSample) -> list[FrameSample]:
        """Transform one captured window into the windows actually delivered.

        Returns zero samples for a dropped window, one for a (possibly
        transformed) pass-through, and several when a delay fault releases
        buffered windows.  Injectors must not mutate their input — transforms
        operate on :func:`clone_sample` copies.
        """


class MonitorFaultModel(FaultModel):
    """A fault that degrades the monitor's sampling-window stream."""

    plane: str = "monitor"

    @abstractmethod
    def build_injector(
        self, topology: MeshTopology, seed: int = 0
    ) -> MonitorFaultInjector:
        """The per-episode injector realising this fault."""

    def affected_nodes(self, topology: MeshTopology) -> frozenset[int]:
        """Nodes whose telemetry this fault touches (empty = whole stream)."""
        return frozenset()

    def _rng(self, episode_seed: int, model_seed: int) -> np.random.Generator:
        """Deterministic per-episode stream: depends only on the two seeds.

        ``spawn_key`` keeps streams of co-injected faults independent even
        when episode and model seeds collide; no process-salted ``hash()``
        is involved, so worker processes replay identical traces.
        """
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=int(episode_seed) & 0xFFFFFFFFFFFFFFFF,
                spawn_key=(int(model_seed) & 0xFFFFFFFF,),
            )
        )


class FaultPlane:
    """An ordered chain of monitor fault injectors applied to each window."""

    def __init__(self, injectors: list[MonitorFaultInjector]) -> None:
        self.injectors = list(injectors)

    def process(self, sample: FrameSample) -> list[FrameSample]:
        """Run one captured window through every injector, in order."""
        samples = [sample]
        for injector in self.injectors:
            produced: list[FrameSample] = []
            for item in samples:
                produced.extend(injector.process(item))
            samples = produced
        return samples


@dataclass(frozen=True)
class FaultScenario:
    """A named, cache-hashable composition of fault models.

    The unit of the chaos matrix's fault axis: a scenario is to faults what
    an :class:`~repro.attacks.AttackModel` is to attacks — frozen,
    declarative, and hashed directly into episode cache keys.  It may mix
    monitor-plane faults (degraded telemetry) with data-plane faults (dead
    links / routers, see :mod:`repro.faults.data`).
    """

    name: str
    monitor_faults: tuple = ()
    data_faults: tuple = ()

    def build_plane(self, topology: MeshTopology, seed: int = 0) -> FaultPlane | None:
        """The monitor fault plane for one episode (None = fault-free)."""
        if not self.monitor_faults:
            return None
        return FaultPlane(
            [
                model.build_injector(topology, seed=seed + index)
                for index, model in enumerate(self.monitor_faults)
            ]
        )

    def schedule_data_faults(self, simulator) -> None:
        """Register the scenario's link/router kills on a simulator.

        Each data fault activates atomically at the start of its
        ``start_cycle`` via ``simulator.schedule_data_fault``; a scenario
        without data faults is a no-op.
        """
        for model in self.data_faults:
            simulator.schedule_data_fault(
                max(int(model.start_cycle), simulator.cycle),
                dead_links=model.dead_links(simulator.topology),
                dead_routers=model.dead_routers(simulator.topology),
            )

    def affected_nodes(self, topology: MeshTopology) -> frozenset[int]:
        """Every node any fault of the scenario specifically degrades.

        For data-plane faults this includes the detour carriers of the
        reroute — none of these nodes is ever a legitimate fence target.
        """
        nodes: frozenset[int] = frozenset()
        for model in self.monitor_faults:
            nodes |= model.affected_nodes(topology)
        for model in self.data_faults:
            nodes |= model.affected_nodes(topology)
        return nodes

    def describe(self) -> str:
        models = tuple(self.monitor_faults) + tuple(self.data_faults)
        if not models:
            return "fault-free"
        return " + ".join(model.describe() for model in models)
