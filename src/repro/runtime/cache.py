"""Content-addressed disk cache for expensive experiment artifacts.

The experiment suite spends almost all of its wall-clock in two places:
simulating scenario runs and training the DL2Fence CNNs.  Both are pure
functions of their configuration, so the :class:`ArtifactCache` stores them
on disk keyed by a canonical hash of that configuration
(:mod:`repro.runtime.hashing`) and every re-run — a second table at the same
mesh scale, a figure regenerated after a cosmetic change — loads instead of
recomputing.

Entries are directories.  A writer fills a temporary sibling directory,
writes a ``manifest.json`` (file names + sizes) *last*, then atomically
renames the directory into place; a reader treats a missing manifest, a
missing or size-mismatched file, or a loader exception as a cache miss and
rebuilds.  Interrupted writes therefore can never be loaded.

Corruption is *reported*, not hidden: a broken entry is moved into the
hidden ``.quarantine/`` directory under the cache root (with a
``RuntimeWarning`` naming it) instead of being silently deleted, so a bad
disk, a truncating copy tool, or an adversarial modification stays
inspectable after the rebuild.  The quarantine keeps only the newest few
specimens.  Transient read failures are distinguished from corruption:
manifest reads are retried briefly (a concurrent writer renaming the entry
into place can momentarily race the reader), and an entry that vanished
*entirely* between the existence check and the read is a plain miss — that
is a concurrent eviction, not damage.

Environment variables:

``REPRO_CACHE``
    ``0``/``false`` disables the cache entirely (every fetch misses, every
    store is a no-op).  Default: enabled.
``REPRO_CACHE_DIR``
    Cache root.  Default: ``~/.cache/dl2fence-repro``.
``REPRO_CACHE_MAX_BYTES``
    Size cap for the cache root.  After every store the least recently
    used entries (by manifest mtime; a fetch hit refreshes it) are pruned
    until the total size fits.  Default: unbounded.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro.obs.metrics import METRICS, cache_events_counter
from repro.runtime.hashing import cache_key

__all__ = ["ArtifactCache", "CacheStats", "default_cache_root"]

T = TypeVar("T")

_MANIFEST = "manifest.json"
#: Hidden directory (under the cache root) holding quarantined entries.
_QUARANTINE = ".quarantine"
#: Newest quarantined specimens kept for inspection; older ones are pruned.
_QUARANTINE_KEEP = 16
#: Manifest-read retries before an unreadable manifest counts as corruption
#: (a concurrent writer's rename can momentarily race the reader).
_MANIFEST_READ_RETRIES = 2
_MANIFEST_RETRY_SLEEP = 0.01


def default_cache_root() -> Path:
    """Cache root from ``REPRO_CACHE_DIR`` (default ``~/.cache/dl2fence-repro``)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "dl2fence-repro"


def _enabled_from_environment() -> bool:
    raw = os.environ.get("REPRO_CACHE", "").strip().lower()
    return raw not in ("0", "false", "no", "off")


def _max_bytes_from_environment() -> int | None:
    """Size cap from ``REPRO_CACHE_MAX_BYTES`` (None = unbounded)."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CACHE_MAX_BYTES must be an integer, got {raw!r}"
        ) from None
    return value if value > 0 else None


@dataclass
class CacheStats:
    """Hit/miss/store counters (reported by the perf harness)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    evicted: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "evicted": self.evicted,
            "quarantined": self.quarantined,
        }

    def inc(self, event: str, amount: int = 1) -> None:
        """Bump one counter, mirrored into the metrics registry when metered."""
        if not amount:
            return
        setattr(self, event, getattr(self, event) + amount)
        if METRICS.active:
            cache_events_counter().inc(amount, event=event)


@dataclass
class ArtifactCache:
    """Directory-per-entry disk cache with atomic, manifest-validated writes."""

    root: Path = field(default_factory=default_cache_root)
    enabled: bool = field(default_factory=_enabled_from_environment)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Total-size cap in bytes (None = never evict).  Enforced after every
    #: store by pruning least-recently-used entries (oldest manifest mtime).
    max_bytes: int | None = field(default_factory=_max_bytes_from_environment)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        # Lazily initialised running size estimate: stores add their entry
        # size, a full walk only happens when the estimate crosses the cap
        # (and corrects the estimate), so stores stay O(entry) not O(cache).
        self._size_estimate: int | None = None

    @classmethod
    def from_environment(cls) -> "ArtifactCache":
        """Cache configured purely from ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``."""
        return cls()

    @classmethod
    def disabled(cls) -> "ArtifactCache":
        """A cache that never hits and never writes."""
        return cls(enabled=False)

    # -- entry layout -------------------------------------------------------
    def entry_dir(self, kind: str, payload: Any) -> Path:
        """Directory an entry for (kind, payload) lives in (existing or not)."""
        key = cache_key(kind, payload)
        return self.root / key[:2] / key

    def _read_manifest_files(self, entry: Path) -> dict | None:
        """The entry's manifest file table, retried over transient races.

        A reader can attach to an entry in the same instant a concurrent
        writer renames it into place (or an LRU prune renames it away); one
        failed read therefore proves nothing.  Only a manifest that stays
        unreadable across the retry budget is reported as corruption.
        """
        manifest_path = entry / _MANIFEST
        for attempt in range(_MANIFEST_READ_RETRIES + 1):
            try:
                manifest = json.loads(manifest_path.read_text())
                files = manifest["files"]
                if isinstance(files, dict):
                    return files
                return None
            except (OSError, ValueError, KeyError):
                if attempt < _MANIFEST_READ_RETRIES:
                    time.sleep(_MANIFEST_RETRY_SLEEP)
        return None

    def _is_complete(self, entry: Path) -> bool:
        files = self._read_manifest_files(entry)
        if files is None:
            return False
        for name, size in files.items():
            data_path = entry / name
            try:
                if data_path.stat().st_size != int(size):
                    return False
            except OSError:
                return False
        return True

    def _purge(self, entry: Path) -> None:
        shutil.rmtree(entry, ignore_errors=True)

    def _quarantine(self, entry: Path, reason: str) -> None:
        """Move a damaged entry aside (with a warning) instead of deleting it.

        The quarantined copy lands under ``<root>/.quarantine/`` with a
        unique suffix; hidden directories are excluded from entry iteration
        and the size accounting, and only the newest ``_QUARANTINE_KEEP``
        specimens are kept.  When the move itself fails the entry is purged
        — an unreadable *and* unmovable entry must not block the rebuild.
        """
        quarantine = self.root / _QUARANTINE
        target = quarantine / f"{entry.name}-{uuid.uuid4().hex[:8]}"
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(entry, target)
        except OSError:
            self._purge(entry)
            return
        self.stats.inc("quarantined")
        warnings.warn(
            f"cache entry {entry.name} is corrupt ({reason}); moved to "
            f"{target} for inspection, the artifact will be rebuilt",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            specimens = sorted(
                (path for path in quarantine.iterdir() if path.is_dir()),
                key=lambda path: path.stat().st_mtime,
                reverse=True,
            )
        except OSError:  # pragma: no cover - concurrent cleanup
            return
        for stale in specimens[_QUARANTINE_KEEP:]:
            self._purge(stale)

    # -- read / write -------------------------------------------------------
    def fetch(
        self, kind: str, payload: Any, load: Callable[[Path], T]
    ) -> T | None:
        """Load a cached artifact; ``None`` on miss, corruption, or disabled.

        A corrupted or partially written entry (missing/invalid manifest,
        truncated file, loader exception) is quarantined with a warning so
        the caller's rebuild can store a fresh copy while the damaged bytes
        stay inspectable.  An entry that vanished entirely between the
        existence check and the read is a concurrent eviction — a plain
        miss, not corruption.
        """
        if not self.enabled:
            self.stats.inc("misses")
            return None
        entry = self.entry_dir(kind, payload)
        if not entry.is_dir():
            self.stats.inc("misses")
            return None
        if not self._is_complete(entry):
            self.stats.inc("misses")
            if not entry.is_dir():
                return None
            self.stats.inc("invalid")
            self._quarantine(entry, "manifest missing, unreadable, or size mismatch")
            return None
        try:
            value = load(entry)
        except Exception as error:
            self.stats.inc("misses")
            if not entry.is_dir():
                return None
            self.stats.inc("invalid")
            self._quarantine(entry, f"loader failed: {type(error).__name__}")
            return None
        self.stats.inc("hits")
        # LRU touch: a hit makes the entry the most recently used one, so
        # size-cap pruning evicts cold entries first.
        try:
            os.utime(entry / _MANIFEST)
        except OSError:  # pragma: no cover - concurrent purge
            pass
        return value

    def store(self, kind: str, payload: Any, save: Callable[[Path], None]) -> Path | None:
        """Persist an artifact atomically; returns the entry dir (None if disabled).

        ``save`` receives an empty staging directory and writes the entry's
        files into it.  The manifest is written after ``save`` returns and the
        staging directory is renamed into place, so readers only ever see
        complete entries.
        """
        if not self.enabled:
            return None
        entry = self.entry_dir(kind, payload)
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = entry.parent / f".staging-{entry.name}-{uuid.uuid4().hex[:8]}"
        staging.mkdir()
        try:
            save(staging)
            files = {
                path.name: path.stat().st_size
                for path in sorted(staging.iterdir())
                if path.is_file()
            }
            manifest = {
                "kind": str(kind),
                "key": entry.name,
                "files": files,
            }
            manifest_path = staging / _MANIFEST
            manifest_path.write_text(json.dumps(manifest, indent=2))
            manifest_bytes = manifest_path.stat().st_size
            won = False
            if entry.exists():
                # A concurrent writer finished first; keep its entry.
                self._purge(staging)
            else:
                try:
                    os.replace(staging, entry)
                    won = True
                except OSError:
                    # Lost a rename race against a concurrent writer between
                    # the exists() check and the replace; its entry stands.
                    self._purge(staging)
            if won:
                # Only a store that actually placed a new entry counts: a lost
                # race purged its own staging dir, so bumping the counters for
                # it would drift the size estimate above the real on-disk
                # footprint (which total_bytes() — manifest included — is the
                # ground truth for).
                self.stats.inc("stores")
                if self.max_bytes is not None:
                    if self._size_estimate is None:
                        self._size_estimate = self.total_bytes()
                    else:
                        self._size_estimate += sum(files.values()) + manifest_bytes
                    if self._size_estimate > self.max_bytes:
                        self.enforce_size_cap()
            return entry
        except BaseException:
            self._purge(staging)
            raise

    # -- size-capped LRU eviction -------------------------------------------
    def _iter_entries(self) -> list[tuple[float, int, Path]]:
        """(manifest mtime, size, path) of every complete entry directory."""
        entries: list[tuple[float, int, Path]] = []
        if not self.root.is_dir():
            return entries
        for shard in self.root.iterdir():
            # Hidden directories (the quarantine) are not cache entries.
            if not shard.is_dir() or shard.name.startswith("."):
                continue
            for entry in shard.iterdir():
                if not entry.is_dir() or entry.name.startswith(".staging-"):
                    continue
                manifest = entry / _MANIFEST
                try:
                    mtime = manifest.stat().st_mtime
                except OSError:
                    # Incomplete leftovers count as oldest so they go first.
                    mtime = 0.0
                size = 0
                try:
                    size = sum(
                        path.stat().st_size
                        for path in entry.iterdir()
                        if path.is_file()
                    )
                except OSError:  # pragma: no cover - concurrent purge
                    pass
                entries.append((mtime, size, entry))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of all complete entries."""
        return sum(size for _, size, _ in self._iter_entries())

    def enforce_size_cap(self, max_bytes: int | None = None) -> int:
        """Prune least-recently-used entries until the cache fits the cap.

        Entries are evicted oldest-manifest-mtime first (fetch hits refresh
        the mtime, so this is LRU rather than FIFO); the most recently used
        entry always survives, even when it alone exceeds the cap.  Returns
        the number of evicted entries.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None or not self.enabled:
            return 0
        entries = sorted(self._iter_entries())
        total = sum(size for _, size, _ in entries)
        evicted = 0
        while total > cap and len(entries) > 1:
            _, size, path = entries.pop(0)
            self._purge(path)
            total -= size
            evicted += 1
        self.stats.inc("evicted", evicted)
        self._size_estimate = total
        return evicted

    def get_or_build(
        self,
        kind: str,
        payload: Any,
        build: Callable[[], T],
        save: Callable[[T, Path], None],
        load: Callable[[Path], T],
    ) -> T:
        """Fetch, or build + store.  The returned value is never re-loaded,
        so cached and fresh call sites observe identical objects-by-value."""
        cached = self.fetch(kind, payload, load)
        if cached is not None:
            return cached
        value = build()
        self.store(kind, payload, lambda directory: save(value, directory))
        return value
