"""Content-addressed disk cache for expensive experiment artifacts.

The experiment suite spends almost all of its wall-clock in two places:
simulating scenario runs and training the DL2Fence CNNs.  Both are pure
functions of their configuration, so the :class:`ArtifactCache` stores them
on disk keyed by a canonical hash of that configuration
(:mod:`repro.runtime.hashing`) and every re-run — a second table at the same
mesh scale, a figure regenerated after a cosmetic change — loads instead of
recomputing.

Entries are directories.  A writer fills a temporary sibling directory,
writes a ``manifest.json`` (file names + sizes) *last*, then atomically
renames the directory into place; a reader treats a missing manifest, a
missing or size-mismatched file, or a loader exception as a cache miss,
purges the broken entry and rebuilds.  Interrupted writes therefore can never
be loaded.

Environment variables:

``REPRO_CACHE``
    ``0``/``false`` disables the cache entirely (every fetch misses, every
    store is a no-op).  Default: enabled.
``REPRO_CACHE_DIR``
    Cache root.  Default: ``~/.cache/dl2fence-repro``.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro.runtime.hashing import cache_key

__all__ = ["ArtifactCache", "CacheStats", "default_cache_root"]

T = TypeVar("T")

_MANIFEST = "manifest.json"


def default_cache_root() -> Path:
    """Cache root from ``REPRO_CACHE_DIR`` (default ``~/.cache/dl2fence-repro``)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "dl2fence-repro"


def _enabled_from_environment() -> bool:
    raw = os.environ.get("REPRO_CACHE", "").strip().lower()
    return raw not in ("0", "false", "no", "off")


@dataclass
class CacheStats:
    """Hit/miss/store counters (reported by the perf harness)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


@dataclass
class ArtifactCache:
    """Directory-per-entry disk cache with atomic, manifest-validated writes."""

    root: Path = field(default_factory=default_cache_root)
    enabled: bool = field(default_factory=_enabled_from_environment)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @classmethod
    def from_environment(cls) -> "ArtifactCache":
        """Cache configured purely from ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``."""
        return cls()

    @classmethod
    def disabled(cls) -> "ArtifactCache":
        """A cache that never hits and never writes."""
        return cls(enabled=False)

    # -- entry layout -------------------------------------------------------
    def entry_dir(self, kind: str, payload: Any) -> Path:
        """Directory an entry for (kind, payload) lives in (existing or not)."""
        key = cache_key(kind, payload)
        return self.root / key[:2] / key

    def _is_complete(self, entry: Path) -> bool:
        manifest_path = entry / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
            files = manifest["files"]
        except (OSError, ValueError, KeyError):
            return False
        for name, size in files.items():
            data_path = entry / name
            try:
                if data_path.stat().st_size != int(size):
                    return False
            except OSError:
                return False
        return True

    def _purge(self, entry: Path) -> None:
        shutil.rmtree(entry, ignore_errors=True)

    # -- read / write -------------------------------------------------------
    def fetch(
        self, kind: str, payload: Any, load: Callable[[Path], T]
    ) -> T | None:
        """Load a cached artifact; ``None`` on miss, corruption, or disabled.

        A corrupted or partially written entry (missing/invalid manifest,
        truncated file, loader exception) is deleted so the caller's rebuild
        can store a fresh copy.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self.entry_dir(kind, payload)
        if not entry.is_dir():
            self.stats.misses += 1
            return None
        if not self._is_complete(entry):
            self.stats.invalid += 1
            self.stats.misses += 1
            self._purge(entry)
            return None
        try:
            value = load(entry)
        except Exception:
            self.stats.invalid += 1
            self.stats.misses += 1
            self._purge(entry)
            return None
        self.stats.hits += 1
        return value

    def store(self, kind: str, payload: Any, save: Callable[[Path], None]) -> Path | None:
        """Persist an artifact atomically; returns the entry dir (None if disabled).

        ``save`` receives an empty staging directory and writes the entry's
        files into it.  The manifest is written after ``save`` returns and the
        staging directory is renamed into place, so readers only ever see
        complete entries.
        """
        if not self.enabled:
            return None
        entry = self.entry_dir(kind, payload)
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = entry.parent / f".staging-{entry.name}-{uuid.uuid4().hex[:8]}"
        staging.mkdir()
        try:
            save(staging)
            files = {
                path.name: path.stat().st_size
                for path in sorted(staging.iterdir())
                if path.is_file()
            }
            manifest = {
                "kind": str(kind),
                "key": entry.name,
                "files": files,
            }
            (staging / _MANIFEST).write_text(json.dumps(manifest, indent=2))
            if entry.exists():
                # A concurrent writer finished first; keep its entry.
                self._purge(staging)
            else:
                try:
                    os.replace(staging, entry)
                except OSError:
                    # Lost a rename race against a concurrent writer between
                    # the exists() check and the replace; its entry stands.
                    self._purge(staging)
            self.stats.stores += 1
            return entry
        except BaseException:
            self._purge(staging)
            raise

    def get_or_build(
        self,
        kind: str,
        payload: Any,
        build: Callable[[], T],
        save: Callable[[T, Path], None],
        load: Callable[[Path], T],
    ) -> T:
        """Fetch, or build + store.  The returned value is never re-loaded,
        so cached and fresh call sites observe identical objects-by-value."""
        cached = self.fetch(kind, payload, load)
        if cached is not None:
            return cached
        value = build()
        self.store(kind, payload, lambda directory: save(value, directory))
        return value
