"""Canonical hashing of experiment configurations for the artifact cache.

Cache keys must be *stable* (the same configuration always hashes to the same
key, across processes and Python versions) and *sensitive* (changing any
field of any nested configuration object produces a different key).  The
canonical form is a JSON document with sorted keys in which dataclasses carry
their type name, enums their value, and NumPy arrays a digest of their raw
bytes; hashing that document with SHA-256 gives the entry key.

``CACHE_SCHEMA_VERSION`` is folded into every key.  Bump it whenever the
meaning of a cached artifact changes (dataset assembly, training semantics,
serialization layout), so stale entries from older code are never loaded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

import numpy as np

__all__ = ["CACHE_SCHEMA_VERSION", "canonical_payload", "cache_key"]

#: Version salt folded into every cache key (see module docstring).
#: v2: the defense guard consults the cross-window evidence accumulator by
#: default, changing every cached mitigation/robustness episode timeline.
#: v3: degraded-mode sanitisation, staggered release probes and the
#: drain-aware window accounting change every cached episode timeline again.
CACHE_SCHEMA_VERSION = 3


def canonical_payload(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serialisable structure."""
    if isinstance(obj, Enum):
        # Before the scalar checks: str/int-mixin enums are also str/int.
        return {"__enum__": type(obj).__name__, "value": canonical_payload(obj.value)}
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly and avoids locale formatting.
        return {"__float__": repr(obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: canonical_payload(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, np.dtype):
        return {"__dtype__": obj.name}
    if isinstance(obj, np.generic):
        return canonical_payload(obj.item())
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return {"__ndarray__": [list(obj.shape), obj.dtype.name, digest]}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonical_payload(i)) for i in obj)}
    if isinstance(obj, dict):
        items = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                key = json.dumps(canonical_payload(key), sort_keys=True)
            items[key] = canonical_payload(value)
        return {key: items[key] for key in sorted(items)}
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for cache hashing; "
        "convert it to dataclass/enum/scalar/array structure first"
    )


def cache_key(kind: str, payload: Any) -> str:
    """SHA-256 key of a (kind, payload) pair under the current schema version.

    The active simulator backend is folded into every key: all cached
    artifacts derive from simulation, and although the backends are pinned
    fingerprint-identical, sharing entries across them would make a
    cross-backend comparison run (e.g. the nightly ``REPRO_SIM_BACKEND``
    matrix with a shared cache dir) silently serve one backend's results as
    the other's — hiding exactly the divergence such a run exists to catch.
    """
    from repro.noc.backend import resolve_backend

    document = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": str(kind),
        "backend": resolve_backend(),
        "payload": canonical_payload(payload),
    }
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
