"""Deterministic multiprocessing executor for independent experiment tasks.

Sweep points, defended episodes and dataset scenario-runs are embarrassingly
parallel: each task is a pure function of an explicit task descriptor
(including its own seed), so fanning them across worker processes cannot
change any result — only the wall-clock.  :class:`ParallelRunner` preserves
that property by construction:

* every task's seed is derived *before* dispatch (either carried by the task
  descriptor, or spawned from a root seed with
  ``np.random.SeedSequence.spawn``), never from worker-local state;
* results are returned in task order regardless of completion order;
* ``workers <= 1`` short-circuits to a plain in-process loop, so
  ``REPRO_WORKERS=1`` is bit-identical to any other worker count.

The worker count comes from the ``REPRO_WORKERS`` environment variable
(default 1 — serial).  Task functions must be module-level (picklable)
callables taking a single descriptor argument.

Large array payloads (the frame tensors of a 16x16+ scenario run) bypass
the pickle result pipe: :meth:`ParallelRunner.map_arrays` has each worker
write its result's arrays into one ``multiprocessing.shared_memory``
segment and send back only a small descriptor; the parent reconstructs the
arrays straight from the segment (workers write zero-copy, the parent takes
a single copy while detaching so segment lifetime stays bounded).  Disable
with ``REPRO_SHM_FRAMES=0``; the serial path and the fallback are
bit-identical.

Worker processes can die, hang, or be killed; a deterministic executor must
survive that without changing a single result.  When a per-task timeout
(``REPRO_TASK_TIMEOUT`` seconds, or the ``task_timeout`` argument) or a
fault hook is configured, dispatch switches to a **resilient** path: each
task is submitted individually, awaited with its own timeout, and failed or
timed-out tasks are retried on a fresh pool with exponential backoff (the
old pool is terminated outright — a hung worker poisons a pool for every
task queued behind it).  Tasks still failing after ``REPRO_TASK_RETRIES``
rounds fall back to plain serial execution in the parent, which is
bit-identical by construction — and re-raises deterministic task errors
instead of masking them as infrastructure failures.

The optional ``fault`` hook (duck-typed: ``before_task(index, attempt)``
and ``after_task(index, attempt) -> bool``) runs inside the worker around
each task and exists for chaos testing — :mod:`repro.faults.runtime`
provides an implementation, but this module deliberately does not import
it.  The serial short-circuit and the fallback never invoke the hook: they
are the reference results the faulted runs must reproduce.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.obs.metrics import (
    METRICS,
    runner_events_counter,
    runner_task_histogram,
)

__all__ = [
    "ArrayBundle",
    "ParallelRunner",
    "configured_task_retries",
    "configured_task_timeout",
    "configured_workers",
    "derive_seeds",
    "shared_memory_enabled",
]

T = TypeVar("T")
R = TypeVar("R")

#: First-retry sleep; round ``k`` waits ``base * 2**k`` seconds.
_RETRY_BACKOFF_BASE = 0.05


def shared_memory_enabled() -> bool:
    """Shared-memory result transport toggle (``REPRO_SHM_FRAMES``)."""
    raw = os.environ.get("REPRO_SHM_FRAMES", "").strip().lower()
    return raw not in ("0", "false", "no", "off")


@dataclass
class ArrayBundle:
    """A picklable-metadata view of named arrays plus JSON-able metadata.

    The unit of the shared-memory transport: ``pack`` splits a result into
    ``meta`` (small, pickled normally) and ``arrays`` (large, shipped
    through one shared-memory segment per bundle).
    """

    meta: Any
    arrays: dict[str, np.ndarray]


@dataclass
class _ShmHandle:
    """Descriptor of a bundle parked in a shared-memory segment."""

    meta: Any
    segment_name: str
    layout: list[tuple[str, tuple[int, ...], str, int]]  # name, shape, dtype, offset


@dataclass
class _RawHandle:
    """Fallback when shared memory is unavailable: plain pickled bundle."""

    bundle: ArrayBundle


class _ShmCall:
    """Module-level callable wrapper executed in the worker process."""

    def __init__(self, fn: Callable[[T], ArrayBundle]) -> None:
        self.fn = fn

    def __call__(self, task: T):
        bundle = self.fn(task)
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - ancient platforms
            return _RawHandle(bundle)
        layout: list[tuple[str, tuple[int, ...], str, int]] = []
        offset = 0
        for name, array in bundle.arrays.items():
            size = int(array.nbytes)
            layout.append((name, tuple(array.shape), array.dtype.str, offset))
            offset += size
        if offset == 0:
            return _RawHandle(bundle)
        try:
            segment = shared_memory.SharedMemory(create=True, size=offset)
        except OSError:  # pragma: no cover - e.g. /dev/shm unavailable
            return _RawHandle(bundle)
        try:
            for (name, shape, dtype, start), array in zip(
                layout, bundle.arrays.values()
            ):
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=start
                )
                view[...] = array
        except BaseException:
            # The parent will never see this segment's name, so closing alone
            # would strand the allocation in /dev/shm for the pool's lifetime;
            # unlink before re-raising.
            segment.close()
            segment.unlink()
            raise
        handle = _ShmHandle(meta=bundle.meta, segment_name=segment.name, layout=layout)
        segment.close()
        return handle


def _unpack_handle(handle) -> ArrayBundle:
    """Rebuild a bundle in the parent; frees the segment."""
    if isinstance(handle, _RawHandle):
        return handle.bundle
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=handle.segment_name)
    try:
        arrays = {}
        for name, shape, dtype, offset in handle.layout:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
            )
            arrays[name] = view.copy()
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            # A worker-side resource tracker beat us to the unlink (it fires
            # when a pool worker exits); the attach above kept our mapping
            # valid, so the copy is intact and the segment is already gone.
            pass
    return ArrayBundle(meta=handle.meta, arrays=arrays)


def _discard_handle(handle) -> None:
    """Free a handle's segment without reading it (error-path cleanup)."""
    if isinstance(handle, _RawHandle):
        return
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=handle.segment_name)
    except OSError:  # pragma: no cover - already gone
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - concurrent tracker unlink
        pass


def configured_workers(default: int = 1) -> int:
    """Worker count from ``REPRO_WORKERS`` (default: serial)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    return max(1, value)


def configured_task_timeout(default: float | None = None) -> float | None:
    """Per-task timeout in seconds from ``REPRO_TASK_TIMEOUT`` (default: off)."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_TASK_TIMEOUT must be a number, got {raw!r}") from None
    return value if value > 0 else None


def configured_task_retries(default: int = 2) -> int:
    """Retry rounds for failed/timed-out tasks from ``REPRO_TASK_RETRIES``."""
    raw = os.environ.get("REPRO_TASK_RETRIES", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_TASK_RETRIES must be an integer, got {raw!r}") from None
    return max(0, value)


class _GuardedCall:
    """Worker-side wrapper of one resilient dispatch.

    Runs the (duck-typed) fault hook around the task, packs array bundles
    into shared memory when asked, and — on an injected exit-crash — frees
    the already-parked segment before raising, so chaos runs cannot strand
    allocations in ``/dev/shm``.
    """

    def __init__(self, fn: Callable, fault: Any = None, pack: bool = False) -> None:
        self.fn = fn
        self.fault = fault
        self.pack = pack

    def __call__(self, payload: tuple[int, int, Any]):
        index, attempt, task = payload
        if self.fault is not None:
            before = getattr(self.fault, "before_task", None)
            if before is not None:
                before(index, attempt)
        call = _ShmCall(self.fn) if self.pack else self.fn
        result = call(task)
        if self.fault is not None:
            after = getattr(self.fault, "after_task", None)
            if after is not None and after(index, attempt):
                if self.pack:
                    _discard_handle(result)
                raise RuntimeError(
                    f"injected worker crash after task {index} (attempt {attempt})"
                )
        return result


def derive_seeds(root_seed: int, count: int) -> list[int]:
    """``count`` independent per-task seeds from one root seed.

    Uses ``np.random.SeedSequence.spawn`` so the streams are statistically
    independent, and depends only on ``(root_seed, count, index)`` — the same
    call yields the same seeds in every process and under every worker count.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(int(root_seed)).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


class ParallelRunner:
    """Ordered, deterministic ``map`` over independent tasks."""

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        task_timeout: float | None = None,
        task_retries: int | None = None,
        fault: Any = None,
    ) -> None:
        self.workers = configured_workers() if workers is None else max(1, int(workers))
        if start_method is None:
            # fork shares the already-imported interpreter state, which keeps
            # worker start-up cheap; fall back to spawn where fork is absent.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        if task_timeout is None:
            self.task_timeout = configured_task_timeout()
        else:
            self.task_timeout = float(task_timeout) if task_timeout > 0 else None
        self.task_retries = (
            configured_task_retries()
            if task_retries is None
            else max(0, int(task_retries))
        )
        self.fault = fault

    @classmethod
    def from_environment(cls) -> "ParallelRunner":
        return cls()

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    @property
    def resilient(self) -> bool:
        """Whether parallel dispatch uses the per-task retry/timeout path."""
        return self.fault is not None or self.task_timeout is not None

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task; results are in task order.

        Serial (``workers <= 1`` or fewer than two tasks) runs in-process;
        otherwise a process pool executes the tasks with ``chunksize=1`` so
        long tasks do not serialise behind short ones.  With a task timeout
        or a fault hook configured the pool dispatch is resilient: crashed,
        hung or poisoned tasks are retried on fresh pools and ultimately
        recomputed serially in the parent, so the returned list is always
        bit-identical to a serial run.
        """
        task_list = list(tasks)
        if self.is_serial or len(task_list) <= 1:
            return self._run_serial(fn, task_list)
        if self.resilient:
            return self._map_resilient(fn, task_list, pack=False)
        context = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(task_list))
        with context.Pool(processes=processes) as pool:
            if not METRICS.active:
                return pool.map(fn, task_list, chunksize=1)
            start = perf_counter()
            results = pool.map(fn, task_list, chunksize=1)
            runner_task_histogram().observe(perf_counter() - start, mode="pool_map")
            runner_events_counter().inc(len(task_list), event="task", mode="pool")
            return results

    def _run_serial(self, fn: Callable, task_list: list) -> list:
        """The in-process reference path, with per-task timing when metered."""
        if not METRICS.active:
            return [fn(task) for task in task_list]
        hist = runner_task_histogram()
        counter = runner_events_counter()
        results = []
        for task in task_list:
            start = perf_counter()
            results.append(fn(task))
            hist.observe(perf_counter() - start, mode="serial")
            counter.inc(event="task", mode="serial")
        return results

    def _map_resilient(self, fn: Callable, task_list: list, pack: bool) -> list:
        """Per-task dispatch with timeout, retry rounds and serial fallback.

        Every attempt round runs on a *fresh* pool and the previous pool is
        terminated, not closed: a worker hung inside a task would otherwise
        hold its slot (and ``close``/``join``) forever.  Shared-memory
        handles are unpacked while their pool is still alive — see
        :meth:`map_arrays` for why.  Whatever still fails after the retry
        budget is recomputed in the parent with the bare ``fn`` (no fault
        hook), which both restores the bit-identical serial result and lets
        a deterministic task error surface as itself.
        """
        context = multiprocessing.get_context(self.start_method)
        call = _GuardedCall(fn, fault=self.fault, pack=pack)
        results: dict[int, Any] = {}
        pending = list(range(len(task_list)))
        for attempt in range(self.task_retries + 1):
            if not pending:
                break
            processes = min(self.workers, len(pending))
            pool = context.Pool(processes=processes)
            failed: list[int] = []
            try:
                dispatched = [
                    (
                        index,
                        pool.apply_async(
                            call, ((index, attempt, task_list[index]),)
                        ),
                    )
                    for index in pending
                ]
                for index, handle in dispatched:
                    try:
                        value = handle.get(self.task_timeout)
                    except multiprocessing.TimeoutError:
                        failed.append(index)
                        if METRICS.active:
                            runner_events_counter().inc(event="timeout")
                    except Exception:
                        failed.append(index)
                        if METRICS.active:
                            runner_events_counter().inc(event="failure")
                    else:
                        results[index] = _unpack_handle(value) if pack else value
                        if METRICS.active:
                            runner_events_counter().inc(
                                event="task", mode="resilient"
                            )
            finally:
                pool.terminate()
                pool.join()
            pending = failed
            if pending and attempt < self.task_retries:
                if METRICS.active:
                    runner_events_counter().inc(len(pending), event="retry")
                time.sleep(_RETRY_BACKOFF_BASE * 2**attempt)
        if pending and METRICS.active:
            runner_events_counter().inc(len(pending), event="serial_fallback")
        for index in pending:
            results[index] = fn(task_list[index])
        return [results[index] for index in range(len(task_list))]

    def map_seeded(
        self,
        fn: Callable[[tuple[T, int]], R],
        items: Sequence[T],
        root_seed: int,
    ) -> list[R]:
        """Map over ``(item, seed)`` pairs with per-task derived seeds."""
        seeds = derive_seeds(root_seed, len(items))
        return self.map(fn, list(zip(items, seeds)))

    def map_arrays(
        self, fn: Callable[[T], ArrayBundle], tasks: Iterable[T]
    ) -> list[ArrayBundle]:
        """``map`` for array-heavy results, routed through shared memory.

        ``fn`` must return an :class:`ArrayBundle`.  In worker processes the
        bundle's arrays are written into one shared-memory segment and only
        a small descriptor travels through the pickle pipe; the parent
        rebuilds the arrays from the segment and unlinks it.  Serial runs,
        a ``REPRO_SHM_FRAMES=0`` override, and platforms without shared
        memory all fall back to the plain (bit-identical) pickle path.
        """
        task_list = list(tasks)
        if self.is_serial or len(task_list) <= 1:
            return self._run_serial(fn, task_list)
        if not shared_memory_enabled():
            return self.map(fn, task_list)
        if self.resilient:
            return self._map_resilient(fn, task_list, pack=True)
        context = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(task_list))
        bundles: list[ArrayBundle] = []
        # Unpack while the pool is still alive: a segment is parked between
        # the worker's close() and the parent's unlink, and a worker-side
        # resource tracker unlinks everything still registered the moment
        # its worker exits — consuming the handles after the pool closed
        # raced that cleanup (FileNotFoundError on attach at 32x32 scale).
        with context.Pool(processes=processes) as pool:
            handles = pool.map(_ShmCall(fn), task_list, chunksize=1)
            try:
                for handle in handles:
                    bundles.append(_unpack_handle(handle))
            except BaseException:
                # Free the segments of the handles not consumed yet —
                # including the one whose unpack just failed, which may not
                # have reached its own cleanup — so a failed unpack cannot
                # strand tens of MB in /dev/shm for the rest of a
                # long-lived sweep process.
                for handle in handles[len(bundles) :]:
                    _discard_handle(handle)
                raise
        return bundles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(workers={self.workers}, start={self.start_method!r})"
