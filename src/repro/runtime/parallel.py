"""Deterministic multiprocessing executor for independent experiment tasks.

Sweep points, defended episodes and dataset scenario-runs are embarrassingly
parallel: each task is a pure function of an explicit task descriptor
(including its own seed), so fanning them across worker processes cannot
change any result — only the wall-clock.  :class:`ParallelRunner` preserves
that property by construction:

* every task's seed is derived *before* dispatch (either carried by the task
  descriptor, or spawned from a root seed with
  ``np.random.SeedSequence.spawn``), never from worker-local state;
* results are returned in task order regardless of completion order;
* ``workers <= 1`` short-circuits to a plain in-process loop, so
  ``REPRO_WORKERS=1`` is bit-identical to any other worker count.

The worker count comes from the ``REPRO_WORKERS`` environment variable
(default 1 — serial).  Task functions must be module-level (picklable)
callables taking a single descriptor argument.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["ParallelRunner", "configured_workers", "derive_seeds"]

T = TypeVar("T")
R = TypeVar("R")


def configured_workers(default: int = 1) -> int:
    """Worker count from ``REPRO_WORKERS`` (default: serial)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    return max(1, value)


def derive_seeds(root_seed: int, count: int) -> list[int]:
    """``count`` independent per-task seeds from one root seed.

    Uses ``np.random.SeedSequence.spawn`` so the streams are statistically
    independent, and depends only on ``(root_seed, count, index)`` — the same
    call yields the same seeds in every process and under every worker count.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(int(root_seed)).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


class ParallelRunner:
    """Ordered, deterministic ``map`` over independent tasks."""

    def __init__(self, workers: int | None = None, start_method: str | None = None) -> None:
        self.workers = configured_workers() if workers is None else max(1, int(workers))
        if start_method is None:
            # fork shares the already-imported interpreter state, which keeps
            # worker start-up cheap; fall back to spawn where fork is absent.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method

    @classmethod
    def from_environment(cls) -> "ParallelRunner":
        return cls()

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task; results are in task order.

        Serial (``workers <= 1`` or fewer than two tasks) runs in-process;
        otherwise a process pool executes the tasks with ``chunksize=1`` so
        long tasks do not serialise behind short ones.
        """
        task_list = list(tasks)
        if self.is_serial or len(task_list) <= 1:
            return [fn(task) for task in task_list]
        context = multiprocessing.get_context(self.start_method)
        processes = min(self.workers, len(task_list))
        with context.Pool(processes=processes) as pool:
            return pool.map(fn, task_list, chunksize=1)

    def map_seeded(
        self,
        fn: Callable[[tuple[T, int]], R],
        items: Sequence[T],
        root_seed: int,
    ) -> list[R]:
        """Map over ``(item, seed)`` pairs with per-task derived seeds."""
        seeds = derive_seeds(root_seed, len(items))
        return self.map(fn, list(zip(items, seeds)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRunner(workers={self.workers}, start={self.start_method!r})"
