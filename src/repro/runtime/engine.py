"""The shared experiment engine: cached datasets, cached models, parallel fan-out.

Every experiment driver (tables, figures, sweeps, benches) routes its two
expensive stages through this module:

* **Scenario runs** — the simulated monitor output a dataset is assembled
  from.  :meth:`ExperimentEngine.build_runs` reproduces
  :meth:`repro.monitor.dataset.DatasetBuilder.build_runs` bit for bit (same
  scenario draws, same per-run seeds) but executes the independent
  simulations through the :class:`~repro.runtime.parallel.ParallelRunner`
  and memoises the result on disk.  The scenario draws are made serially
  up-front — they are cheap and order-dependent — so only the pure
  simulations fan out.
* **Trained pipelines** — :meth:`ExperimentEngine.trained_fence` /
  :meth:`ExperimentEngine.trained_detector` return models loaded from the
  cache when the full training configuration (dataset + architecture +
  epochs + NN dtype) has been seen before; a figure re-run or a second sweep
  at the same mesh scale never retrains.
* **Sweep records** — :meth:`ExperimentEngine.cached_records` memoises a
  list-of-dicts sweep result (latency points, mitigation points, table rows)
  as JSON.

Cached artifacts round-trip by value: a loaded scenario run compares equal,
frame for frame, with a freshly simulated one, and a loaded model produces
bit-identical decisions — property-tested in ``tests/runtime``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.core.detector import DoSDetector
from repro.core.localizer import DoSProfileLocalizer
from repro.core.pipeline import DL2Fence
from repro.monitor.dataset import DatasetBuilder, DatasetConfig, ScenarioRun
from repro.monitor.features import FeatureKind
from repro.monitor.frames import DirectionalFrame, FrameSample, FrameSet
from repro.noc.topology import Direction
from repro.nn.dtype import default_dtype
from repro.runtime.cache import ArtifactCache
from repro.runtime.parallel import ArrayBundle, ParallelRunner
from repro.traffic.scenario import AttackScenario, ScenarioGenerator, benchmark_names

__all__ = ["ExperimentEngine", "RunTask", "fence_cache_payload"]


@dataclass(frozen=True)
class RunTask:
    """One independent simulation of the dataset-generation plan."""

    config: DatasetConfig
    benchmark: str
    scenario: AttackScenario | None
    seed: int


def _simulate_run(task: RunTask) -> ScenarioRun:
    """Execute one scenario run (module-level so worker processes can pickle it)."""
    builder = DatasetBuilder(task.config)
    return builder.run_benchmark(task.benchmark, scenario=task.scenario, seed=task.seed)


def _run_to_bundle(run: ScenarioRun) -> ArrayBundle:
    """Split a scenario run into small metadata + stacked frame tensors.

    The shape the shared-memory transport ships: the frame tensors (the
    bulk of a 16x16+ run) travel through one shared-memory segment instead
    of the worker pool's pickle pipe.
    """
    arrays: dict[str, np.ndarray] = {}
    for kind in FeatureKind:
        for direction, dname in _DIRECTION_NAMES.items():
            frames = [
                sample.feature(kind).frames[direction].values
                for sample in run.samples
            ]
            if frames:
                arrays[f"{kind.value}_{dname}"] = np.stack(frames, axis=0)
    meta = {
        "benchmark": run.benchmark,
        "scenario": _scenario_to_json(run.scenario),
        "rows": run.topology.rows,
        "cycles": [sample.cycle for sample in run.samples],
        "attack_active": [bool(sample.attack_active) for sample in run.samples],
    }
    return ArrayBundle(meta=meta, arrays=arrays)


def _run_from_bundle(bundle: ArrayBundle) -> ScenarioRun:
    """Inverse of :func:`_run_to_bundle` (parent-side reconstruction)."""
    from repro.noc.topology import MeshTopology

    meta = bundle.meta
    topology = MeshTopology(rows=int(meta["rows"]))
    samples = []
    for index, cycle in enumerate(meta["cycles"]):
        frame_sets = {}
        for kind in FeatureKind:
            frames = {}
            for direction, dname in _DIRECTION_NAMES.items():
                stacked = bundle.arrays[f"{kind.value}_{dname}"]
                frames[direction] = DirectionalFrame(
                    direction=direction,
                    kind=kind,
                    values=stacked[index],
                    cycle=int(cycle),
                )
            frame_sets[kind] = FrameSet(kind=kind, frames=frames, cycle=int(cycle))
        samples.append(
            FrameSample(
                cycle=int(cycle),
                vco=frame_sets[FeatureKind.VCO],
                boc=frame_sets[FeatureKind.BOC],
                attack_active=bool(meta["attack_active"][index]),
            )
        )
    return ScenarioRun(
        benchmark=str(meta["benchmark"]),
        scenario=_scenario_from_json(meta["scenario"]),
        samples=samples,
        topology=topology,
    )


def _simulate_run_bundle(task: RunTask) -> ArrayBundle:
    """Worker entry point: simulate, then hand frames over as tensors."""
    return _run_to_bundle(_simulate_run(task))


def _simulate_batched_runs(tasks: tuple[RunTask, ...]) -> list[ScenarioRun]:
    """Simulate independent run tasks as one episode-batched simulation.

    Replays :meth:`DatasetBuilder.run_benchmark` for every task — same
    workload/attacker seeds, same monitor wiring, same cycle count — but on
    the lanes of one :class:`~repro.noc.batch_sim.BatchedNoCSimulator`, so
    every kernel dispatch advances all of them at once.  Per-episode results
    are fingerprint-identical to solo runs (the batched-equivalence pin).
    """
    from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
    from repro.noc.batch_sim import BatchedNoCSimulator

    config = tasks[0].config
    builder = DatasetBuilder(config)
    batched = BatchedNoCSimulator(config.simulation_config(), episodes=len(tasks))
    monitors = []
    for index, task in enumerate(tasks):
        lane = batched.lane(index)
        lane.add_source(builder.make_workload(task.benchmark, seed=task.seed))
        if task.scenario is not None:
            lane.add_source(
                task.scenario.attacker_source(
                    builder.topology,
                    seed=task.seed + 1,
                    packet_size_flits=config.packet_size_flits,
                )
            )
        monitors.append(
            GlobalPerformanceMonitor(
                MonitorConfig(sample_period=config.sample_period)
            ).attach(lane)
        )
    batched.run(config.run_cycles)
    return [
        ScenarioRun(
            benchmark=task.benchmark,
            scenario=task.scenario,
            samples=monitor.samples[: config.samples_per_run],
            topology=builder.topology,
        )
        for task, monitor in zip(tasks, monitors)
    ]


def _simulate_batch_bundle(tasks: tuple[RunTask, ...]) -> ArrayBundle:
    """Worker entry point for one episode-batched chunk of run tasks."""
    metas = []
    arrays: dict[str, np.ndarray] = {}
    for r_index, run in enumerate(_simulate_batched_runs(tasks)):
        bundle = _run_to_bundle(run)
        metas.append(bundle.meta)
        for key, values in bundle.arrays.items():
            arrays[f"r{r_index}_{key}"] = values
    return ArrayBundle(meta=metas, arrays=arrays)


def _runs_from_batch_bundle(bundle: ArrayBundle) -> list[ScenarioRun]:
    """Inverse of :func:`_simulate_batch_bundle` (parent-side)."""
    runs = []
    for r_index, meta in enumerate(bundle.meta):
        prefix = f"r{r_index}_"
        arrays = {
            key[len(prefix) :]: values
            for key, values in bundle.arrays.items()
            if key.startswith(prefix)
        }
        runs.append(_run_from_bundle(ArrayBundle(meta=meta, arrays=arrays)))
    return runs


def _plan_run_tasks(
    config: DatasetConfig,
    benchmarks: list[str],
    scenarios_per_benchmark: int,
    attacker_counts: tuple[int, ...],
    include_benign: bool,
    seed: int,
) -> list[RunTask]:
    """The exact task sequence of ``DatasetBuilder.build_runs`` (same seeds)."""
    generator = ScenarioGenerator(config.topology(), seed=seed)
    tasks: list[RunTask] = []
    for b_index, benchmark in enumerate(benchmarks):
        run_seed = seed + 101 * (b_index + 1)
        if include_benign:
            tasks.append(RunTask(config, benchmark, None, run_seed))
        for s_index in range(scenarios_per_benchmark):
            count = attacker_counts[s_index % len(attacker_counts)]
            scenario = generator.random_scenario(
                num_attackers=count, fir=config.fir, benchmark=benchmark
            )
            tasks.append(RunTask(config, benchmark, scenario, run_seed + s_index + 1))
    return tasks


# -- scenario-run (de)serialization -----------------------------------------

_DIRECTION_NAMES = {d: d.value for d in Direction.cardinal()}


def _scenario_to_json(scenario: AttackScenario | None) -> dict | None:
    if scenario is None:
        return None
    return {
        "attackers": list(scenario.attackers),
        "victim": scenario.victim,
        "fir": scenario.fir,
        "benchmark": scenario.benchmark,
    }


def _scenario_from_json(data: dict | None) -> AttackScenario | None:
    if data is None:
        return None
    return AttackScenario(
        attackers=tuple(int(a) for a in data["attackers"]),
        victim=int(data["victim"]),
        fir=float(data["fir"]),
        benchmark=str(data["benchmark"]),
    )


def _save_run(run: ScenarioRun, directory: Path) -> None:
    """Persist a single scenario run (one per-task cache entry)."""
    _save_runs([run], directory)


def _load_run(directory: Path) -> ScenarioRun:
    (run,) = _load_runs(directory)
    return run


def _save_runs(runs: list[ScenarioRun], directory: Path) -> None:
    """Persist runs on disk in the shared ArrayBundle shape (npz + json)."""
    meta = []
    arrays: dict[str, np.ndarray] = {}
    for r_index, run in enumerate(runs):
        bundle = _run_to_bundle(run)
        meta.append(bundle.meta)
        for key, values in bundle.arrays.items():
            arrays[f"r{r_index}_{key}"] = values
    (directory / "runs.json").write_text(json.dumps(meta))
    np.savez(directory / "runs.npz", **arrays)


def _load_runs(directory: Path) -> list[ScenarioRun]:
    meta = json.loads((directory / "runs.json").read_text())
    runs: list[ScenarioRun] = []
    with np.load(directory / "runs.npz") as archive:
        for r_index, entry in enumerate(meta):
            prefix = f"r{r_index}_"
            arrays = {
                name[len(prefix) :]: archive[name]
                for name in archive.files
                if name.startswith(prefix)
            }
            runs.append(_run_from_bundle(ArrayBundle(meta=entry, arrays=arrays)))
    return runs


def fence_cache_payload(
    config: DatasetConfig,
    fence_config: DL2FenceConfig,
    benchmarks: list[str],
    scenarios_per_benchmark: int,
    attacker_counts: tuple[int, ...],
    seed: int,
    detector_epochs: int,
    localizer_epochs: int,
) -> dict:
    """The full training configuration identifying a trained fence.

    Shared between :meth:`ExperimentEngine.trained_fence` (its cache key)
    and dependent per-episode caches (e.g. the mitigation sweep's), so an
    episode entry is reused exactly when the pipeline that defended it is
    the same — by construction, not by keeping two literals in sync.
    """
    return {
        "config": config,
        "fence": fence_config,
        "benchmarks": list(benchmarks),
        "scenarios_per_benchmark": scenarios_per_benchmark,
        "attacker_counts": tuple(attacker_counts),
        "seed": seed,
        "detector_epochs": detector_epochs,
        "localizer_epochs": localizer_epochs,
        "dtype": default_dtype(),
    }


# -- the engine ---------------------------------------------------------------


@dataclass
class ExperimentEngine:
    """Cache + parallel executor shared by every experiment entry point."""

    cache: ArtifactCache = field(default_factory=ArtifactCache.from_environment)
    runner: ParallelRunner = field(default_factory=ParallelRunner.from_environment)

    @classmethod
    def from_environment(cls) -> "ExperimentEngine":
        """Engine honouring REPRO_CACHE[_DIR] and REPRO_WORKERS."""
        return cls()

    @classmethod
    def disabled(cls) -> "ExperimentEngine":
        """No caching, serial execution — the legacy behaviour."""
        return cls(cache=ArtifactCache.disabled(), runner=ParallelRunner(workers=1))

    # -- datasets -----------------------------------------------------------
    def build_runs(
        self,
        config: DatasetConfig,
        benchmarks: list[str] | None = None,
        scenarios_per_benchmark: int = 1,
        attacker_counts: tuple[int, ...] = (1, 2),
        include_benign: bool = True,
        seed: int | None = None,
    ) -> list[ScenarioRun]:
        """Cached, parallel equivalent of ``DatasetBuilder.build_runs``.

        Every scenario run is cached *individually*, keyed by its
        :class:`RunTask` (config + benchmark + scenario + seed).  Overlapping
        run lists therefore share entries: Tables 1-3 and the Table-4
        comparison draw identical scenarios for their common benchmarks, so
        only the first caller simulates them.  Only the missing tasks are
        fanned out across the worker processes.
        """
        seed = config.seed if seed is None else seed
        if benchmarks is None:
            benchmarks = benchmark_names()
        tasks = _plan_run_tasks(
            config,
            list(benchmarks),
            scenarios_per_benchmark,
            tuple(attacker_counts),
            include_benign,
            seed,
        )
        runs: list[ScenarioRun | None] = [
            self.cache.fetch("scenario-run", task, _load_run) for task in tasks
        ]
        missing = [index for index, run in enumerate(runs) if run is None]
        fresh = self._simulate_missing([tasks[index] for index in missing])
        for index, run in zip(missing, fresh):
            runs[index] = run
            self.cache.store(
                "scenario-run", tasks[index], lambda d, run=run: _save_run(run, d)
            )
        return runs

    def _simulate_missing(self, pending: list[RunTask]) -> list[ScenarioRun]:
        """Simulate the uncached run tasks, episode-batched when possible.

        With the ``soa`` backend, pending tasks are grouped into
        episode-batched chunks of :func:`repro.noc.backend.episode_batch_size`
        lanes each — one kernel dispatch per cycle advances a whole chunk —
        and the chunks fan out across the worker processes (process
        parallelism multiplying on top of the batch axis).  The ``object``
        backend (or ``REPRO_EPISODE_BATCH<=1``) keeps the one-task-per-call
        path.
        """
        from repro.noc.backend import episode_batch_size, resolve_backend

        batch = episode_batch_size()
        if len(pending) > 1 and batch > 1 and resolve_backend() == "soa":
            chunks = [
                tuple(pending[start : start + batch])
                for start in range(0, len(pending), batch)
            ]
            if self.runner.is_serial or len(chunks) == 1:
                fresh: list[ScenarioRun] = []
                for chunk in chunks:
                    fresh.extend(_simulate_batched_runs(chunk))
                return fresh
            fresh = []
            for bundle in self.runner.map_arrays(_simulate_batch_bundle, chunks):
                fresh.extend(_runs_from_batch_bundle(bundle))
            return fresh
        if self.runner.is_serial or len(pending) <= 1:
            return self.runner.map(_simulate_run, pending)
        # Parallel path: workers return frame tensors through shared
        # memory instead of pickling whole ScenarioRun objects back.
        return [
            _run_from_bundle(bundle)
            for bundle in self.runner.map_arrays(_simulate_run_bundle, pending)
        ]

    # -- trained models -----------------------------------------------------
    def trained_fence(
        self,
        config: DatasetConfig,
        fence_config: DL2FenceConfig,
        benchmarks: list[str] | None = None,
        scenarios_per_benchmark: int = 1,
        seed: int | None = None,
        detector_epochs: int = 60,
        localizer_epochs: int = 80,
        attacker_counts: tuple[int, ...] = (1, 2),
    ) -> tuple[DL2Fence, DatasetBuilder]:
        """A trained DL2Fence pipeline, loaded from cache when available."""
        seed = config.seed if seed is None else seed
        if benchmarks is None:
            benchmarks = benchmark_names()
        builder = DatasetBuilder(config)
        payload = fence_cache_payload(
            config,
            fence_config,
            list(benchmarks),
            scenarios_per_benchmark,
            tuple(attacker_counts),
            seed,
            detector_epochs,
            localizer_epochs,
        )

        def build() -> DL2Fence:
            runs = self.build_runs(
                config,
                benchmarks=list(benchmarks),
                scenarios_per_benchmark=scenarios_per_benchmark,
                attacker_counts=tuple(attacker_counts),
                seed=seed,
            )
            fence = DL2Fence(builder.topology, fence_config)
            fence.fit_from_runs(
                builder,
                runs,
                detector_epochs=detector_epochs,
                localizer_epochs=localizer_epochs,
            )
            return fence

        def save(fence: DL2Fence, directory: Path) -> None:
            fence.detector.save(directory / "detector.npz")
            fence.localizer.save(directory / "localizer.npz")

        def load(directory: Path) -> DL2Fence:
            detector = DoSDetector.load(directory / "detector.npz", config=fence_config)
            localizer = DoSProfileLocalizer.load(
                directory / "localizer.npz", config=fence_config
            )
            return DL2Fence(
                builder.topology, fence_config, detector=detector, localizer=localizer
            )

        fence = self.cache.get_or_build("trained-fence", payload, build, save, load)
        return fence, builder

    def trained_detector(
        self,
        config: DatasetConfig,
        fence_config: DL2FenceConfig,
        benchmarks: list[str],
        scenarios_per_benchmark: int,
        seed: int,
        feature: FeatureKind,
        epochs: int,
        runs: list[ScenarioRun] | None = None,
    ) -> DoSDetector:
        """A standalone trained detector (Table-4 comparison), cached.

        ``runs`` may carry already-built scenario runs for the *same*
        configuration so the no-cache path does not re-simulate them; they
        are only consulted on a cache miss and do not enter the key.
        """
        payload = {
            "config": config,
            "fence": fence_config,
            "benchmarks": list(benchmarks),
            "scenarios_per_benchmark": scenarios_per_benchmark,
            "seed": seed,
            "feature": feature,
            "epochs": epochs,
            "dtype": default_dtype(),
        }

        def build() -> DoSDetector:
            builder = DatasetBuilder(config)
            train_runs = runs if runs is not None else self.build_runs(
                config,
                benchmarks=list(benchmarks),
                scenarios_per_benchmark=scenarios_per_benchmark,
                seed=seed,
            )
            train_set = builder.detection_dataset(train_runs, feature=feature)
            detector = DoSDetector(train_set.inputs.shape[1:], config=fence_config)
            detector.fit(train_set, epochs=epochs)
            return detector

        def save(detector: DoSDetector, directory: Path) -> None:
            detector.save(directory / "detector.npz")

        def load(directory: Path) -> DoSDetector:
            return DoSDetector.load(directory / "detector.npz", config=fence_config)

        return self.cache.get_or_build(
            "trained-detector", payload, build, save, load
        )

    # -- generic sweep records ----------------------------------------------
    def cached_records(
        self,
        kind: str,
        payload: Any,
        build: Callable[[], list[dict]],
    ) -> list[dict]:
        """Memoise a list-of-dicts sweep result as a JSON artifact."""

        def save(records: list[dict], directory: Path) -> None:
            (directory / "records.json").write_text(json.dumps(records))

        def load(directory: Path) -> list[dict]:
            return json.loads((directory / "records.json").read_text())

        return self.cache.get_or_build(kind, payload, build, save, load)
