"""Parallel cache-aware experiment engine.

This package is the shared runtime substrate of the experiment suite: a
content-addressed disk cache for expensive artifacts (simulated scenario
runs, trained DL2Fence models, sweep records), a deterministic
multiprocessing executor for independent sweep points, and the
:class:`~repro.runtime.engine.ExperimentEngine` facade that the experiment
drivers in :mod:`repro.experiments` route through.

Environment variables (all optional):

``REPRO_CACHE=0``       disable the artifact cache
``REPRO_CACHE_DIR``     cache root (default ``~/.cache/dl2fence-repro``)
``REPRO_WORKERS``       worker processes for sweep fan-out (default 1)
"""

from repro.runtime.cache import ArtifactCache, CacheStats, default_cache_root
from repro.runtime.engine import ExperimentEngine, RunTask
from repro.runtime.hashing import CACHE_SCHEMA_VERSION, cache_key, canonical_payload
from repro.runtime.parallel import ParallelRunner, configured_workers, derive_seeds

__all__ = [
    "ArtifactCache",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ExperimentEngine",
    "ParallelRunner",
    "RunTask",
    "cache_key",
    "canonical_payload",
    "configured_workers",
    "default_cache_root",
    "derive_seeds",
]
