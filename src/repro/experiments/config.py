"""Shared configuration of the reproduction experiments.

The paper's evaluation uses a 16x16 mesh with 1000-cycle sampling windows;
that is reachable with this code base but takes minutes per table, so the
default experiment configuration uses an 8x8 mesh and shorter windows (the
same scale as most related works).  Every knob can be raised back to the
paper's values — the benchmark modules read the ``REPRO_MESH_ROWS``,
``REPRO_SAMPLES_PER_RUN`` and ``REPRO_SCENARIOS_PER_BENCHMARK`` environment
variables so the full-scale experiment can be launched without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.monitor.dataset import DatasetConfig

__all__ = ["ExperimentConfig", "OPERATING_POINTS", "operating_point"]

#: Adaptive operating points keyed by mesh scale, as ``(max_rows, benign
#: injection rate, training scenarios per benchmark)``.  Larger meshes run a
#: lower per-node benign rate (bisection-limited: at 0.02 the ambient
#: congestion of a 32x32 mesh buries a single-flow flood signature) and need
#: a wider spread of training scenarios for the detector to generalize
#: across the larger placement space — at 16x16 a spread of 2 leaves the
#: detector nearly blind to edge-row/column flows (measured p ≈ 0.05 on a
#: FIR-0.8 edge-column flood), and the 32x32 row reproduces the hand-tuned
#: point the first recorded 32x32 sweep needed.
OPERATING_POINTS: tuple[tuple[int, float, int], ...] = (
    (12, 0.02, 2),
    (16, 0.02, 6),
    (24, 0.015, 8),
    (10_000, 0.01, 12),
)


def operating_point(rows: int) -> tuple[float, int]:
    """(benign injection rate, scenarios per benchmark) for a mesh scale."""
    if rows < 4:
        raise ValueError("rows must be >= 4")
    for max_rows, rate, spread in OPERATING_POINTS:
        if rows <= max_rows:
            return rate, spread
    raise AssertionError("OPERATING_POINTS must cover every scale")  # pragma: no cover


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and training parameters shared by the table/figure drivers."""

    rows: int = 8
    benign_injection_rate: float = 0.02
    fir: float = 0.8
    sample_period: int = 200
    samples_per_run: int = 6
    warmup_cycles: int = 64
    scenarios_per_benchmark: int = 2
    detector_epochs: int = 60
    localizer_epochs: int = 80
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rows < 4:
            raise ValueError("rows must be >= 4")
        if self.scenarios_per_benchmark < 1:
            raise ValueError("scenarios_per_benchmark must be >= 1")

    # -- derived configurations ---------------------------------------------
    def dataset_config(self, seed_offset: int = 0) -> DatasetConfig:
        """Dataset-builder configuration for this experiment scale."""
        return DatasetConfig(
            rows=self.rows,
            benign_injection_rate=self.benign_injection_rate,
            fir=self.fir,
            sample_period=self.sample_period,
            samples_per_run=self.samples_per_run,
            warmup_cycles=self.warmup_cycles,
            seed=self.seed + seed_offset,
        )

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Copy with overrides (used by benches to scale up/down)."""
        return replace(self, **overrides)

    @classmethod
    def from_environment(cls, **defaults) -> "ExperimentConfig":
        """Build a config honouring the REPRO_* environment variables."""
        config = cls(**defaults)
        overrides = {}
        mapping = {
            "REPRO_MESH_ROWS": ("rows", int),
            "REPRO_SAMPLES_PER_RUN": ("samples_per_run", int),
            "REPRO_SCENARIOS_PER_BENCHMARK": ("scenarios_per_benchmark", int),
            "REPRO_SAMPLE_PERIOD": ("sample_period", int),
            "REPRO_FIR": ("fir", float),
            "REPRO_SEED": ("seed", int),
        }
        for env_name, (field_name, caster) in mapping.items():
            raw = os.environ.get(env_name)
            if raw:
                overrides[field_name] = caster(raw)
        return config.scaled(**overrides) if overrides else config

    @classmethod
    def for_mesh(cls, rows: int, **overrides) -> "ExperimentConfig":
        """Configuration at the adaptive operating point for ``rows``.

        Applies the :data:`OPERATING_POINTS` table (benign rate and
        training-scenario spread keyed by mesh scale) so sweeps scale up
        without re-deriving the hand-tuned values; explicit ``overrides``
        win over the table.
        """
        rate, spread = operating_point(rows)
        values = {
            "rows": rows,
            "benign_injection_rate": rate,
            "scenarios_per_benchmark": spread,
        }
        values.update(overrides)
        return cls(**values)

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's 16x16 / 1000-cycle configuration (slow: minutes per table).

        Routed through the adaptive operating-point table: the measured
        16x16 point needs a training spread of 6 (a spread of 2 leaves the
        detector nearly blind to edge-row/column flows).
        """
        return cls.for_mesh(16, sample_period=1000, samples_per_run=10)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A small configuration for tests and smoke runs."""
        return cls(
            rows=6,
            sample_period=96,
            samples_per_run=4,
            warmup_cycles=32,
            scenarios_per_benchmark=1,
            detector_epochs=30,
            localizer_epochs=40,
        )
