"""Tables 1-3: detection and localization per benchmark and feature set.

The paper reports, for every benchmark (6 synthetic traffic patterns and 3
PARSEC workloads), the frame-level detection metrics and the node-level
localization metrics of DL2Fence under three feature assignments:

* Table 1 — VCO for both detection and localization;
* Table 2 — BOC for both;
* Table 3 — the chosen configuration: VCO detection, BOC localization.

:func:`run_feature_experiment` reproduces one such table: it simulates
training and evaluation runs with disjoint seeds, trains the two CNNs on the
training runs, and evaluates per benchmark on the evaluation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder, ScenarioRun
from repro.monitor.features import FeatureKind
from repro.nn.metrics import ClassificationReport
from repro.traffic.scenario import benchmark_names
from repro.traffic.synthetic import SYNTHETIC_PATTERNS

__all__ = ["BenchmarkResult", "FeatureExperimentResult", "run_feature_experiment"]


@dataclass
class BenchmarkResult:
    """Detection + localization metrics for one benchmark."""

    benchmark: str
    detection: ClassificationReport
    localization: ClassificationReport | None

    @property
    def is_synthetic(self) -> bool:
        return self.benchmark in SYNTHETIC_PATTERNS


def _average_reports(reports: list[ClassificationReport]) -> ClassificationReport:
    """Unweighted average of several reports (how the paper averages columns)."""
    if not reports:
        raise ValueError("cannot average an empty list of reports")
    return ClassificationReport(
        accuracy=float(np.mean([r.accuracy for r in reports])),
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        support=int(sum(r.support for r in reports)),
    )


@dataclass
class FeatureExperimentResult:
    """Everything produced by one table run (Table 1, 2 or 3)."""

    detection_feature: FeatureKind
    localization_feature: FeatureKind
    per_benchmark: list[BenchmarkResult] = field(default_factory=list)

    def result_for(self, benchmark: str) -> BenchmarkResult:
        for result in self.per_benchmark:
            if result.benchmark == benchmark:
                return result
        raise KeyError(f"no result for benchmark {benchmark!r}")

    def _group(self, synthetic: bool) -> list[BenchmarkResult]:
        return [r for r in self.per_benchmark if r.is_synthetic == synthetic]

    def average_detection(self, synthetic: bool | None = None) -> ClassificationReport:
        """Average detection metrics (optionally only STP or only PARSEC)."""
        results = (
            self.per_benchmark if synthetic is None else self._group(synthetic)
        )
        return _average_reports([r.detection for r in results])

    def average_localization(self, synthetic: bool | None = None) -> ClassificationReport:
        """Average localization metrics (optionally only STP or only PARSEC)."""
        results = (
            self.per_benchmark if synthetic is None else self._group(synthetic)
        )
        reports = [r.localization for r in results if r.localization is not None]
        return _average_reports(reports)


def _runs_by_benchmark(runs: list[ScenarioRun]) -> dict[str, list[ScenarioRun]]:
    grouped: dict[str, list[ScenarioRun]] = {}
    for run in runs:
        grouped.setdefault(run.benchmark, []).append(run)
    return grouped


def run_feature_experiment(
    detection_feature: FeatureKind = FeatureKind.VCO,
    localization_feature: FeatureKind = FeatureKind.BOC,
    benchmarks: list[str] | None = None,
    config: ExperimentConfig | None = None,
    enable_vce: bool = False,
) -> FeatureExperimentResult:
    """Train DL2Fence on one feature assignment and evaluate per benchmark."""
    config = config or ExperimentConfig()
    if benchmarks is None:
        benchmarks = benchmark_names()

    fence_config = DL2FenceConfig(seed=config.seed, enable_vce=enable_vce).with_features(
        detection_feature, localization_feature
    )

    train_builder = DatasetBuilder(config.dataset_config(seed_offset=0))
    eval_builder = DatasetBuilder(config.dataset_config(seed_offset=1000))

    train_runs = train_builder.build_runs(
        benchmarks=benchmarks,
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed,
    )
    eval_runs = eval_builder.build_runs(
        benchmarks=benchmarks,
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed + 5000,
    )

    fence = DL2Fence(train_builder.topology, fence_config)
    fence.fit_from_runs(
        train_builder,
        train_runs,
        detector_epochs=config.detector_epochs,
        localizer_epochs=config.localizer_epochs,
    )

    result = FeatureExperimentResult(
        detection_feature=detection_feature,
        localization_feature=localization_feature,
    )
    eval_by_benchmark = _runs_by_benchmark(eval_runs)
    for benchmark in benchmarks:
        runs = eval_by_benchmark.get(benchmark, [])
        if not runs:
            continue
        detection_dataset = eval_builder.detection_dataset(
            runs,
            feature=detection_feature,
            normalize=fence_config.detection_normalization,
        )
        detection_report = fence.evaluate_detection(detection_dataset)
        attacked = [run for run in runs if run.is_attack]
        localization_report = (
            fence.evaluate_localization(attacked) if attacked else None
        )
        result.per_benchmark.append(
            BenchmarkResult(
                benchmark=benchmark,
                detection=detection_report,
                localization=localization_report,
            )
        )
    return result
