"""Tables 1-3: detection and localization per benchmark and feature set.

The paper reports, for every benchmark (6 synthetic traffic patterns and 3
PARSEC workloads), the frame-level detection metrics and the node-level
localization metrics of DL2Fence under three feature assignments:

* Table 1 — VCO for both detection and localization;
* Table 2 — BOC for both;
* Table 3 — the chosen configuration: VCO detection, BOC localization.

:func:`run_feature_experiment` reproduces one such table: it simulates
training and evaluation runs with disjoint seeds, trains the two CNNs on the
training runs, and evaluates per benchmark on the evaluation runs.

All expensive stages route through the
:class:`~repro.runtime.engine.ExperimentEngine`: scenario runs are simulated
in parallel and cached on disk (they are shared verbatim between Tables 1, 2
and 3 — the monitor captures both VCO and BOC frames in one pass), trained
pipelines are cached per feature assignment, and the finished table is
memoised as a record artifact so a re-run at the same scale is pure I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder, ScenarioRun
from repro.monitor.features import FeatureKind
from repro.nn.dtype import default_dtype
from repro.nn.metrics import ClassificationReport
from repro.runtime.engine import ExperimentEngine
from repro.traffic.scenario import benchmark_names
from repro.traffic.synthetic import SYNTHETIC_PATTERNS

__all__ = ["BenchmarkResult", "FeatureExperimentResult", "run_feature_experiment"]


def _report_to_json(report: ClassificationReport | None) -> dict | None:
    if report is None:
        return None
    return {
        "accuracy": report.accuracy,
        "precision": report.precision,
        "recall": report.recall,
        "f1": report.f1,
        "support": report.support,
        "extras": dict(report.extras),
    }


def _report_from_json(data: dict | None) -> ClassificationReport | None:
    if data is None:
        return None
    return ClassificationReport(
        accuracy=float(data["accuracy"]),
        precision=float(data["precision"]),
        recall=float(data["recall"]),
        f1=float(data["f1"]),
        support=int(data["support"]),
        extras=dict(data.get("extras", {})),
    )


@dataclass
class BenchmarkResult:
    """Detection + localization metrics for one benchmark."""

    benchmark: str
    detection: ClassificationReport
    localization: ClassificationReport | None

    @property
    def is_synthetic(self) -> bool:
        return self.benchmark in SYNTHETIC_PATTERNS


def _average_reports(reports: list[ClassificationReport]) -> ClassificationReport:
    """Unweighted average of several reports (how the paper averages columns)."""
    if not reports:
        raise ValueError("cannot average an empty list of reports")
    return ClassificationReport(
        accuracy=float(np.mean([r.accuracy for r in reports])),
        precision=float(np.mean([r.precision for r in reports])),
        recall=float(np.mean([r.recall for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
        support=int(sum(r.support for r in reports)),
    )


@dataclass
class FeatureExperimentResult:
    """Everything produced by one table run (Table 1, 2 or 3)."""

    detection_feature: FeatureKind
    localization_feature: FeatureKind
    per_benchmark: list[BenchmarkResult] = field(default_factory=list)

    def result_for(self, benchmark: str) -> BenchmarkResult:
        for result in self.per_benchmark:
            if result.benchmark == benchmark:
                return result
        raise KeyError(f"no result for benchmark {benchmark!r}")

    def _group(self, synthetic: bool) -> list[BenchmarkResult]:
        return [r for r in self.per_benchmark if r.is_synthetic == synthetic]

    def average_detection(self, synthetic: bool | None = None) -> ClassificationReport:
        """Average detection metrics (optionally only STP or only PARSEC)."""
        results = (
            self.per_benchmark if synthetic is None else self._group(synthetic)
        )
        return _average_reports([r.detection for r in results])

    def average_localization(self, synthetic: bool | None = None) -> ClassificationReport:
        """Average localization metrics (optionally only STP or only PARSEC)."""
        results = (
            self.per_benchmark if synthetic is None else self._group(synthetic)
        )
        reports = [r.localization for r in results if r.localization is not None]
        return _average_reports(reports)


def _runs_by_benchmark(runs: list[ScenarioRun]) -> dict[str, list[ScenarioRun]]:
    grouped: dict[str, list[ScenarioRun]] = {}
    for run in runs:
        grouped.setdefault(run.benchmark, []).append(run)
    return grouped


def run_feature_experiment(
    detection_feature: FeatureKind = FeatureKind.VCO,
    localization_feature: FeatureKind = FeatureKind.BOC,
    benchmarks: list[str] | None = None,
    config: ExperimentConfig | None = None,
    enable_vce: bool = False,
    engine: ExperimentEngine | None = None,
) -> FeatureExperimentResult:
    """Train DL2Fence on one feature assignment and evaluate per benchmark."""
    config = config or ExperimentConfig()
    engine = engine or ExperimentEngine.from_environment()
    if benchmarks is None:
        benchmarks = benchmark_names()

    fence_config = DL2FenceConfig(seed=config.seed, enable_vce=enable_vce).with_features(
        detection_feature, localization_feature
    )

    table_payload = {
        "experiment": config,
        "fence": fence_config,
        "benchmarks": list(benchmarks),
        "dtype": default_dtype(),
    }
    records = engine.cached_records(
        "feature-experiment",
        table_payload,
        lambda: _compute_feature_records(
            benchmarks, config, fence_config, engine
        ),
    )
    result = FeatureExperimentResult(
        detection_feature=detection_feature,
        localization_feature=localization_feature,
    )
    for record in records:
        result.per_benchmark.append(
            BenchmarkResult(
                benchmark=record["benchmark"],
                detection=_report_from_json(record["detection"]),
                localization=_report_from_json(record["localization"]),
            )
        )
    return result


def _compute_feature_records(
    benchmarks: list[str],
    config: ExperimentConfig,
    fence_config: DL2FenceConfig,
    engine: ExperimentEngine,
) -> list[dict]:
    """One table's per-benchmark reports (cache-miss path of the table)."""
    eval_builder = DatasetBuilder(config.dataset_config(seed_offset=1000))
    fence, _ = engine.trained_fence(
        config.dataset_config(seed_offset=0),
        fence_config,
        benchmarks=benchmarks,
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed,
        detector_epochs=config.detector_epochs,
        localizer_epochs=config.localizer_epochs,
    )
    eval_runs = engine.build_runs(
        config.dataset_config(seed_offset=1000),
        benchmarks=benchmarks,
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed + 5000,
    )

    records: list[dict] = []
    eval_by_benchmark = _runs_by_benchmark(eval_runs)
    for benchmark in benchmarks:
        runs = eval_by_benchmark.get(benchmark, [])
        if not runs:
            continue
        detection_dataset = eval_builder.detection_dataset(
            runs,
            feature=fence_config.detection_feature,
            normalize=fence_config.detection_normalization,
        )
        detection_report = fence.evaluate_detection(detection_dataset)
        attacked = [run for run in runs if run.is_attack]
        localization_report = (
            fence.evaluate_localization(attacked) if attacked else None
        )
        records.append(
            {
                "benchmark": benchmark,
                "detection": _report_to_json(detection_report),
                "localization": _report_to_json(localization_report),
            }
        )
    return records
