"""Robustness matrix: the closed-loop defense against the refined-DoS library.

The mitigation sweep (:mod:`repro.experiments.mitigation`) measures the
defense against the paper's constant-rate flood; this driver measures it
against every variant of :mod:`repro.attacks` — pulsed, ramping, migrating,
distributed colluding and on-route — over a range of mesh sizes.  For each
(attack type, mesh) operating point it reports:

* **detection latency** — cycles from attack start until the guard first
  acts (detector fire *or* cross-window evidence conviction);
* **containment** — cycles until every node of the attack's
  ``containment_nodes`` set is simultaneously fenced (for a migrating
  attacker that means every hop position);
* **collateral** — innocent nodes fenced, and innocent-node × window
  exposure.

Episodes run at the adaptive operating point of each mesh scale
(:meth:`repro.experiments.config.ExperimentConfig.for_mesh`), train one
pipeline per mesh through the experiment engine's artifact cache, fan the
independent episodes out across worker processes, and memoise each episode
individually — extending the matrix by one attack type or mesh size only
simulates what is new.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.attacks import ATTACK_LIBRARY, AttackModel, default_attack
from repro.core.pipeline import DL2Fence
from repro.defense.evidence import EvidenceConfig
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseReport
from repro.experiments.config import ExperimentConfig
from repro.experiments.mitigation import (
    EpisodeShape,
    baseline_benign_latency,
    sweep_fence_key_payload,
    train_defense_pipeline,
)
from repro.faults import default_fault_suite
from repro.faults.base import FaultScenario
from repro.monitor.dataset import DatasetBuilder, DatasetConfig
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.nn.dtype import default_dtype
from repro.noc.simulator import NoCSimulator
from repro.noc.stats import LatencyStats
from repro.runtime.engine import ExperimentEngine

__all__ = [
    "DEFAULT_ROBUSTNESS_POLICY",
    "ChaosPoint",
    "RobustnessPoint",
    "run_attack_episode",
    "unmitigated_attack_episode_latency",
    "run_chaos_matrix",
    "run_robustness_matrix",
]

#: Policy of the robustness matrix: full isolation with a longer engage
#: streak and stale rollback than the constant-flood sweeps.  Refined
#: attacks saturate the victim's neighbourhood in shapes the segmentation
#: never trained on, and the resulting congestion spillover produces
#: *phantom* candidates that survive a two-window streak; three consecutive
#: windows filters them (genuine attackers bridge streak gaps through
#: evidence convictions, so the longer streak costs them one window, not
#: detectability).  The longer stale rollback matters because refined
#: attackers go quiet on purpose — releasing a fenced node after three
#: silent detection windows hands a duty-cycled attacker its bursts back.
DEFAULT_ROBUSTNESS_POLICY = MitigationPolicy.quarantine(
    engage_after=3, release_after=6, stale_after=6, flush_queue=True
)

#: Attack-window horizon: refined attacks unfold over many windows (a ramp
#: climbs for five, a migration cycle spans twelve, and a distributed
#: collusion is typically only fully pinned down on the guard's *second*
#: localization pass, after the release probe re-exposes the stragglers),
#: so robustness episodes run much longer than the constant-flood sweeps.
DEFAULT_ATTACK_WINDOWS = 24


@dataclass
class RobustnessPoint:
    """Outcome of one defended episode against one refined-DoS variant."""

    attack: str
    rows: int
    policy: str
    detected: bool
    detection_latency: int | None
    time_to_mitigation: int | None
    time_to_full_containment: int | None
    num_attackers: int
    attackers_fenced: int
    contained: bool
    collateral_nodes: tuple[int, ...]
    collateral_node_windows: int
    localization_rounds: int
    reengagements: int
    evidence_convictions: int
    baseline_latency: float
    attack_latency: float
    unmitigated_latency: float
    mitigated_latency: float
    recovery_ratio: float
    benchmark: str = "uniform_random"
    description: str = ""

    def as_dict(self) -> dict:
        """Table-friendly row (see :func:`repro.experiments.tables.format_rows`)."""
        return {
            "attack": self.attack,
            "rows": self.rows,
            "policy": self.policy,
            "detected": self.detected,
            "detection_latency": self.detection_latency,
            "containment": self.time_to_full_containment,
            "attackers": self.num_attackers,
            "fenced": self.attackers_fenced,
            "contained": self.contained,
            "collateral": len(self.collateral_nodes),
            "collateral_node_windows": self.collateral_node_windows,
            "rounds": self.localization_rounds,
            "reengage": self.reengagements,
            "convictions": self.evidence_convictions,
            "attack_latency": self.attack_latency,
            "unmitigated_latency": self.unmitigated_latency,
            "mitigated_latency": self.mitigated_latency,
            "recovery_ratio": self.recovery_ratio,
        }

    # -- lossless round-trip (artifact cache) -------------------------------
    def to_payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, data: dict) -> "RobustnessPoint":
        data = dict(data)
        data["collateral_nodes"] = tuple(int(n) for n in data["collateral_nodes"])
        return cls(**data)


@dataclass
class ChaosPoint:
    """Outcome of one defended episode under one monitor-fault scenario.

    The chaos matrix adds a fault axis to the robustness matrix and asks a
    sharper question than "was the attack contained": it also demands that
    *no fault-only node was ever punished* — a silent or stuck monitor is a
    hardware problem, and fencing its node would convert a telemetry fault
    into a self-inflicted denial of service.
    """

    attack: str
    rows: int
    scenario: str
    policy: str
    #: Nodes the fault scenario touches (never legitimate fence targets).
    fault_nodes: tuple[int, ...]
    detected: bool
    detection_latency: int | None
    time_to_mitigation: int | None
    time_to_full_containment: int | None
    num_attackers: int
    attackers_fenced: int
    contained: bool
    collateral_nodes: tuple[int, ...]
    collateral_node_windows: int
    #: Engagement / conviction events naming a fault-only node (must be 0).
    fault_node_engagements: int
    fault_node_convictions: int
    #: Windows the guard actually received (drops shrink it, delays do not).
    windows_delivered: int
    localization_rounds: int
    reengagements: int
    baseline_latency: float
    attack_latency: float
    mitigated_latency: float
    fresh_mitigated_latency: float
    recovery_ratio: float
    fresh_recovery_ratio: float
    sample_period: int
    benchmark: str = "uniform_random"
    description: str = ""

    def as_dict(self) -> dict:
        """Table-friendly row (see :func:`repro.experiments.tables.format_rows`)."""
        return {
            "attack": self.attack,
            "rows": self.rows,
            "scenario": self.scenario,
            "detected": self.detected,
            "detection_latency": self.detection_latency,
            "containment": self.time_to_full_containment,
            "attackers": self.num_attackers,
            "fenced": self.attackers_fenced,
            "contained": self.contained,
            "collateral": len(self.collateral_nodes),
            "fault_nodes": len(self.fault_nodes),
            "fault_engaged": self.fault_node_engagements,
            "fault_convicted": self.fault_node_convictions,
            "windows": self.windows_delivered,
            "reengage": self.reengagements,
            "recovery_ratio": self.recovery_ratio,
            "fresh_recovery": self.fresh_recovery_ratio,
        }

    # -- lossless round-trip (artifact cache) -------------------------------
    def to_payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, data: dict) -> "ChaosPoint":
        data = dict(data)
        data["collateral_nodes"] = tuple(int(n) for n in data["collateral_nodes"])
        data["fault_nodes"] = tuple(int(n) for n in data["fault_nodes"])
        return cls(**data)


def _attacked_simulator(
    builder: DatasetBuilder,
    benchmark: str,
    model: AttackModel,
    shape: EpisodeShape,
    seed: int,
) -> NoCSimulator:
    """The episode's system under attack (same for defended and unmitigated)."""
    config = builder.config
    simulator = NoCSimulator(config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    simulator.add_source(
        model.build_source(
            builder.topology,
            seed=seed + 1,
            packet_size_flits=config.packet_size_flits,
            start_cycle=shape.attack_start,
            end_cycle=shape.attack_end,
        )
    )
    return simulator


def run_attack_episode(
    fence: DL2Fence,
    builder: DatasetBuilder,
    policy: MitigationPolicy,
    model: AttackModel,
    benchmark: str = "uniform_random",
    pre_attack_windows: int = 4,
    attack_windows: int = DEFAULT_ATTACK_WINDOWS,
    post_attack_windows: int = 4,
    seed: int = 42,
    evidence: EvidenceConfig | bool = True,
    faults: FaultScenario | None = None,
    degraded: bool = True,
) -> DefenseReport:
    """One guarded episode of ``model`` over a benign workload.

    ``true_attackers`` of the report is the model's ``containment_nodes``
    set, so ``time_to_full_containment`` demands every position of a
    migrating attacker (and every colluding source) fenced at once.

    ``faults`` installs a fault scenario on the episode.  Monitor-plane
    faults sit between the sampler and the guard: the simulated hardware is
    untouched, but the guard sees the scenario's degraded window stream
    (dropped/delayed windows, silent or stuck monitors, corrupted cells).
    Data-plane faults break the mesh itself — links or routers die at
    their scheduled cycle and traffic detours around them.  The fault plane
    is seeded with the episode ``seed``, so a faulted episode is exactly as
    reproducible as a clean one.  ``degraded`` toggles the guard's window
    sanitisation.
    """
    shape = EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    simulator = _attacked_simulator(builder, benchmark, model, shape, seed)
    guard = DL2FenceGuard(
        fence,
        policy,
        attack_start=shape.attack_start,
        attack_end=shape.attack_end,
        true_attackers=model.containment_nodes,
        evidence=evidence,
        degraded=degraded,
    )
    monitor_config = MonitorConfig(sample_period=builder.config.sample_period)
    if faults is None:
        guard.attach(simulator, monitor_config=monitor_config)
    else:
        faults.schedule_data_faults(simulator)
        monitor = GlobalPerformanceMonitor(monitor_config).attach(simulator)
        monitor.set_fault_plane(faults.build_plane(builder.topology, seed=seed))
        guard.attach(simulator, monitor=monitor)
    simulator.run(shape.total_cycles)
    return guard.report


def unmitigated_attack_episode_latency(
    builder: DatasetBuilder,
    model: AttackModel,
    benchmark: str = "uniform_random",
    pre_attack_windows: int = 4,
    attack_windows: int = DEFAULT_ATTACK_WINDOWS,
    post_attack_windows: int = 4,
    seed: int = 42,
) -> float:
    """Benign latency of the same episode with no defense (the comparator)."""
    shape = EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    simulator = _attacked_simulator(builder, benchmark, model, shape, seed)
    simulator.run(shape.total_cycles)
    period = builder.config.sample_period
    span = [
        packet
        for packet in simulator.stats.delivered
        if not packet.is_malicious
        and shape.attack_start + period <= packet.ejected_cycle <= shape.attack_end
    ]
    if not span:
        return float("nan")
    return LatencyStats.from_packets(span).packet_latency


@dataclass(frozen=True)
class _RobustnessTask:
    """One independent simulation of the matrix fan-out."""

    kind: str  # "unmitigated" | "episode"
    dataset_config: DatasetConfig
    benchmark: str
    model: AttackModel
    attack_windows: int
    policy: MitigationPolicy | None = None
    evidence: EvidenceConfig | bool = True
    fence: DL2Fence | None = None
    faults: FaultScenario | None = None


def _task_cache_payload(task: _RobustnessTask, fence_key: dict) -> tuple[str, dict]:
    """(cache kind, payload) of one matrix task's per-episode cache entry."""
    payload = {
        "config": task.dataset_config,
        "benchmark": task.benchmark,
        "attack": task.model,
        "attack_windows": task.attack_windows,
        "dtype": default_dtype(),
    }
    if task.kind == "unmitigated":
        return "robustness-unmitigated", payload
    payload["policy"] = task.policy
    payload["evidence"] = task.evidence
    payload["fence"] = fence_key
    if task.faults is not None:
        payload["faults"] = task.faults
        return "chaos-episode", payload
    return "robustness-episode", payload


def _run_robustness_task(task: _RobustnessTask):
    """Execute one matrix simulation (module-level for worker processes)."""
    builder = DatasetBuilder(task.dataset_config)
    if task.kind == "unmitigated":
        return unmitigated_attack_episode_latency(
            builder,
            task.model,
            benchmark=task.benchmark,
            attack_windows=task.attack_windows,
        )
    return run_attack_episode(
        task.fence,
        builder,
        task.policy,
        task.model,
        benchmark=task.benchmark,
        attack_windows=task.attack_windows,
        evidence=task.evidence,
        faults=task.faults,
    )


def _fetch_task_result(engine: ExperimentEngine, kind: str, payload: dict):
    """Load one cached matrix result (None on miss)."""
    if kind == "robustness-unmitigated":
        return engine.cache.fetch(
            kind,
            payload,
            lambda directory: float(
                json.loads((directory / "value.json").read_text())["value"]
            ),
        )
    return engine.cache.fetch(
        kind,
        payload,
        lambda directory: DefenseReport.from_payload(
            json.loads((directory / "report.json").read_text())
        ),
    )


def _store_task_result(engine: ExperimentEngine, kind: str, payload: dict, result):
    """Persist one matrix result into the per-episode cache."""
    if kind == "robustness-unmitigated":
        engine.cache.store(
            kind,
            payload,
            lambda directory: (directory / "value.json").write_text(
                json.dumps({"value": float(result)})
            ),
        )
    else:
        engine.cache.store(
            kind,
            payload,
            lambda directory: (directory / "report.json").write_text(
                json.dumps(result.to_payload())
            ),
        )


def run_robustness_matrix(
    attacks: tuple[str, ...] | None = None,
    rows_values: tuple[int, ...] = (8,),
    policy: MitigationPolicy = DEFAULT_ROBUSTNESS_POLICY,
    config: ExperimentConfig | None = None,
    benchmark: str = "uniform_random",
    fir: float = 0.8,
    colluding_fir: float = 0.2,
    attack_windows: int = DEFAULT_ATTACK_WINDOWS,
    training_benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
    evidence: EvidenceConfig | bool = True,
    engine: ExperimentEngine | None = None,
) -> list[RobustnessPoint]:
    """Detection-latency / containment / collateral matrix over attack × mesh.

    The pipeline of each mesh scale is trained once at that scale's adaptive
    operating point (:meth:`ExperimentConfig.for_mesh`, unless ``config``
    pins a different base) on the standard constant-flood curriculum — the
    refined variants are *never* trained on, so every row measures
    generalization of the deployed detector plus the evidence accumulator,
    not memorisation of the attack shape.
    """
    attack_names = tuple(attacks) if attacks is not None else tuple(ATTACK_LIBRARY)
    for name in attack_names:
        if name not in ATTACK_LIBRARY:
            raise KeyError(f"unknown attack variant {name!r}")
    if evidence is True:
        # Resolve the default up-front so the accumulator's actual knob
        # values (not the bare flag) enter every cache key below.
        evidence = EvidenceConfig()
    engine = engine or ExperimentEngine.from_environment()
    experiments = {
        rows: (
            config.scaled(rows=rows)
            if config is not None
            else ExperimentConfig.for_mesh(rows)
        )
        for rows in rows_values
    }
    # The concrete attack models (not just their names) enter the key: the
    # canonical per-mesh placements evolve with the library, and a cached
    # matrix must never outlive the scenarios it measured.
    suites = {
        rows: {
            name: default_attack(
                name,
                experiment.dataset_config().topology(),
                experiment.sample_period,
                fir=fir,
                colluding_fir=colluding_fir,
            )
            for name in attack_names
        }
        for rows, experiment in experiments.items()
    }
    payload = {
        "attacks": attack_names,
        "suites": {str(rows): suites[rows] for rows in rows_values},
        "experiments": {str(rows): experiments[rows] for rows in rows_values},
        "policy": policy,
        "benchmark": benchmark,
        "attack_windows": attack_windows,
        "training_benchmarks": tuple(training_benchmarks),
        "evidence": evidence,
        "dtype": default_dtype(),
    }
    records = engine.cached_records(
        "robustness-matrix",
        payload,
        lambda: [
            point.to_payload()
            for point in _compute_robustness_points(
                attack_names,
                experiments,
                suites,
                policy,
                benchmark,
                attack_windows,
                tuple(training_benchmarks),
                evidence,
                engine,
            )
        ],
    )
    return [RobustnessPoint.from_payload(record) for record in records]


def _compute_robustness_points(
    attack_names: tuple[str, ...],
    experiments: dict[int, ExperimentConfig],
    suites: dict[int, dict[str, AttackModel]],
    policy: MitigationPolicy,
    benchmark: str,
    attack_windows: int,
    training_benchmarks: tuple[str, ...],
    evidence: EvidenceConfig | bool,
    engine: ExperimentEngine,
) -> list[RobustnessPoint]:
    """Cache-miss path: train per mesh, fan episodes out, assemble points."""
    points: list[RobustnessPoint] = []
    for rows, experiment in experiments.items():
        fence, builder = train_defense_pipeline(
            experiment, benchmarks=training_benchmarks, engine=engine
        )
        mesh_baseline = baseline_benign_latency(
            builder, benchmark=benchmark, attack_windows=attack_windows
        )
        suite = suites[rows]
        tasks: list[_RobustnessTask] = []
        for name in attack_names:
            tasks.append(
                _RobustnessTask(
                    kind="unmitigated",
                    dataset_config=builder.config,
                    benchmark=benchmark,
                    model=suite[name],
                    attack_windows=attack_windows,
                )
            )
            tasks.append(
                _RobustnessTask(
                    kind="episode",
                    dataset_config=builder.config,
                    benchmark=benchmark,
                    model=suite[name],
                    attack_windows=attack_windows,
                    policy=policy,
                    evidence=evidence,
                    fence=fence,
                )
            )
        fence_key = sweep_fence_key_payload(experiment, training_benchmarks)
        cache_keys = [_task_cache_payload(task, fence_key) for task in tasks]
        cached = [
            _fetch_task_result(engine, kind, payload) for kind, payload in cache_keys
        ]
        missing = [index for index, value in enumerate(cached) if value is None]
        fresh = engine.runner.map(
            _run_robustness_task, [tasks[index] for index in missing]
        )
        for index, value in zip(missing, fresh):
            cached[index] = value
            kind, payload = cache_keys[index]
            _store_task_result(engine, kind, payload, value)
        results = iter(cached)
        for name in attack_names:
            unmitigated = next(results)
            report = next(results)
            model = suite[name]
            truth = set(model.containment_nodes)
            contained = (
                report.time_to_full_containment is not None
                and not report.collateral_nodes
            )
            points.append(
                RobustnessPoint(
                    attack=name,
                    rows=rows,
                    policy=policy.name,
                    detected=report.detection_latency is not None,
                    detection_latency=report.detection_latency,
                    time_to_mitigation=report.time_to_mitigation,
                    time_to_full_containment=report.time_to_full_containment,
                    num_attackers=len(truth),
                    attackers_fenced=len(truth & report.engaged_nodes),
                    contained=contained,
                    collateral_nodes=tuple(sorted(report.collateral_nodes)),
                    collateral_node_windows=report.collateral_node_windows,
                    localization_rounds=report.localization_rounds,
                    reengagements=report.reengagements,
                    evidence_convictions=sum(
                        1 for event in report.events if event.kind == "convicted"
                    ),
                    baseline_latency=mesh_baseline,
                    attack_latency=report.attack_latency(),
                    unmitigated_latency=unmitigated,
                    mitigated_latency=report.post_mitigation_latency(),
                    recovery_ratio=report.recovery_ratio(mesh_baseline),
                    benchmark=benchmark,
                    description=model.describe(),
                )
            )
    return points


def run_chaos_matrix(
    attacks: tuple[str, ...] | None = None,
    rows_values: tuple[int, ...] = (8, 16),
    fault_scenarios: tuple[str, ...] | None = None,
    policy: MitigationPolicy = DEFAULT_ROBUSTNESS_POLICY,
    config: ExperimentConfig | None = None,
    benchmark: str = "uniform_random",
    fir: float = 0.8,
    colluding_fir: float = 0.2,
    attack_windows: int = DEFAULT_ATTACK_WINDOWS,
    training_benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
    evidence: EvidenceConfig | bool = True,
    engine: ExperimentEngine | None = None,
) -> list[ChaosPoint]:
    """Fault-augmented robustness matrix: attack × mesh × monitor-fault.

    Every cell replays a defended refined-DoS episode with one scenario of
    :func:`repro.faults.default_fault_suite` installed between the sampler
    and the guard (the always-included ``"none"`` scenario is the fault-free
    comparator).  The per-mesh pipeline training and its cache entry are
    shared with :func:`run_robustness_matrix` — only the episodes are new.
    """
    attack_names = tuple(attacks) if attacks is not None else tuple(ATTACK_LIBRARY)
    for name in attack_names:
        if name not in ATTACK_LIBRARY:
            raise KeyError(f"unknown attack variant {name!r}")
    if evidence is True:
        evidence = EvidenceConfig()
    engine = engine or ExperimentEngine.from_environment()
    experiments = {
        rows: (
            config.scaled(rows=rows)
            if config is not None
            else ExperimentConfig.for_mesh(rows)
        )
        for rows in rows_values
    }
    suites = {
        rows: {
            name: default_attack(
                name,
                experiment.dataset_config().topology(),
                experiment.sample_period,
                fir=fir,
                colluding_fir=colluding_fir,
            )
            for name in attack_names
        }
        for rows, experiment in experiments.items()
    }
    # Fault scenarios are topology-dependent (the silent/stuck node picks
    # depend on the mesh), so each mesh scale gets its own suite.  The
    # canonical link kill lands three sampling windows into the attack:
    # mid-episode, after detection has had a fault-free shot, with most of
    # the attack still ahead on the degraded mesh.
    fault_suites = {
        rows: default_fault_suite(
            experiment.dataset_config().topology(),
            link_kill_cycle=(
                experiment.dataset_config().warmup_cycles
                + 7 * experiment.sample_period
            ),
        )
        for rows, experiment in experiments.items()
    }
    if fault_scenarios is None:
        scenario_names = tuple(fault_suites[rows_values[0]])
    else:
        scenario_names = tuple(fault_scenarios)
        for name in scenario_names:
            if name not in fault_suites[rows_values[0]]:
                raise KeyError(f"unknown fault scenario {name!r}")
    payload = {
        "attacks": attack_names,
        "scenarios": scenario_names,
        "suites": {str(rows): suites[rows] for rows in rows_values},
        "fault_suites": {
            str(rows): {name: fault_suites[rows][name] for name in scenario_names}
            for rows in rows_values
        },
        "experiments": {str(rows): experiments[rows] for rows in rows_values},
        "policy": policy,
        "benchmark": benchmark,
        "attack_windows": attack_windows,
        "training_benchmarks": tuple(training_benchmarks),
        "evidence": evidence,
        "dtype": default_dtype(),
    }
    records = engine.cached_records(
        "chaos-matrix",
        payload,
        lambda: [
            point.to_payload()
            for point in _compute_chaos_points(
                attack_names,
                scenario_names,
                experiments,
                suites,
                fault_suites,
                policy,
                benchmark,
                attack_windows,
                tuple(training_benchmarks),
                evidence,
                engine,
            )
        ],
    )
    return [ChaosPoint.from_payload(record) for record in records]


def _compute_chaos_points(
    attack_names: tuple[str, ...],
    scenario_names: tuple[str, ...],
    experiments: dict[int, ExperimentConfig],
    suites: dict[int, dict[str, AttackModel]],
    fault_suites: dict[int, dict[str, FaultScenario]],
    policy: MitigationPolicy,
    benchmark: str,
    attack_windows: int,
    training_benchmarks: tuple[str, ...],
    evidence: EvidenceConfig | bool,
    engine: ExperimentEngine,
) -> list[ChaosPoint]:
    """Cache-miss path: train per mesh, fan faulted episodes out, assemble."""
    points: list[ChaosPoint] = []
    for rows, experiment in experiments.items():
        fence, builder = train_defense_pipeline(
            experiment, benchmarks=training_benchmarks, engine=engine
        )
        mesh_baseline = baseline_benign_latency(
            builder, benchmark=benchmark, attack_windows=attack_windows
        )
        suite = suites[rows]
        fault_suite = fault_suites[rows]
        grid = [
            (attack_name, scenario_name)
            for attack_name in attack_names
            for scenario_name in scenario_names
        ]
        tasks = [
            _RobustnessTask(
                kind="episode",
                dataset_config=builder.config,
                benchmark=benchmark,
                model=suite[attack_name],
                attack_windows=attack_windows,
                policy=policy,
                evidence=evidence,
                fence=fence,
                faults=fault_suite[scenario_name],
            )
            for attack_name, scenario_name in grid
        ]
        fence_key = sweep_fence_key_payload(experiment, training_benchmarks)
        cache_keys = [_task_cache_payload(task, fence_key) for task in tasks]
        cached = [
            _fetch_task_result(engine, kind, payload) for kind, payload in cache_keys
        ]
        missing = [index for index, value in enumerate(cached) if value is None]
        fresh = engine.runner.map(
            _run_robustness_task, [tasks[index] for index in missing]
        )
        for index, value in zip(missing, fresh):
            cached[index] = value
            kind, payload = cache_keys[index]
            _store_task_result(engine, kind, payload, value)
        for (attack_name, scenario_name), report in zip(grid, cached):
            model = suite[attack_name]
            scenario = fault_suite[scenario_name]
            topology = builder.topology
            fault_nodes = tuple(sorted(scenario.affected_nodes(topology)))
            truth = set(model.containment_nodes)
            # Count punishments of *fault-only* nodes: a node that is both
            # faulty and a true attacker is a legitimate fence target.
            fault_only = set(fault_nodes) - truth
            contained = (
                report.time_to_full_containment is not None
                and not report.collateral_nodes
            )
            fault_engagements = sum(
                sum(1 for node in event.nodes if node in fault_only)
                for event in report.events
                if event.kind == "engaged"
            )
            fault_convictions = sum(
                sum(1 for node in event.nodes if node in fault_only)
                for event in report.events
                if event.kind == "convicted"
            )
            points.append(
                ChaosPoint(
                    attack=attack_name,
                    rows=rows,
                    scenario=scenario_name,
                    policy=policy.name,
                    fault_nodes=fault_nodes,
                    detected=report.detection_latency is not None,
                    detection_latency=report.detection_latency,
                    time_to_mitigation=report.time_to_mitigation,
                    time_to_full_containment=report.time_to_full_containment,
                    num_attackers=len(truth),
                    attackers_fenced=len(truth & report.engaged_nodes),
                    contained=contained,
                    collateral_nodes=tuple(sorted(report.collateral_nodes)),
                    collateral_node_windows=report.collateral_node_windows,
                    fault_node_engagements=fault_engagements,
                    fault_node_convictions=fault_convictions,
                    windows_delivered=len(report.windows),
                    localization_rounds=report.localization_rounds,
                    reengagements=report.reengagements,
                    baseline_latency=mesh_baseline,
                    attack_latency=report.attack_latency(),
                    mitigated_latency=report.post_mitigation_latency(),
                    fresh_mitigated_latency=report.post_mitigation_fresh_latency(),
                    recovery_ratio=report.recovery_ratio(mesh_baseline),
                    fresh_recovery_ratio=report.fresh_recovery_ratio(mesh_baseline),
                    sample_period=builder.config.sample_period,
                    benchmark=benchmark,
                    description=f"{model.describe()} | faults: {scenario.describe()}",
                )
            )
    return points
