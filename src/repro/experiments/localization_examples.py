"""Figure 4: qualitative localization examples.

The paper shows two localization examples on a 16x16 mesh running a synthetic
traffic pattern benchmark:

* a single attacker at node 104 flooding victim node 0
  (localization accuracy / precision / recall = 1 / 1 / 1);
* two attackers at nodes 192 and 15 flooding victim node 85
  (accuracy 0.96, precision 1, recall 0.96).

:func:`run_localization_examples` reproduces both: it trains a DL2Fence
pipeline on the same mesh, runs the two scenarios, and reports the fused-mask
localization metrics plus the attackers found by the Table-Like Method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder
from repro.monitor.labeling import victim_mask
from repro.nn.metrics import ClassificationReport
from repro.traffic.scenario import AttackScenario

__all__ = ["LocalizationExample", "run_localization_examples", "paper_example_scenarios"]


@dataclass
class LocalizationExample:
    """Measured localization quality for one Figure 4 example scenario."""

    scenario: AttackScenario
    report: ClassificationReport
    true_victims: list[int] = field(default_factory=list)
    predicted_victims: list[int] = field(default_factory=list)
    predicted_attackers: list[int] = field(default_factory=list)

    @property
    def attackers_found(self) -> bool:
        return set(self.scenario.attackers) <= set(self.predicted_attackers)


def paper_example_scenarios(rows: int, fir: float = 0.8) -> list[AttackScenario]:
    """The two Figure 4 scenarios, rescaled when the mesh is not 16x16.

    On a 16x16 mesh these are exactly the paper's node ids (104 -> 0 and
    {192, 15} -> 85); on smaller meshes the nodes are mapped to the same
    relative positions so the attack geometry (directions and route lengths)
    is preserved.
    """
    def scale(node_16: int) -> int:
        x, y = node_16 % 16, node_16 // 16
        sx = min(rows - 1, int(round(x * (rows - 1) / 15)))
        sy = min(rows - 1, int(round(y * (rows - 1) / 15)))
        return sy * rows + sx

    single = AttackScenario(
        attackers=(scale(104),), victim=scale(0), fir=fir, benchmark="uniform_random"
    )
    double_attackers = (scale(192), scale(15))
    double_victim = scale(85)
    double = AttackScenario(
        attackers=double_attackers,
        victim=double_victim,
        fir=fir,
        benchmark="uniform_random",
    )
    return [single, double]


def run_localization_examples(
    config: ExperimentConfig | None = None,
    benchmark: str = "uniform_random",
    train_benchmarks: list[str] | None = None,
) -> list[LocalizationExample]:
    """Reproduce the two Figure 4 localization examples."""
    config = config or ExperimentConfig()
    builder = DatasetBuilder(config.dataset_config())
    train_benchmarks = train_benchmarks or [benchmark, "tornado"]

    train_runs = builder.build_runs(
        benchmarks=train_benchmarks,
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed,
    )
    fence = DL2Fence(builder.topology, DL2FenceConfig(seed=config.seed))
    fence.fit_from_runs(
        builder,
        train_runs,
        detector_epochs=config.detector_epochs,
        localizer_epochs=config.localizer_epochs,
    )

    examples = []
    for index, scenario in enumerate(paper_example_scenarios(config.rows, config.fir)):
        run = builder.run_benchmark(
            benchmark, scenario=scenario, seed=config.seed + 900 + index
        )
        truth = victim_mask(run.topology, scenario)
        y_true, y_pred = [], []
        predicted_victims: set[int] = set()
        predicted_attackers: set[int] = set()
        for sample in run.samples:
            if not sample.attack_active:
                continue
            result = fence.process_sample(sample, force_localization=True)
            predicted = (
                result.fused_mask if result.fused_mask is not None else np.zeros_like(truth)
            )
            y_true.append(truth.reshape(-1))
            y_pred.append(predicted.reshape(-1))
            predicted_victims.update(result.victims)
            predicted_attackers.update(result.attackers)
        report = ClassificationReport.from_predictions(
            np.concatenate(y_true), np.concatenate(y_pred)
        )
        examples.append(
            LocalizationExample(
                scenario=scenario,
                report=report,
                true_victims=sorted(scenario.ground_truth_victims(run.topology)),
                predicted_victims=sorted(predicted_victims),
                predicted_attackers=sorted(predicted_attackers),
            )
        )
    return examples
