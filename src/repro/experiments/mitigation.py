"""Closed-loop mitigation experiment: FIR x mesh size x policy sweep.

This driver measures what the paper's fence enables but never evaluates:
with the online :class:`~repro.defense.DL2FenceGuard` attached to a live
simulation, how fast is a refined flooding attack detected and mitigated,
and how completely does benign-traffic latency recover?  For every
(FIR, mesh, policy) operating point it reports detection latency,
time-to-mitigation, benign latency in the three phases of the defended run,
the recovery ratio against a no-attack baseline, and collateral damage.

Episodes accept either a single :class:`AttackScenario` or a
:class:`MultiAttackScenario` of concurrent floods on disjoint victims; the
multi-attack sweep additionally reports per-attacker detection latency and
the time until *all* attackers are contained, across the guard's iterative
localization rounds.  The sweep runs at the paper's 16x16 scale and over
PARSEC workloads (see :mod:`benchmarks.bench_fig6_mitigation_recovery`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseReport
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder, DatasetConfig
from repro.monitor.sampler import MonitorConfig
from repro.nn.dtype import default_dtype
from repro.noc.simulator import NoCSimulator
from repro.noc.stats import LatencyStats
from repro.runtime.engine import ExperimentEngine, fence_cache_payload
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.scenario import AttackScenario, MultiAttackScenario

__all__ = [
    "ASYMMETRIC_FLOW_FIRS",
    "EpisodeShape",
    "MitigationPoint",
    "baseline_benign_latency",
    "default_multi_scenario",
    "sweep_fence_key_payload",
    "train_defense_pipeline",
    "run_defended_episode",
    "run_mitigation_sweep",
    "unmitigated_attack_latency",
]

#: Policies compared by default: gentle rate limiting versus full isolation.
DEFAULT_POLICIES = (
    MitigationPolicy.throttle(0.1, engage_after=2, release_after=6, flush_queue=True),
    MitigationPolicy.quarantine(engage_after=2, release_after=6, flush_queue=True),
)

#: Default loud + quiet relative FIR profile for asymmetric multi-attack
#: sweeps: at a swept FIR of 0.8 the two flows flood at 0.8 and 0.2.  The
#: profile is normalised so its maximum maps onto the swept FIR value.
ASYMMETRIC_FLOW_FIRS = (0.8, 0.2)


@dataclass
class MitigationPoint:
    """Outcome of one defended episode at one operating point."""

    fir: float
    rows: int
    policy: str
    detected: bool
    detection_latency: int | None
    time_to_mitigation: int | None
    baseline_latency: float
    attack_latency: float
    unmitigated_latency: float
    mitigated_latency: float
    recovery_ratio: float
    engaged_nodes: tuple[int, ...]
    collateral_nodes: tuple[int, ...]
    collateral_node_windows: int
    benchmark: str = "uniform_random"
    num_attackers: int = 1
    attackers_fenced: int = 0
    time_to_full_containment: int | None = None
    localization_rounds: int = 0
    reengagements: int = 0
    per_attacker_detection_latency: dict = field(default_factory=dict)
    flow_firs: tuple[float, ...] = ()

    def as_dict(self) -> dict:
        return {
            "fir": self.fir,
            "flow_firs": "/".join(f"{fir:g}" for fir in self.flow_firs) or None,
            "rows": self.rows,
            "benchmark": self.benchmark,
            "policy": self.policy,
            "attackers": self.num_attackers,
            "detected": self.detected,
            "detection_latency": self.detection_latency,
            "time_to_mitigation": self.time_to_mitigation,
            "containment": self.time_to_full_containment,
            "fenced": self.attackers_fenced,
            "rounds": self.localization_rounds,
            "reengage": self.reengagements,
            "baseline_latency": self.baseline_latency,
            "attack_latency": self.attack_latency,
            "unmitigated_latency": self.unmitigated_latency,
            "mitigated_latency": self.mitigated_latency,
            "recovery_ratio": self.recovery_ratio,
            "engaged": len(self.engaged_nodes),
            "collateral": len(self.collateral_nodes),
            "collateral_node_windows": self.collateral_node_windows,
        }

    # -- lossless round-trip (artifact cache) -------------------------------
    def to_payload(self) -> dict:
        """Full-fidelity dict (unlike :meth:`as_dict`, which is a table view)."""
        payload = dataclasses.asdict(self)
        payload["per_attacker_detection_latency"] = {
            str(node): value
            for node, value in self.per_attacker_detection_latency.items()
        }
        return payload

    @classmethod
    def from_payload(cls, data: dict) -> "MitigationPoint":
        """Inverse of :meth:`to_payload` (restores tuples and int keys)."""
        data = dict(data)
        for name in ("engaged_nodes", "collateral_nodes"):
            data[name] = tuple(int(node) for node in data[name])
        data["flow_firs"] = tuple(float(fir) for fir in data.get("flow_firs", ()))
        data["per_attacker_detection_latency"] = {
            int(node): value
            for node, value in data["per_attacker_detection_latency"].items()
        }
        return cls(**data)


def train_defense_pipeline(
    config: ExperimentConfig,
    benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
    engine: ExperimentEngine | None = None,
) -> tuple[DL2Fence, DatasetBuilder]:
    """Train a DL2Fence pipeline at this experiment scale (once per mesh).

    Routed through the experiment engine: the scenario runs and the trained
    models are cached on disk, so a second sweep at the same mesh scale never
    retrains.
    """
    engine = engine or ExperimentEngine.from_environment()
    return engine.trained_fence(
        config.dataset_config(),
        DL2FenceConfig(seed=config.seed),
        benchmarks=list(benchmarks),
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed,
        detector_epochs=config.detector_epochs,
        localizer_epochs=config.localizer_epochs,
    )


def _default_scenario(builder: DatasetBuilder, fir: float) -> AttackScenario:
    """A long diagonal flow: far-corner attacker, victim near the origin."""
    topology = builder.topology
    return AttackScenario(
        attackers=(topology.node_id(topology.columns - 2, topology.rows - 2),),
        victim=topology.node_id(1, 1),
        fir=fir,
    )


def default_multi_scenario(
    builder: DatasetBuilder, num_flows: int = 2, fir: float = 0.8
) -> MultiAttackScenario:
    """Deterministic concurrent floods on disjoint victims in disjoint rows.

    Flow ``i`` floods along its own mesh row (rows spread evenly across the
    mesh), alternating east- and west-bound so both E and W abnormal-frame
    rules of the Table-Like Method are exercised.  Row-disjoint routes keep
    every flow's congestion signature independent — the cleanest instance of
    the "concurrent attackers on disjoint victims" threat model.
    """
    topology = builder.topology
    rows, cols = topology.rows, topology.columns
    if num_flows < 1:
        raise ValueError("num_flows must be >= 1")
    if rows < 4 or cols < 4:
        # On a 3-wide mesh the end-of-row attacker and victim coincide.
        raise ValueError("default multi-attack flows need at least a 4x4 mesh")
    if num_flows > rows - 2:
        raise ValueError(f"at most {rows - 2} row-disjoint flows fit on this mesh")
    flows = []
    for index in range(num_flows):
        y = 1 + round(index * (rows - 3) / max(1, num_flows - 1)) if num_flows > 1 else rows - 2
        if index % 2 == 0:
            attacker = topology.node_id(cols - 2, y)
            victim = topology.node_id(1, y)
        else:
            attacker = topology.node_id(1, y)
            victim = topology.node_id(cols - 2, y)
        flows.append(AttackScenario(attackers=(attacker,), victim=victim, fir=fir))
    return MultiAttackScenario(flows=tuple(flows))


def _scenario_with_fir(
    scenario: AttackScenario | MultiAttackScenario,
    fir: float,
    flow_fir_profile: tuple[float, ...] | None = None,
) -> AttackScenario | MultiAttackScenario:
    """Override the FIR of a single- or multi-attack scenario.

    Without a profile the override is uniform.  With a profile (multi-attack
    only) the profile is normalised so its loudest flow floods at ``fir`` and
    the others keep their relative quietness — e.g. profile ``(0.8, 0.2)`` at
    ``fir=0.8`` yields per-flow FIRs ``(0.8, 0.2)``.
    """
    if isinstance(scenario, MultiAttackScenario):
        if flow_fir_profile:
            return scenario.with_firs(scaled_flow_firs(flow_fir_profile, fir))
        return scenario.with_fir(fir)
    return replace(scenario, fir=fir)


def scaled_flow_firs(profile: tuple[float, ...], fir: float) -> tuple[float, ...]:
    """Per-flow FIRs: ``profile`` rescaled so its maximum equals ``fir``."""
    loudest = max(profile)
    if loudest <= 0.0:
        raise ValueError("flow FIR profile needs at least one positive entry")
    # Ratio first: the loudest flow lands *exactly* on the swept FIR value.
    return tuple(min(1.0, fir * (value / loudest)) for value in profile)


@dataclass(frozen=True)
class EpisodeShape:
    """Cycle arithmetic shared by every run of the same attack episode."""

    total_cycles: int
    attack_start: int
    attack_end: int

    @classmethod
    def from_windows(
        cls, builder: DatasetBuilder, pre: int, attack: int, post: int
    ) -> "EpisodeShape":
        period = builder.config.sample_period
        warmup = builder.config.warmup_cycles
        return cls(
            total_cycles=warmup + (pre + attack + post) * period + 1,
            attack_start=warmup + pre * period,
            attack_end=warmup + (pre + attack) * period,
        )


def _attacked_simulator(
    builder: DatasetBuilder,
    benchmark: str,
    scenario: AttackScenario | MultiAttackScenario,
    shape: EpisodeShape,
    seed: int,
) -> NoCSimulator:
    """The defended run's system under attack (identical for all comparators).

    ``scenario`` carries its final per-flow FIRs; callers apply
    :func:`_scenario_with_fir` before building the simulator.
    """
    config = builder.config
    simulator = NoCSimulator(config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    if isinstance(scenario, MultiAttackScenario):
        for source in scenario.attacker_sources(
            builder.topology,
            seed=seed + 1,
            packet_size_flits=config.packet_size_flits,
            start_cycle=shape.attack_start,
            end_cycle=shape.attack_end,
        ):
            simulator.add_source(source)
    else:
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(
                    attackers=scenario.attackers,
                    victim=scenario.victim,
                    fir=scenario.fir,
                    packet_size_flits=config.packet_size_flits,
                    start_cycle=shape.attack_start,
                    end_cycle=shape.attack_end,
                ),
                builder.topology,
                seed=seed + 1,
            )
        )
    return simulator


def baseline_benign_latency(
    builder: DatasetBuilder,
    benchmark: str = "uniform_random",
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
) -> float:
    """No-attack benign latency over the episode's measurement horizon.

    Independent of FIR and policy — compute it once per mesh/benchmark when
    sweeping.
    """
    shape = EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    simulator = NoCSimulator(builder.config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    simulator.run(shape.total_cycles)
    return simulator.latency(benign_only=True).packet_latency


def run_defended_episode(
    fence: DL2Fence,
    builder: DatasetBuilder,
    policy: MitigationPolicy,
    fir: float,
    benchmark: str = "uniform_random",
    scenario: AttackScenario | MultiAttackScenario | None = None,
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
    baseline_latency: float | None = None,
    flow_fir_profile: tuple[float, ...] | None = None,
) -> tuple[DefenseReport, float]:
    """Run one attack episode under guard; returns (report, baseline latency).

    ``scenario`` may be a single :class:`AttackScenario` or a
    :class:`MultiAttackScenario` of concurrent floods; the guard then fences
    the attackers over iterative localization rounds and the report carries
    per-attacker latencies plus time-to-full-containment.
    ``flow_fir_profile`` makes a multi-attack episode asymmetric: the profile
    is rescaled so its loudest flow floods at ``fir`` (see
    :func:`_scenario_with_fir`).

    The baseline is the same workload and measurement horizon with neither
    attacker nor guard — the no-attack benign latency the defended system is
    trying to get back to.  Pass ``baseline_latency`` to reuse a previously
    measured value instead of re-simulating it.
    """
    shape = EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    if scenario is None:
        scenario = _default_scenario(builder, fir)
    else:
        scenario = _scenario_with_fir(scenario, fir, flow_fir_profile)
    if baseline_latency is None:
        baseline_latency = baseline_benign_latency(
            builder,
            benchmark,
            pre_attack_windows,
            attack_windows,
            post_attack_windows,
            seed,
        )

    simulator = _attacked_simulator(builder, benchmark, scenario, shape, seed)
    guard = DL2FenceGuard(
        fence,
        policy,
        attack_start=shape.attack_start,
        attack_end=shape.attack_end,
        true_attackers=scenario.attackers,
    )
    guard.attach(
        simulator,
        monitor_config=MonitorConfig(sample_period=builder.config.sample_period),
    )
    simulator.run(shape.total_cycles)
    return guard.report, baseline_latency


def unmitigated_attack_latency(
    builder: DatasetBuilder,
    fir: float,
    benchmark: str = "uniform_random",
    scenario: AttackScenario | MultiAttackScenario | None = None,
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
    flow_fir_profile: tuple[float, ...] | None = None,
) -> float:
    """Benign latency of the same attack episode with no defense at all.

    Measured over benign packets delivered while the attack runs (skipping
    the first window so the congestion has built up) — the do-nothing
    comparator for the mitigated latency.
    """
    shape = EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    if scenario is None:
        scenario = _default_scenario(builder, fir)
    else:
        scenario = _scenario_with_fir(scenario, fir, flow_fir_profile)
    simulator = _attacked_simulator(builder, benchmark, scenario, shape, seed)
    simulator.run(shape.total_cycles)
    period = builder.config.sample_period
    span = [
        packet
        for packet in simulator.stats.delivered
        if not packet.is_malicious
        and shape.attack_start + period <= packet.ejected_cycle <= shape.attack_end
    ]
    if not span:
        return float("nan")
    return LatencyStats.from_packets(span).packet_latency


@dataclass(frozen=True)
class _SweepTask:
    """One independent simulation of the mitigation sweep fan-out."""

    kind: str  # "unmitigated" | "episode"
    dataset_config: DatasetConfig
    benchmark: str
    fir: float
    scenario: AttackScenario | MultiAttackScenario | None
    attack_windows: int
    flow_fir_profile: tuple[float, ...] | None
    policy: MitigationPolicy | None = None
    fence: DL2Fence | None = None
    baseline: float | None = None


def sweep_fence_key_payload(
    experiment: ExperimentConfig, training_benchmarks: tuple[str, ...]
) -> dict:
    """The training configuration that identifies a sweep's fence.

    Built by the same :func:`repro.runtime.engine.fence_cache_payload`
    helper :meth:`ExperimentEngine.trained_fence` keys its cache entry
    with (same arguments as :func:`train_defense_pipeline` passes), so
    per-episode entries are shared exactly when the pipeline defending
    them is the same.
    """
    return fence_cache_payload(
        experiment.dataset_config(),
        DL2FenceConfig(seed=experiment.seed),
        list(training_benchmarks),
        experiment.scenarios_per_benchmark,
        (1, 2),
        experiment.seed,
        experiment.detector_epochs,
        experiment.localizer_epochs,
    )


def _task_cache_payload(task: _SweepTask, fence_key: dict) -> tuple[str, dict]:
    """(cache kind, payload) of one sweep task's per-episode cache entry.

    The fence object itself cannot enter a cache key; its training
    configuration (``fence_key``) stands in for it.  The pre-computed
    baseline latency is deliberately excluded — it does not influence the
    simulated episode, only later table assembly.
    """
    payload = {
        "config": task.dataset_config,
        "benchmark": task.benchmark,
        "fir": task.fir,
        "scenario": task.scenario,
        "attack_windows": task.attack_windows,
        "flow_fir_profile": task.flow_fir_profile,
        "dtype": default_dtype(),
    }
    if task.kind == "unmitigated":
        return "unmitigated-latency", payload
    payload["policy"] = task.policy
    payload["fence"] = fence_key
    return "mitigation-episode", payload


def _fetch_task_result(engine: ExperimentEngine, kind: str, payload: dict):
    """Load one cached episode result (None on miss)."""
    if kind == "unmitigated-latency":
        return engine.cache.fetch(
            kind,
            payload,
            lambda directory: float(
                json.loads((directory / "value.json").read_text())["value"]
            ),
        )
    return engine.cache.fetch(
        kind,
        payload,
        lambda directory: DefenseReport.from_payload(
            json.loads((directory / "report.json").read_text())
        ),
    )


def _store_task_result(engine: ExperimentEngine, kind: str, payload: dict, result):
    """Persist one episode result into the per-episode cache."""
    if kind == "unmitigated-latency":
        engine.cache.store(
            kind,
            payload,
            lambda directory: (directory / "value.json").write_text(
                json.dumps({"value": float(result)})
            ),
        )
    else:
        engine.cache.store(
            kind,
            payload,
            lambda directory: (directory / "report.json").write_text(
                json.dumps(result.to_payload())
            ),
        )


def _run_sweep_task(task: _SweepTask):
    """Execute one sweep simulation (module-level for worker processes)."""
    builder = DatasetBuilder(task.dataset_config)
    if task.kind == "unmitigated":
        return unmitigated_attack_latency(
            builder,
            task.fir,
            benchmark=task.benchmark,
            scenario=task.scenario,
            attack_windows=task.attack_windows,
            flow_fir_profile=task.flow_fir_profile,
        )
    report, _ = run_defended_episode(
        task.fence,
        builder,
        task.policy,
        fir=task.fir,
        benchmark=task.benchmark,
        scenario=task.scenario,
        attack_windows=task.attack_windows,
        baseline_latency=task.baseline,
        flow_fir_profile=task.flow_fir_profile,
    )
    return report


def run_mitigation_sweep(
    firs: tuple[float, ...] = (0.4, 0.8),
    rows_values: tuple[int, ...] = (8,),
    policies: tuple[MitigationPolicy, ...] = DEFAULT_POLICIES,
    config: ExperimentConfig | None = None,
    benchmark: str = "uniform_random",
    num_flows: int = 1,
    attack_windows: int = 10,
    training_benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
    flow_fir_profile: tuple[float, ...] | None = None,
    engine: ExperimentEngine | None = None,
) -> list[MitigationPoint]:
    """Sweep FIR x mesh size x mitigation policy with one trained pipeline per mesh.

    ``num_flows >= 2`` switches every episode to the deterministic
    row-disjoint :func:`default_multi_scenario` of concurrent floods, and
    ``benchmark`` accepts PARSEC workloads as well as synthetic patterns, so
    the sweep covers the paper's 16x16 + PARSEC evaluation scale.
    ``flow_fir_profile`` (e.g. :data:`ASYMMETRIC_FLOW_FIRS`) makes the
    concurrent flows asymmetric: the profile is rescaled so the loudest flow
    floods at the swept FIR while the others stay proportionally quieter.

    The pipeline is trained once per mesh through the experiment engine's
    artifact cache, the independent episode/unmitigated simulations fan out
    across the engine's worker processes (bit-identical to the serial order
    — every task carries its own seed), and the finished sweep is memoised.
    """
    base_config = config or ExperimentConfig()
    engine = engine or ExperimentEngine.from_environment()
    payload = {
        "experiment": base_config,
        "firs": tuple(firs),
        "rows_values": tuple(rows_values),
        "policies": tuple(policies),
        "benchmark": benchmark,
        "num_flows": num_flows,
        "attack_windows": attack_windows,
        "training_benchmarks": tuple(training_benchmarks),
        "flow_fir_profile": tuple(flow_fir_profile) if flow_fir_profile else None,
        "dtype": default_dtype(),
    }
    records = engine.cached_records(
        "mitigation-sweep",
        payload,
        lambda: [
            point.to_payload()
            for point in _compute_mitigation_points(
                tuple(firs),
                tuple(rows_values),
                tuple(policies),
                base_config,
                benchmark,
                num_flows,
                attack_windows,
                tuple(training_benchmarks),
                tuple(flow_fir_profile) if flow_fir_profile else None,
                engine,
            )
        ],
    )
    return [MitigationPoint.from_payload(record) for record in records]


def _compute_mitigation_points(
    firs: tuple[float, ...],
    rows_values: tuple[int, ...],
    policies: tuple[MitigationPolicy, ...],
    base_config: ExperimentConfig,
    benchmark: str,
    num_flows: int,
    attack_windows: int,
    training_benchmarks: tuple[str, ...],
    flow_fir_profile: tuple[float, ...] | None,
    engine: ExperimentEngine,
) -> list[MitigationPoint]:
    """Cache-miss path of the sweep: train once per mesh, fan episodes out."""
    points: list[MitigationPoint] = []
    for rows in rows_values:
        experiment = base_config.scaled(rows=rows)
        fence, builder = train_defense_pipeline(
            experiment, benchmarks=training_benchmarks, engine=engine
        )
        mesh_baseline = baseline_benign_latency(
            builder, benchmark=benchmark, attack_windows=attack_windows
        )
        scenario = (
            default_multi_scenario(builder, num_flows=num_flows)
            if num_flows > 1
            else None
        )
        profile = flow_fir_profile if num_flows > 1 else None
        tasks: list[_SweepTask] = []
        for fir in firs:
            tasks.append(
                _SweepTask(
                    kind="unmitigated",
                    dataset_config=builder.config,
                    benchmark=benchmark,
                    fir=fir,
                    scenario=scenario,
                    attack_windows=attack_windows,
                    flow_fir_profile=profile,
                )
            )
            for policy in policies:
                tasks.append(
                    _SweepTask(
                        kind="episode",
                        dataset_config=builder.config,
                        benchmark=benchmark,
                        fir=fir,
                        scenario=scenario,
                        attack_windows=attack_windows,
                        flow_fir_profile=profile,
                        policy=policy,
                        fence=fence,
                        baseline=mesh_baseline,
                    )
                )
        # Per-episode caching: each task is memoised individually (like
        # scenario runs), so changing one FIR — or adding a policy — only
        # simulates the episodes that are actually new.
        fence_key = sweep_fence_key_payload(experiment, training_benchmarks)
        cache_keys = [_task_cache_payload(task, fence_key) for task in tasks]
        cached = [
            _fetch_task_result(engine, kind, payload) for kind, payload in cache_keys
        ]
        missing = [index for index, value in enumerate(cached) if value is None]
        fresh = engine.runner.map(
            _run_sweep_task, [tasks[index] for index in missing]
        )
        for index, value in zip(missing, fresh):
            cached[index] = value
            kind, payload = cache_keys[index]
            _store_task_result(engine, kind, payload, value)
        results = iter(cached)
        for fir in firs:
            unmitigated = next(results)
            flow_firs = scaled_flow_firs(profile, fir) if profile else ()
            for policy in policies:
                report = next(results)
                truth = set(report.true_attackers)
                points.append(
                    MitigationPoint(
                        fir=fir,
                        rows=rows,
                        policy=policy.name,
                        # detection of *the attack*: pre-attack false
                        # positives do not count (detection_latency bounds
                        # the first detection at attack_start)
                        detected=report.detection_latency is not None,
                        detection_latency=report.detection_latency,
                        time_to_mitigation=report.time_to_mitigation,
                        baseline_latency=mesh_baseline,
                        attack_latency=report.attack_latency(),
                        unmitigated_latency=unmitigated,
                        mitigated_latency=report.post_mitigation_latency(),
                        recovery_ratio=report.recovery_ratio(mesh_baseline),
                        engaged_nodes=tuple(sorted(report.engaged_nodes)),
                        collateral_nodes=tuple(sorted(report.collateral_nodes)),
                        collateral_node_windows=report.collateral_node_windows,
                        benchmark=benchmark,
                        num_attackers=len(truth),
                        attackers_fenced=len(truth & report.engaged_nodes),
                        time_to_full_containment=report.time_to_full_containment,
                        localization_rounds=report.localization_rounds,
                        reengagements=report.reengagements,
                        per_attacker_detection_latency=(
                            report.per_attacker_detection_latency()
                        ),
                        flow_firs=flow_firs,
                    )
                )
    return points
