"""Closed-loop mitigation experiment: FIR x mesh size x policy sweep.

This driver measures what the paper's fence enables but never evaluates:
with the online :class:`~repro.defense.DL2FenceGuard` attached to a live
simulation, how fast is a refined flooding attack detected and mitigated,
and how completely does benign-traffic latency recover?  For every
(FIR, mesh, policy) operating point it reports detection latency,
time-to-mitigation, benign latency in the three phases of the defended run,
the recovery ratio against a no-attack baseline, and collateral damage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseReport
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder
from repro.monitor.sampler import MonitorConfig
from repro.noc.simulator import NoCSimulator
from repro.noc.stats import LatencyStats
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.scenario import AttackScenario

__all__ = [
    "MitigationPoint",
    "baseline_benign_latency",
    "train_defense_pipeline",
    "run_defended_episode",
    "run_mitigation_sweep",
    "unmitigated_attack_latency",
]

#: Policies compared by default: gentle rate limiting versus full isolation.
DEFAULT_POLICIES = (
    MitigationPolicy.throttle(0.1, engage_after=2, release_after=6, flush_queue=True),
    MitigationPolicy.quarantine(engage_after=2, release_after=6, flush_queue=True),
)


@dataclass
class MitigationPoint:
    """Outcome of one defended episode at one operating point."""

    fir: float
    rows: int
    policy: str
    detected: bool
    detection_latency: int | None
    time_to_mitigation: int | None
    baseline_latency: float
    attack_latency: float
    unmitigated_latency: float
    mitigated_latency: float
    recovery_ratio: float
    engaged_nodes: tuple[int, ...]
    collateral_nodes: tuple[int, ...]
    collateral_node_windows: int

    def as_dict(self) -> dict:
        return {
            "fir": self.fir,
            "rows": self.rows,
            "policy": self.policy,
            "detected": self.detected,
            "detection_latency": self.detection_latency,
            "time_to_mitigation": self.time_to_mitigation,
            "baseline_latency": self.baseline_latency,
            "attack_latency": self.attack_latency,
            "unmitigated_latency": self.unmitigated_latency,
            "mitigated_latency": self.mitigated_latency,
            "recovery_ratio": self.recovery_ratio,
            "engaged": len(self.engaged_nodes),
            "collateral": len(self.collateral_nodes),
            "collateral_node_windows": self.collateral_node_windows,
        }


def train_defense_pipeline(
    config: ExperimentConfig,
    benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
) -> tuple[DL2Fence, DatasetBuilder]:
    """Train a DL2Fence pipeline at this experiment scale (once per mesh)."""
    builder = DatasetBuilder(config.dataset_config())
    runs = builder.build_runs(
        benchmarks=list(benchmarks),
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed,
    )
    fence = DL2Fence(builder.topology, DL2FenceConfig(seed=config.seed))
    fence.fit_from_runs(
        builder,
        runs,
        detector_epochs=config.detector_epochs,
        localizer_epochs=config.localizer_epochs,
    )
    return fence, builder


def _default_scenario(builder: DatasetBuilder, fir: float) -> AttackScenario:
    """A long diagonal flow: far-corner attacker, victim near the origin."""
    topology = builder.topology
    return AttackScenario(
        attackers=(topology.node_id(topology.columns - 2, topology.rows - 2),),
        victim=topology.node_id(1, 1),
        fir=fir,
    )


@dataclass(frozen=True)
class _EpisodeShape:
    """Cycle arithmetic shared by every run of the same attack episode."""

    total_cycles: int
    attack_start: int
    attack_end: int

    @classmethod
    def from_windows(
        cls, builder: DatasetBuilder, pre: int, attack: int, post: int
    ) -> "_EpisodeShape":
        period = builder.config.sample_period
        warmup = builder.config.warmup_cycles
        return cls(
            total_cycles=warmup + (pre + attack + post) * period + 1,
            attack_start=warmup + pre * period,
            attack_end=warmup + (pre + attack) * period,
        )


def _attacked_simulator(
    builder: DatasetBuilder,
    benchmark: str,
    scenario: AttackScenario,
    fir: float,
    shape: _EpisodeShape,
    seed: int,
) -> NoCSimulator:
    """The defended run's system under attack (identical for all comparators)."""
    config = builder.config
    simulator = NoCSimulator(config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    simulator.add_source(
        FloodingAttacker(
            FloodingConfig(
                attackers=scenario.attackers,
                victim=scenario.victim,
                fir=fir,
                packet_size_flits=config.packet_size_flits,
                start_cycle=shape.attack_start,
                end_cycle=shape.attack_end,
            ),
            builder.topology,
            seed=seed + 1,
        )
    )
    return simulator


def baseline_benign_latency(
    builder: DatasetBuilder,
    benchmark: str = "uniform_random",
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
) -> float:
    """No-attack benign latency over the episode's measurement horizon.

    Independent of FIR and policy — compute it once per mesh/benchmark when
    sweeping.
    """
    shape = _EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    simulator = NoCSimulator(builder.config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    simulator.run(shape.total_cycles)
    return simulator.latency(benign_only=True).packet_latency


def run_defended_episode(
    fence: DL2Fence,
    builder: DatasetBuilder,
    policy: MitigationPolicy,
    fir: float,
    benchmark: str = "uniform_random",
    scenario: AttackScenario | None = None,
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
    baseline_latency: float | None = None,
) -> tuple[DefenseReport, float]:
    """Run one attack episode under guard; returns (report, baseline latency).

    The baseline is the same workload and measurement horizon with neither
    attacker nor guard — the no-attack benign latency the defended system is
    trying to get back to.  Pass ``baseline_latency`` to reuse a previously
    measured value instead of re-simulating it.
    """
    shape = _EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    if scenario is None:
        scenario = _default_scenario(builder, fir)
    else:
        scenario = replace(scenario, fir=fir)
    if baseline_latency is None:
        baseline_latency = baseline_benign_latency(
            builder,
            benchmark,
            pre_attack_windows,
            attack_windows,
            post_attack_windows,
            seed,
        )

    simulator = _attacked_simulator(builder, benchmark, scenario, fir, shape, seed)
    guard = DL2FenceGuard(
        fence,
        policy,
        attack_start=shape.attack_start,
        attack_end=shape.attack_end,
        true_attackers=scenario.attackers,
    )
    guard.attach(
        simulator,
        monitor_config=MonitorConfig(sample_period=builder.config.sample_period),
    )
    simulator.run(shape.total_cycles)
    return guard.report, baseline_latency


def unmitigated_attack_latency(
    builder: DatasetBuilder,
    fir: float,
    benchmark: str = "uniform_random",
    scenario: AttackScenario | None = None,
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
) -> float:
    """Benign latency of the same attack episode with no defense at all.

    Measured over benign packets delivered while the attack runs (skipping
    the first window so the congestion has built up) — the do-nothing
    comparator for the mitigated latency.
    """
    shape = _EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    if scenario is None:
        scenario = _default_scenario(builder, fir)
    simulator = _attacked_simulator(builder, benchmark, scenario, fir, shape, seed)
    simulator.run(shape.total_cycles)
    period = builder.config.sample_period
    span = [
        packet
        for packet in simulator.stats.delivered
        if not packet.is_malicious
        and shape.attack_start + period <= packet.ejected_cycle <= shape.attack_end
    ]
    if not span:
        return float("nan")
    return LatencyStats.from_packets(span).packet_latency


def run_mitigation_sweep(
    firs: tuple[float, ...] = (0.4, 0.8),
    rows_values: tuple[int, ...] = (8,),
    policies: tuple[MitigationPolicy, ...] = DEFAULT_POLICIES,
    config: ExperimentConfig | None = None,
    benchmark: str = "uniform_random",
) -> list[MitigationPoint]:
    """Sweep FIR x mesh size x mitigation policy with one trained pipeline per mesh."""
    base_config = config or ExperimentConfig()
    points: list[MitigationPoint] = []
    for rows in rows_values:
        experiment = base_config.scaled(rows=rows)
        fence, builder = train_defense_pipeline(experiment)
        mesh_baseline = baseline_benign_latency(builder, benchmark=benchmark)
        for fir in firs:
            unmitigated = unmitigated_attack_latency(builder, fir, benchmark=benchmark)
            for policy in policies:
                report, baseline = run_defended_episode(
                    fence,
                    builder,
                    policy,
                    fir=fir,
                    benchmark=benchmark,
                    baseline_latency=mesh_baseline,
                )
                points.append(
                    MitigationPoint(
                        fir=fir,
                        rows=rows,
                        policy=policy.name,
                        # detection of *the attack*: pre-attack false
                        # positives do not count (detection_latency bounds
                        # the first detection at attack_start)
                        detected=report.detection_latency is not None,
                        detection_latency=report.detection_latency,
                        time_to_mitigation=report.time_to_mitigation,
                        baseline_latency=baseline,
                        attack_latency=report.attack_latency(),
                        unmitigated_latency=unmitigated,
                        mitigated_latency=report.post_mitigation_latency(),
                        recovery_ratio=report.recovery_ratio(baseline),
                        engaged_nodes=tuple(sorted(report.engaged_nodes)),
                        collateral_nodes=tuple(sorted(report.collateral_nodes)),
                        collateral_node_windows=report.collateral_node_windows,
                    )
                )
    return points
