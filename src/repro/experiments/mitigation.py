"""Closed-loop mitigation experiment: FIR x mesh size x policy sweep.

This driver measures what the paper's fence enables but never evaluates:
with the online :class:`~repro.defense.DL2FenceGuard` attached to a live
simulation, how fast is a refined flooding attack detected and mitigated,
and how completely does benign-traffic latency recover?  For every
(FIR, mesh, policy) operating point it reports detection latency,
time-to-mitigation, benign latency in the three phases of the defended run,
the recovery ratio against a no-attack baseline, and collateral damage.

Episodes accept either a single :class:`AttackScenario` or a
:class:`MultiAttackScenario` of concurrent floods on disjoint victims; the
multi-attack sweep additionally reports per-attacker detection latency and
the time until *all* attackers are contained, across the guard's iterative
localization rounds.  The sweep runs at the paper's 16x16 scale and over
PARSEC workloads (see :mod:`benchmarks.bench_fig6_mitigation_recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseReport
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder
from repro.monitor.sampler import MonitorConfig
from repro.noc.simulator import NoCSimulator
from repro.noc.stats import LatencyStats
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.scenario import AttackScenario, MultiAttackScenario

__all__ = [
    "MitigationPoint",
    "baseline_benign_latency",
    "default_multi_scenario",
    "train_defense_pipeline",
    "run_defended_episode",
    "run_mitigation_sweep",
    "unmitigated_attack_latency",
]

#: Policies compared by default: gentle rate limiting versus full isolation.
DEFAULT_POLICIES = (
    MitigationPolicy.throttle(0.1, engage_after=2, release_after=6, flush_queue=True),
    MitigationPolicy.quarantine(engage_after=2, release_after=6, flush_queue=True),
)


@dataclass
class MitigationPoint:
    """Outcome of one defended episode at one operating point."""

    fir: float
    rows: int
    policy: str
    detected: bool
    detection_latency: int | None
    time_to_mitigation: int | None
    baseline_latency: float
    attack_latency: float
    unmitigated_latency: float
    mitigated_latency: float
    recovery_ratio: float
    engaged_nodes: tuple[int, ...]
    collateral_nodes: tuple[int, ...]
    collateral_node_windows: int
    benchmark: str = "uniform_random"
    num_attackers: int = 1
    attackers_fenced: int = 0
    time_to_full_containment: int | None = None
    localization_rounds: int = 0
    reengagements: int = 0
    per_attacker_detection_latency: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "fir": self.fir,
            "rows": self.rows,
            "benchmark": self.benchmark,
            "policy": self.policy,
            "attackers": self.num_attackers,
            "detected": self.detected,
            "detection_latency": self.detection_latency,
            "time_to_mitigation": self.time_to_mitigation,
            "containment": self.time_to_full_containment,
            "fenced": self.attackers_fenced,
            "rounds": self.localization_rounds,
            "reengage": self.reengagements,
            "baseline_latency": self.baseline_latency,
            "attack_latency": self.attack_latency,
            "unmitigated_latency": self.unmitigated_latency,
            "mitigated_latency": self.mitigated_latency,
            "recovery_ratio": self.recovery_ratio,
            "engaged": len(self.engaged_nodes),
            "collateral": len(self.collateral_nodes),
            "collateral_node_windows": self.collateral_node_windows,
        }


def train_defense_pipeline(
    config: ExperimentConfig,
    benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
) -> tuple[DL2Fence, DatasetBuilder]:
    """Train a DL2Fence pipeline at this experiment scale (once per mesh)."""
    builder = DatasetBuilder(config.dataset_config())
    runs = builder.build_runs(
        benchmarks=list(benchmarks),
        scenarios_per_benchmark=config.scenarios_per_benchmark,
        seed=config.seed,
    )
    fence = DL2Fence(builder.topology, DL2FenceConfig(seed=config.seed))
    fence.fit_from_runs(
        builder,
        runs,
        detector_epochs=config.detector_epochs,
        localizer_epochs=config.localizer_epochs,
    )
    return fence, builder


def _default_scenario(builder: DatasetBuilder, fir: float) -> AttackScenario:
    """A long diagonal flow: far-corner attacker, victim near the origin."""
    topology = builder.topology
    return AttackScenario(
        attackers=(topology.node_id(topology.columns - 2, topology.rows - 2),),
        victim=topology.node_id(1, 1),
        fir=fir,
    )


def default_multi_scenario(
    builder: DatasetBuilder, num_flows: int = 2, fir: float = 0.8
) -> MultiAttackScenario:
    """Deterministic concurrent floods on disjoint victims in disjoint rows.

    Flow ``i`` floods along its own mesh row (rows spread evenly across the
    mesh), alternating east- and west-bound so both E and W abnormal-frame
    rules of the Table-Like Method are exercised.  Row-disjoint routes keep
    every flow's congestion signature independent — the cleanest instance of
    the "concurrent attackers on disjoint victims" threat model.
    """
    topology = builder.topology
    rows, cols = topology.rows, topology.columns
    if num_flows < 1:
        raise ValueError("num_flows must be >= 1")
    if rows < 4 or cols < 4:
        # On a 3-wide mesh the end-of-row attacker and victim coincide.
        raise ValueError("default multi-attack flows need at least a 4x4 mesh")
    if num_flows > rows - 2:
        raise ValueError(f"at most {rows - 2} row-disjoint flows fit on this mesh")
    flows = []
    for index in range(num_flows):
        y = 1 + round(index * (rows - 3) / max(1, num_flows - 1)) if num_flows > 1 else rows - 2
        if index % 2 == 0:
            attacker = topology.node_id(cols - 2, y)
            victim = topology.node_id(1, y)
        else:
            attacker = topology.node_id(1, y)
            victim = topology.node_id(cols - 2, y)
        flows.append(AttackScenario(attackers=(attacker,), victim=victim, fir=fir))
    return MultiAttackScenario(flows=tuple(flows))


def _scenario_with_fir(
    scenario: AttackScenario | MultiAttackScenario, fir: float
) -> AttackScenario | MultiAttackScenario:
    """Uniformly override the FIR of a single- or multi-attack scenario."""
    if isinstance(scenario, MultiAttackScenario):
        return scenario.with_fir(fir)
    return replace(scenario, fir=fir)


@dataclass(frozen=True)
class _EpisodeShape:
    """Cycle arithmetic shared by every run of the same attack episode."""

    total_cycles: int
    attack_start: int
    attack_end: int

    @classmethod
    def from_windows(
        cls, builder: DatasetBuilder, pre: int, attack: int, post: int
    ) -> "_EpisodeShape":
        period = builder.config.sample_period
        warmup = builder.config.warmup_cycles
        return cls(
            total_cycles=warmup + (pre + attack + post) * period + 1,
            attack_start=warmup + pre * period,
            attack_end=warmup + (pre + attack) * period,
        )


def _attacked_simulator(
    builder: DatasetBuilder,
    benchmark: str,
    scenario: AttackScenario | MultiAttackScenario,
    fir: float,
    shape: _EpisodeShape,
    seed: int,
) -> NoCSimulator:
    """The defended run's system under attack (identical for all comparators)."""
    config = builder.config
    simulator = NoCSimulator(config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    scenario = _scenario_with_fir(scenario, fir)
    if isinstance(scenario, MultiAttackScenario):
        for source in scenario.attacker_sources(
            builder.topology,
            seed=seed + 1,
            packet_size_flits=config.packet_size_flits,
            start_cycle=shape.attack_start,
            end_cycle=shape.attack_end,
        ):
            simulator.add_source(source)
    else:
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(
                    attackers=scenario.attackers,
                    victim=scenario.victim,
                    fir=fir,
                    packet_size_flits=config.packet_size_flits,
                    start_cycle=shape.attack_start,
                    end_cycle=shape.attack_end,
                ),
                builder.topology,
                seed=seed + 1,
            )
        )
    return simulator


def baseline_benign_latency(
    builder: DatasetBuilder,
    benchmark: str = "uniform_random",
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
) -> float:
    """No-attack benign latency over the episode's measurement horizon.

    Independent of FIR and policy — compute it once per mesh/benchmark when
    sweeping.
    """
    shape = _EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    simulator = NoCSimulator(builder.config.simulation_config())
    simulator.add_source(builder.make_workload(benchmark, seed=seed))
    simulator.run(shape.total_cycles)
    return simulator.latency(benign_only=True).packet_latency


def run_defended_episode(
    fence: DL2Fence,
    builder: DatasetBuilder,
    policy: MitigationPolicy,
    fir: float,
    benchmark: str = "uniform_random",
    scenario: AttackScenario | MultiAttackScenario | None = None,
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
    baseline_latency: float | None = None,
) -> tuple[DefenseReport, float]:
    """Run one attack episode under guard; returns (report, baseline latency).

    ``scenario`` may be a single :class:`AttackScenario` or a
    :class:`MultiAttackScenario` of concurrent floods; the guard then fences
    the attackers over iterative localization rounds and the report carries
    per-attacker latencies plus time-to-full-containment.

    The baseline is the same workload and measurement horizon with neither
    attacker nor guard — the no-attack benign latency the defended system is
    trying to get back to.  Pass ``baseline_latency`` to reuse a previously
    measured value instead of re-simulating it.
    """
    shape = _EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    if scenario is None:
        scenario = _default_scenario(builder, fir)
    else:
        scenario = _scenario_with_fir(scenario, fir)
    if baseline_latency is None:
        baseline_latency = baseline_benign_latency(
            builder,
            benchmark,
            pre_attack_windows,
            attack_windows,
            post_attack_windows,
            seed,
        )

    simulator = _attacked_simulator(builder, benchmark, scenario, fir, shape, seed)
    guard = DL2FenceGuard(
        fence,
        policy,
        attack_start=shape.attack_start,
        attack_end=shape.attack_end,
        true_attackers=scenario.attackers,
    )
    guard.attach(
        simulator,
        monitor_config=MonitorConfig(sample_period=builder.config.sample_period),
    )
    simulator.run(shape.total_cycles)
    return guard.report, baseline_latency


def unmitigated_attack_latency(
    builder: DatasetBuilder,
    fir: float,
    benchmark: str = "uniform_random",
    scenario: AttackScenario | MultiAttackScenario | None = None,
    pre_attack_windows: int = 4,
    attack_windows: int = 10,
    post_attack_windows: int = 4,
    seed: int = 42,
) -> float:
    """Benign latency of the same attack episode with no defense at all.

    Measured over benign packets delivered while the attack runs (skipping
    the first window so the congestion has built up) — the do-nothing
    comparator for the mitigated latency.
    """
    shape = _EpisodeShape.from_windows(
        builder, pre_attack_windows, attack_windows, post_attack_windows
    )
    if scenario is None:
        scenario = _default_scenario(builder, fir)
    simulator = _attacked_simulator(builder, benchmark, scenario, fir, shape, seed)
    simulator.run(shape.total_cycles)
    period = builder.config.sample_period
    span = [
        packet
        for packet in simulator.stats.delivered
        if not packet.is_malicious
        and shape.attack_start + period <= packet.ejected_cycle <= shape.attack_end
    ]
    if not span:
        return float("nan")
    return LatencyStats.from_packets(span).packet_latency


def run_mitigation_sweep(
    firs: tuple[float, ...] = (0.4, 0.8),
    rows_values: tuple[int, ...] = (8,),
    policies: tuple[MitigationPolicy, ...] = DEFAULT_POLICIES,
    config: ExperimentConfig | None = None,
    benchmark: str = "uniform_random",
    num_flows: int = 1,
    attack_windows: int = 10,
    training_benchmarks: tuple[str, ...] = ("uniform_random", "tornado"),
) -> list[MitigationPoint]:
    """Sweep FIR x mesh size x mitigation policy with one trained pipeline per mesh.

    ``num_flows >= 2`` switches every episode to the deterministic
    row-disjoint :func:`default_multi_scenario` of concurrent floods, and
    ``benchmark`` accepts PARSEC workloads as well as synthetic patterns, so
    the sweep covers the paper's 16x16 + PARSEC evaluation scale.
    """
    base_config = config or ExperimentConfig()
    points: list[MitigationPoint] = []
    for rows in rows_values:
        experiment = base_config.scaled(rows=rows)
        fence, builder = train_defense_pipeline(experiment, benchmarks=training_benchmarks)
        mesh_baseline = baseline_benign_latency(
            builder, benchmark=benchmark, attack_windows=attack_windows
        )
        scenario = (
            default_multi_scenario(builder, num_flows=num_flows)
            if num_flows > 1
            else None
        )
        for fir in firs:
            unmitigated = unmitigated_attack_latency(
                builder, fir, benchmark=benchmark, scenario=scenario,
                attack_windows=attack_windows,
            )
            for policy in policies:
                report, baseline = run_defended_episode(
                    fence,
                    builder,
                    policy,
                    fir=fir,
                    benchmark=benchmark,
                    scenario=scenario,
                    attack_windows=attack_windows,
                    baseline_latency=mesh_baseline,
                )
                truth = set(report.true_attackers)
                points.append(
                    MitigationPoint(
                        fir=fir,
                        rows=rows,
                        policy=policy.name,
                        # detection of *the attack*: pre-attack false
                        # positives do not count (detection_latency bounds
                        # the first detection at attack_start)
                        detected=report.detection_latency is not None,
                        detection_latency=report.detection_latency,
                        time_to_mitigation=report.time_to_mitigation,
                        baseline_latency=baseline,
                        attack_latency=report.attack_latency(),
                        unmitigated_latency=unmitigated,
                        mitigated_latency=report.post_mitigation_latency(),
                        recovery_ratio=report.recovery_ratio(baseline),
                        engaged_nodes=tuple(sorted(report.engaged_nodes)),
                        collateral_nodes=tuple(sorted(report.collateral_nodes)),
                        collateral_node_windows=report.collateral_node_windows,
                        benchmark=benchmark,
                        num_attackers=len(truth),
                        attackers_fenced=len(truth & report.engaged_nodes),
                        time_to_full_containment=report.time_to_full_containment,
                        localization_rounds=report.localization_rounds,
                        reengagements=report.reengagements,
                        per_attacker_detection_latency=(
                            report.per_attacker_detection_latency()
                        ),
                    )
                )
    return points
