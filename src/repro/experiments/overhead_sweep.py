"""Figure 5: hardware overhead versus NoC size.

Thin wrapper around :mod:`repro.hardware` that also evaluates the two claims
attached to the figure in the paper text: the ~76% overhead decrease between
8x8 and 16x16 and the >40% saving against the distributed perceptron scheme
at 8x8.
"""

from __future__ import annotations

from repro.core.config import DL2FenceConfig
from repro.hardware.overhead import (
    OverheadReport,
    overhead_vs_mesh_size,
    relative_saving,
)
from repro.hardware.related_works import RELATED_WORKS

__all__ = ["run_overhead_sweep"]

PAPER_OVERHEAD_PERCENT = {4: 7.40, 8: 1.90, 16: 0.45, 32: 0.11}


def run_overhead_sweep(
    sizes: tuple[int, ...] = (4, 8, 16, 32),
    config: DL2FenceConfig | None = None,
) -> dict:
    """Run the Figure 5 sweep and derive the headline hardware claims.

    Returns a dictionary with the per-size :class:`OverheadReport` list, the
    paper's reference percentages, the 8x8 -> 16x16 relative saving and the
    saving against the Sniffer per-router scheme at 8x8.
    """
    reports: list[OverheadReport] = overhead_vs_mesh_size(sizes, config=config)
    by_rows = {report.rows: report for report in reports}
    summary: dict = {
        "reports": reports,
        "paper_percent": {
            rows: PAPER_OVERHEAD_PERCENT.get(rows) for rows in sizes
        },
        "measured_percent": {report.rows: report.overhead_percent for report in reports},
    }
    if 8 in by_rows and 16 in by_rows:
        summary["saving_8_to_16"] = relative_saving(
            by_rows[16].overhead_fraction, by_rows[8].overhead_fraction
        )
        summary["paper_saving_8_to_16"] = 0.763
    if 8 in by_rows:
        sniffer = RELATED_WORKS["sniffer"].hardware_overhead_percent / 100.0
        summary["saving_vs_sniffer_8x8"] = relative_saving(
            by_rows[8].overhead_fraction, sniffer
        )
        summary["paper_saving_vs_sniffer"] = 0.424
    return summary
