"""Experiment harness: drivers that regenerate the paper's tables and figures.

Every table and figure of the evaluation section has a driver here; the
``benchmarks/`` directory wraps these drivers in pytest-benchmark entries and
``EXPERIMENTS.md`` records the measured outputs next to the paper's values.

* Figure 1 — :mod:`repro.experiments.latency_sweep`
* Tables 1-3 — :mod:`repro.experiments.detection`
* Figure 4 — :mod:`repro.experiments.localization_examples`
* Figure 5 — :mod:`repro.experiments.overhead_sweep`
* Table 4 — :mod:`repro.experiments.comparison`
* Closed-loop mitigation (beyond the paper) — :mod:`repro.experiments.mitigation`
* Refined-DoS robustness matrix (beyond the paper) —
  :mod:`repro.experiments.robustness`
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.detection import (
    BenchmarkResult,
    FeatureExperimentResult,
    run_feature_experiment,
)
from repro.experiments.latency_sweep import LatencyPoint, run_latency_sweep
from repro.experiments.mitigation import (
    MitigationPoint,
    default_multi_scenario,
    run_defended_episode,
    run_mitigation_sweep,
    train_defense_pipeline,
)
from repro.experiments.localization_examples import (
    LocalizationExample,
    run_localization_examples,
)
from repro.experiments.overhead_sweep import run_overhead_sweep
from repro.experiments.comparison import ComparisonRow, run_comparison
from repro.experiments.robustness import (
    RobustnessPoint,
    run_attack_episode,
    run_robustness_matrix,
)
from repro.experiments.tables import format_feature_table, format_rows

__all__ = [
    "BenchmarkResult",
    "ComparisonRow",
    "ExperimentConfig",
    "FeatureExperimentResult",
    "LatencyPoint",
    "LocalizationExample",
    "MitigationPoint",
    "RobustnessPoint",
    "format_feature_table",
    "format_rows",
    "run_attack_episode",
    "run_robustness_matrix",
    "run_comparison",
    "run_defended_episode",
    "run_feature_experiment",
    "run_latency_sweep",
    "run_localization_examples",
    "default_multi_scenario",
    "run_mitigation_sweep",
    "run_overhead_sweep",
    "train_defense_pipeline",
]
