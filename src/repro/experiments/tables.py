"""Plain-text table formatting for the experiment drivers.

The benchmark harness prints the same rows/columns the paper reports so the
reproduction can be compared side-by-side with the published tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.experiments.detection import FeatureExperimentResult
from repro.traffic.parsec import PARSEC_WORKLOADS
from repro.traffic.synthetic import SYNTHETIC_PATTERNS

__all__ = ["format_rows", "format_feature_table"]


def _format_cell(value) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_rows(rows: Iterable[Mapping], columns: list[str] | None = None) -> str:
    """Format an iterable of dict rows into an aligned plain-text table."""
    rows = [dict(row) for row in rows]
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_feature_table(result: FeatureExperimentResult, title: str = "") -> str:
    """Render one Table 1/2/3-style table: metrics per benchmark + averages.

    Each cell shows ``detection | localization`` exactly like the paper's
    "Detection results (left) | Localization results (right)" layout.
    """
    metrics = ["accuracy", "precision", "recall", "f1"]
    benchmark_order = [
        r.benchmark
        for r in result.per_benchmark
        if r.benchmark in SYNTHETIC_PATTERNS
    ] + [r.benchmark for r in result.per_benchmark if r.benchmark in PARSEC_WORKLOADS]

    rows = []
    for metric in metrics:
        row: dict = {"metric": metric}
        for benchmark in benchmark_order:
            entry = result.result_for(benchmark)
            det = getattr(entry.detection, metric)
            loc = (
                getattr(entry.localization, metric)
                if entry.localization is not None
                else None
            )
            loc_text = f"{loc:.2f}" if loc is not None else "N/A"
            row[benchmark] = f"{det:.2f}|{loc_text}"
        try:
            stp_det = getattr(result.average_detection(synthetic=True), metric)
            stp_loc = getattr(result.average_localization(synthetic=True), metric)
            row["STP avg"] = f"{stp_det:.3f}|{stp_loc:.3f}"
        except ValueError:
            row["STP avg"] = "N/A"
        try:
            parsec_det = getattr(result.average_detection(synthetic=False), metric)
            parsec_loc = getattr(result.average_localization(synthetic=False), metric)
            row["PARSEC avg"] = f"{parsec_det:.3f}|{parsec_loc:.3f}"
        except ValueError:
            row["PARSEC avg"] = "N/A"
        rows.append(row)

    heading = title or (
        f"Detection on {result.detection_feature.value.upper()} | "
        f"Localization on {result.localization_feature.value.upper()}"
    )
    return heading + "\n" + format_rows(rows)
