"""Figure 1 (right): system latency versus Flooding Injection Rate.

The paper overlays the FDoS attack on benign workload traffic and sweeps the
FIR from 0 (attack disabled) to 1 (system crash), reporting packet latency,
flit latency and their queueing components of the *benign* traffic.  Latency
should grow slowly at low FIR, explode as the NoC approaches saturation, and
the delivery ratio should collapse at FIR close to 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetBuilder
from repro.noc.simulator import NoCSimulator
from repro.noc.topology import MeshTopology
from repro.runtime.engine import ExperimentEngine
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.scenario import AttackScenario, ScenarioGenerator

__all__ = ["LatencyPoint", "run_latency_sweep"]


@dataclass
class LatencyPoint:
    """Benign-traffic latency metrics at one FIR operating point."""

    fir: float
    packet_latency: float
    packet_queue_latency: float
    flit_latency: float
    flit_queue_latency: float
    delivery_ratio: float
    delivered_packets: int

    def as_dict(self) -> dict:
        return {
            "fir": self.fir,
            "packet_latency": self.packet_latency,
            "packet_queue_latency": self.packet_queue_latency,
            "flit_latency": self.flit_latency,
            "flit_queue_latency": self.flit_queue_latency,
            "delivery_ratio": self.delivery_ratio,
            "delivered_packets": self.delivered_packets,
        }


@dataclass(frozen=True)
class _LatencyTask:
    """One FIR operating point of the sweep (independent simulation)."""

    config: ExperimentConfig
    benchmark: str
    scenario: AttackScenario
    fir: float
    cycles: int


def _latency_point(task: _LatencyTask) -> LatencyPoint:
    """Simulate one sweep point (module-level for the parallel runner)."""
    config = task.config
    builder = DatasetBuilder(config.dataset_config())
    simulation_config = replace(
        config.dataset_config().simulation_config(), source_queue_capacity=200_000
    )
    simulator = NoCSimulator(simulation_config)
    simulator.add_source(builder.make_workload(task.benchmark, seed=config.seed))
    if task.fir > 0.0:
        attacker = FloodingAttacker(
            FloodingConfig(
                attackers=task.scenario.attackers,
                victim=task.scenario.victim,
                fir=task.fir,
            ),
            builder.topology,
            seed=config.seed + 1,
        )
        simulator.add_source(attacker)
    simulator.run(task.cycles)
    simulator.drain(max_cycles=12 * task.cycles)
    latency = simulator.latency(benign_only=True)
    return LatencyPoint(
        fir=task.fir,
        packet_latency=latency.packet_latency,
        packet_queue_latency=latency.packet_queue_latency,
        flit_latency=latency.flit_latency,
        flit_queue_latency=latency.flit_queue_latency,
        delivery_ratio=simulator.stats.delivery_ratio,
        delivered_packets=latency.delivered_packets,
    )


def run_latency_sweep(
    firs: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    benchmark: str = "blackscholes",
    config: ExperimentConfig | None = None,
    cycles: int | None = None,
    num_attackers: int = 1,
    engine: ExperimentEngine | None = None,
) -> list[LatencyPoint]:
    """Sweep the FIR and measure benign-traffic latency at each point.

    The benign workload, attacker placement and measurement window are held
    constant across the sweep; only the FIR changes, mirroring the
    latency-vs-FIR curve of Figure 1.  Every operating point is an
    independent simulation, so the sweep fans out across the engine's worker
    processes and the finished curve is cached as a record artifact.

    Source queues are made effectively unbounded for this experiment: in the
    paper's threat model the benign application is never paused, only slowed
    down, so benign packets sharing an attacker's network interface must wait
    behind the flood rather than being dropped — that queueing is exactly the
    "packet queue latency" curve of Figure 1.
    """
    config = config or ExperimentConfig()
    engine = engine or ExperimentEngine.from_environment()
    if cycles is None:
        cycles = config.warmup_cycles + config.sample_period * config.samples_per_run
    topology = MeshTopology(rows=config.rows)
    generator = ScenarioGenerator(topology, seed=config.seed)
    scenario = generator.random_scenario(
        num_attackers=num_attackers, fir=1.0, benchmark=benchmark
    )

    payload = {
        "experiment": config,
        "benchmark": benchmark,
        "firs": tuple(firs),
        "cycles": cycles,
        "scenario": scenario,
    }

    def build() -> list[dict]:
        tasks = [
            _LatencyTask(config, benchmark, scenario, fir, cycles) for fir in firs
        ]
        return [point.as_dict() for point in engine.runner.map(_latency_point, tasks)]

    records = engine.cached_records("latency-sweep", payload, build)
    return [LatencyPoint(**record) for record in records]
