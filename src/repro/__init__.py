"""DL2Fence reproduction library.

A production-quality, pure-Python reproduction of *DL2Fence: Integrating Deep
Learning and Frame Fusion for Enhanced Detection and Localization of Refined
Denial-of-Service in Large-Scale NoCs* (DAC 2024), including every substrate
the paper's evaluation depends on:

* :mod:`repro.noc` — a Garnet-like cycle-driven 2-D mesh NoC simulator;
* :mod:`repro.traffic` — synthetic traffic patterns, PARSEC-like workloads
  and the refined FIR-adjustable Flooding-DoS threat model;
* :mod:`repro.monitor` — VCO/BOC feature-frame extraction and dataset
  generation;
* :mod:`repro.nn` — a NumPy deep-learning framework for the two CNNs;
* :mod:`repro.core` — the DL2Fence detector, localizer, Multi-Frame Fusion,
  Victim Completing Enhancement and Table-Like Method;
* :mod:`repro.defense` — the closed-loop runtime guard that throttles or
  quarantines localized attackers and measures recovery;
* :mod:`repro.baselines` — comparator detectors (perceptron, SVM, gradient
  boosting, threshold);
* :mod:`repro.hardware` — the analytical hardware-overhead model;
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import DL2Fence, DL2FenceConfig, DatasetBuilder, DatasetConfig

    builder = DatasetBuilder(DatasetConfig(rows=8))
    runs = builder.build_runs(benchmarks=["uniform_random"], scenarios_per_benchmark=1)
    fence = DL2Fence(builder.topology, DL2FenceConfig.paper_default())
    fence.fit_from_runs(builder, runs)
    report = fence.evaluate_detection(builder.detection_dataset(runs))
"""

from repro.core import (
    DL2Fence,
    DL2FenceConfig,
    DoSDetector,
    DoSProfileLocalizer,
    LocalizationResult,
    TableLikeMethod,
)
from repro.defense import DL2FenceGuard, DefenseReport, MitigationPolicy
from repro.monitor import (
    DatasetBuilder,
    DatasetConfig,
    FeatureKind,
    GlobalPerformanceMonitor,
    MonitorConfig,
)
from repro.noc import Direction, MeshTopology, NoCSimulator, SimulationConfig
from repro.traffic import (
    AttackScenario,
    MultiAttackScenario,
    FloodingAttacker,
    FloodingConfig,
    ScenarioGenerator,
    make_parsec_workload,
    make_synthetic_traffic,
)

__version__ = "1.0.0"

__all__ = [
    "AttackScenario",
    "MultiAttackScenario",
    "DL2Fence",
    "DL2FenceConfig",
    "DL2FenceGuard",
    "DatasetBuilder",
    "DatasetConfig",
    "DefenseReport",
    "Direction",
    "MitigationPolicy",
    "DoSDetector",
    "DoSProfileLocalizer",
    "FeatureKind",
    "FloodingAttacker",
    "FloodingConfig",
    "GlobalPerformanceMonitor",
    "LocalizationResult",
    "MeshTopology",
    "MonitorConfig",
    "NoCSimulator",
    "ScenarioGenerator",
    "SimulationConfig",
    "TableLikeMethod",
    "make_parsec_workload",
    "make_synthetic_traffic",
    "__version__",
]
