"""Metrics registry: counters, gauges and histograms with label support.

Wall-clock and throughput telemetry lives here — per-phase kernel timings
of both simulator backends, parallel-runner task latency/retries/timeouts,
artifact-cache hit/miss/evict/quarantine counts, NN forward-pass cost —
deliberately *outside* the trace bus: timings are non-deterministic, and
the trace stream must stay byte-identical across backends and runs.

The process-wide :data:`METRICS` registry is disabled by default; every
instrumentation site is behind a single ``METRICS.active`` check, so a
disabled registry adds one attribute load to the hot paths and allocates
nothing (the zero-cost-when-off property ``bench_obs_overhead.py`` gates).

Exports:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format, deterministic ordering, ready for a scrape endpoint
  or an artifact file;
* :meth:`MetricsRegistry.snapshot` — plain nested dicts, merged into
  ``perf_summary.json`` by ``benchmarks/run_perf_suite.py`` so the perf
  trajectory carries phase-level attribution.

``REPRO_METRICS=1`` (or ``prom``/``on``/``true``) enables collection at
import.  When additionally ``REPRO_TRACE_DIR`` is set, the registry dumps
``metrics-<pid>.prom`` there at interpreter exit, which is how the nightly
matrix jobs collect metrics artifacts without per-bench plumbing.
"""

from __future__ import annotations

import atexit
import os
from bisect import bisect_left
from pathlib import Path

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "configure_metrics_from_environment",
]

#: Default histogram buckets for timings in seconds: 1 µs .. 10 s.
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class _Metric:
    """Shared name/help bookkeeping of the three instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """Monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(f"{self.name}{_format_labels(key)} {self._values[key]:g}")
        return lines

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "values": {
                _format_labels(key) or "": value
                for key, value in sorted(self._values.items())
            },
        }


class Gauge(_Metric):
    """A value that can go up and down (last-write-wins per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(f"{self.name}{_format_labels(key)} {self._values[key]:g}")
        return lines

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "values": {
                _format_labels(key) or "": value
                for key, value in sorted(self._values.items())
            },
        }


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics) per label set."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_TIME_BUCKETS
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        # Per label set: [per-bucket counts..., +Inf count], sum, count.
        self._series: dict[tuple, list] = {}

    def _row(self, key: tuple) -> list:
        row = self._series.get(key)
        if row is None:
            row = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._series[key] = row
        return row

    def observe(self, value: float, **labels) -> None:
        row = self._row(_label_key(labels))
        row[0][bisect_left(self.buckets, value)] += 1
        row[1] += value
        row[2] += 1

    def series(self, **labels) -> "HistogramSeries":
        """A label-bound observe handle for per-cycle hot paths.

        Pre-computes the label key once so each observation is a dict
        lookup plus a bisect — the per-cycle kernel timings rely on this
        to stay inside the <5% enabled-overhead budget.  Safe across
        :meth:`MetricsRegistry.reset`: the handle re-resolves its row on
        every observation.
        """
        return HistogramSeries(self, _label_key(labels))

    def count(self, **labels) -> int:
        row = self._series.get(_label_key(labels))
        return row[2] if row is not None else 0

    def sum(self, **labels) -> float:
        row = self._series.get(_label_key(labels))
        return row[1] if row is not None else 0.0

    def render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._series):
            counts, total, count = self._series[key]
            cumulative = 0
            for bucket, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = key + (("le", f"{bucket:g}"),)
                lines.append(
                    f"{self.name}_bucket{_format_labels(tuple(sorted(labels)))} "
                    f"{cumulative}"
                )
            labels = key + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_format_labels(tuple(sorted(labels)))} {count}"
            )
            lines.append(f"{self.name}_sum{_format_labels(key)} {total:g}")
            lines.append(f"{self.name}_count{_format_labels(key)} {count}")
        return lines

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "buckets": list(self.buckets),
            "values": {
                _format_labels(key)
                or "": {"counts": list(row[0]), "sum": row[1], "count": row[2]}
                for key, row in sorted(self._series.items())
            },
        }


class HistogramSeries:
    """One histogram label set, bound for allocation-free observation."""

    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: Histogram, key: tuple) -> None:
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        histogram = self._histogram
        row = histogram._row(self._key)
        row[0][bisect_left(histogram.buckets, value)] += 1
        row[1] += value
        row[2] += 1


class MetricsRegistry:
    """Named instruments behind one ``active`` switch.

    Instruments are created lazily and idempotently (``counter("x")``
    twice returns the same object), so instrumentation sites can fetch
    their handles without import-order coupling.  ``active`` gates
    *collection only* — handles exist either way, which keeps the
    disabled branch a plain boolean check.
    """

    def __init__(self, active: bool = False) -> None:
        self.active = bool(active)
        self._metrics: dict[str, _Metric] = {}

    # -- switches ------------------------------------------------------------
    def enable(self) -> None:
        self.active = True

    def disable(self) -> None:
        self.active = False

    # -- instruments ---------------------------------------------------------
    def _get(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    # -- views ---------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded values (instrument handles stay valid)."""
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                metric._series.clear()
            else:
                metric._values.clear()

    def render_prometheus(self) -> str:
        """All instruments in the Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """Plain-dict view (merged into ``perf_summary.json``)."""
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }


#: The process-wide registry every instrumentation site records into.
METRICS = MetricsRegistry()


# -- shared instrumentation helpers ------------------------------------------
# Call sites in hot paths use these tiny wrappers so the handles are created
# once and the call reads as one line.  Every helper assumes the caller
# already checked ``METRICS.active`` (they do not re-check).

def sim_phase_histogram() -> Histogram:
    """Per-phase kernel dispatch cost of the simulator backends."""
    return METRICS.histogram(
        "repro_sim_phase_seconds",
        "per-cycle kernel phase cost by backend and phase",
    )


def runner_task_histogram() -> Histogram:
    return METRICS.histogram(
        "repro_runner_task_seconds",
        "parallel-runner per-task wall clock by dispatch mode",
    )


def runner_events_counter() -> Counter:
    return METRICS.counter(
        "repro_runner_events_total",
        "parallel-runner dispatch events (tasks, retries, timeouts, fallbacks)",
    )


def cache_events_counter() -> Counter:
    return METRICS.counter(
        "repro_cache_events_total",
        "artifact-cache events (hit, miss, store, invalid, evict, quarantine)",
    )


def nn_forward_histogram() -> Histogram:
    return METRICS.histogram(
        "repro_nn_forward_seconds",
        "NN forward-pass wall clock by mode (train/infer)",
    )


def guard_events_counter() -> Counter:
    return METRICS.counter(
        "repro_guard_events_total",
        "guard decision events by kind (node-counted where node-scoped)",
    )


def configure_metrics_from_environment(
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Enable/disable the registry from ``REPRO_METRICS``.

    Truthy values (``1``, ``on``, ``true``, ``prom``) enable collection.
    With ``REPRO_TRACE_DIR`` also set, a Prometheus text dump is written
    there at interpreter exit (``metrics-<pid>.prom``) so batch jobs get a
    metrics artifact per process with zero per-bench plumbing.
    """
    registry = METRICS if registry is None else registry
    raw = os.environ.get("REPRO_METRICS", "").strip().lower()
    registry.active = raw in ("1", "on", "true", "yes", "prom")
    if registry.active and os.environ.get("REPRO_TRACE_DIR", "").strip():
        _register_exit_dump(registry)
    return registry


_EXIT_DUMP_REGISTERED = False


def _register_exit_dump(registry: MetricsRegistry) -> None:
    global _EXIT_DUMP_REGISTERED
    if _EXIT_DUMP_REGISTERED:
        return
    _EXIT_DUMP_REGISTERED = True

    def _dump() -> None:  # pragma: no cover - exercised at interpreter exit
        directory = os.environ.get("REPRO_TRACE_DIR", "").strip()
        if not directory or not registry._metrics:
            return
        try:
            path = Path(directory)
            path.mkdir(parents=True, exist_ok=True)
            (path / f"metrics-{os.getpid()}.prom").write_text(
                registry.render_prometheus()
            )
        except OSError:
            pass

    atexit.register(_dump)


configure_metrics_from_environment()
