"""Structured event-trace bus: the flight recorder of the defense loop.

One process-wide :data:`BUS` carries typed, schema-versioned events from the
instrumented decision sites (guard, evidence accumulator, window sanitizer,
fault activation, monitor capture) into a pluggable sink.  Emission sites
follow one pattern::

    from repro.obs.bus import BUS
    ...
    if BUS.active:
        BUS.emit("engaged", nodes=nodes, limit=limit)

so a disabled bus costs a single attribute check and allocates nothing —
the zero-cost-when-off property the per-cycle hot paths rely on.

Every event is a flat JSON-able dict carrying the schema version, its kind,
and the (episode, cycle, window) coordinates of the decision it records;
node-scoped events add ``node`` / ``nodes``.  Coordinates come from a small
context the guard refreshes at the top of every sampling window
(:meth:`TraceBus.set_context`), so downstream emitters — the evidence
accumulator, the sanitizer — do not need to thread coordinates through
their APIs.

Events deliberately contain **no wall-clock timestamps and no RNG use**:
they are pure functions of the observed window stream, which is
fingerprint-identical across simulator backends — so the serialized JSONL
stream is byte-identical across backends too (pinned by
``tests/obs/test_trace_determinism.py``).  Timings belong in
:mod:`repro.obs.metrics`.

Environment selection (:func:`configure_tracing_from_environment`, applied
at import):

``REPRO_TRACE``
    ``""`` / ``0`` / ``off`` / ``none`` — disabled (the default);
    ``ring`` — in-memory ring buffer (``BUS.sink.events()``);
    ``jsonl`` — JSONL file(s) under ``REPRO_TRACE_DIR``.
``REPRO_TRACE_DIR``
    Directory for JSONL traces (default ``./repro-trace``).  Files are
    named ``trace-<pid>.jsonl`` so forked sweep workers never interleave
    writes; explicit :class:`JsonlSink` paths (as the determinism tests
    use) are exact.
"""

from __future__ import annotations

import json
import os
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = [
    "BUS",
    "TRACE_SCHEMA_VERSION",
    "JsonlSink",
    "NullSink",
    "RingBufferSink",
    "TraceBus",
    "configure_tracing_from_environment",
    "trace_session",
]

#: Version stamped into every event (bump on any breaking schema change).
TRACE_SCHEMA_VERSION = 1

#: Default ring-buffer capacity (events retained; older ones roll off).
DEFAULT_RING_CAPACITY = 65536


class NullSink:
    """Swallows everything (the disabled-bus sink)."""

    def write(self, event: dict) -> None:  # pragma: no cover - never wired
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the newest ``capacity`` events in memory.

    The in-process consumer surface: the summarize CLI's tests, the
    guard-as-a-service streaming feed (ROADMAP item 3) and ad-hoc
    debugging all read :meth:`events` instead of re-parsing JSONL.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: deque[dict] = deque(maxlen=int(capacity))

    def write(self, event: dict) -> None:
        self._events.append(event)

    def events(self) -> list[dict]:
        """Snapshot of the retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._events)


def serialize_event(event: dict) -> str:
    """One event as its canonical JSONL line (no trailing newline).

    Sorted keys and compact separators, so two identically-valued events
    serialize to identical bytes — the unit of the byte-identical
    cross-backend trace guarantee.
    """
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class JsonlSink:
    """Appends one canonical JSON line per event to a file.

    The file opens lazily on the first event.  A sink created without an
    explicit path writes ``trace-<pid>.jsonl`` under ``directory`` and
    re-opens under the *current* pid on write — a forked sweep worker
    inheriting the parent's sink transparently gets its own file instead
    of interleaving writes into the parent's.
    """

    def __init__(
        self, path: str | Path | None = None, directory: str | Path | None = None
    ) -> None:
        if path is None and directory is None:
            raise ValueError("JsonlSink needs a path or a directory")
        self._explicit_path = Path(path) if path is not None else None
        self._directory = Path(directory) if directory is not None else None
        self._stream: IO[str] | None = None
        self._pid: int | None = None

    @property
    def path(self) -> Path:
        """Where this process's events land."""
        if self._explicit_path is not None:
            return self._explicit_path
        assert self._directory is not None
        return self._directory / f"trace-{os.getpid()}.jsonl"

    def _ensure_stream(self) -> IO[str]:
        pid = os.getpid()
        if self._stream is None or (
            self._explicit_path is None and pid != self._pid
        ):
            if self._stream is not None:
                # Forked child: drop the inherited handle without flushing
                # the parent's buffered bytes twice.
                try:
                    self._stream.close()
                except OSError:  # pragma: no cover - exotic fd states
                    pass
            target = self.path
            target.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(target, "a", encoding="utf-8")
            self._pid = pid
        return self._stream

    def write(self, event: dict) -> None:
        self._ensure_stream().write(serialize_event(event) + "\n")

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class TraceBus:
    """Process-wide event bus with one sink and a coordinate context.

    ``active`` is the *only* thing hot paths read; it is ``True`` exactly
    when a sink is installed.  The (episode, cycle, window) context is
    refreshed by the guard at the top of every sampling window so nested
    emitters inherit correct coordinates for free.
    """

    __slots__ = ("active", "sink", "episode", "cycle", "window")

    def __init__(self) -> None:
        self.active = False
        self.sink: NullSink | RingBufferSink | JsonlSink | None = None
        self.episode = 0
        self.cycle = -1
        self.window = -1

    # -- wiring --------------------------------------------------------------
    def configure(self, sink) -> None:
        """Install ``sink`` (``None`` disables the bus)."""
        if self.sink is not None and self.sink is not sink:
            self.sink.close()
        self.sink = sink
        self.active = sink is not None
        self.episode = 0
        self.cycle = -1
        self.window = -1

    def disable(self) -> None:
        self.configure(None)

    # -- coordinates ---------------------------------------------------------
    def set_context(
        self, episode: int | None = None, cycle: int | None = None,
        window: int | None = None,
    ) -> None:
        """Update the coordinates stamped on subsequent events."""
        if episode is not None:
            self.episode = int(episode)
        if cycle is not None:
            self.cycle = int(cycle)
        if window is not None:
            self.window = int(window)

    # -- emission ------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Record one event.  Call only behind an ``if BUS.active`` guard.

        ``fields`` must be JSON-able and deterministic (derived from the
        observed stream — never wall-clock, never RNG).  ``cycle`` /
        ``window`` / ``episode`` override the context for this event;
        ``nodes`` iterables are normalised to sorted lists so set-valued
        emitters serialize canonically.
        """
        if not self.active:
            return
        event = {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": kind,
            "episode": self.episode,
            "cycle": self.cycle,
            "window": self.window,
        }
        for key, value in fields.items():
            if key == "nodes":
                event[key] = sorted(int(node) for node in value)
            elif isinstance(value, (frozenset, set, tuple)):
                event[key] = sorted(value)
            else:
                event[key] = value
        self.sink.write(event)

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()


#: The process-wide bus every instrumented site emits to.
BUS = TraceBus()


def configure_tracing_from_environment(bus: TraceBus | None = None) -> TraceBus:
    """Wire the bus from ``REPRO_TRACE`` / ``REPRO_TRACE_DIR``.

    Called once at import; call again after changing the environment
    (tests use :func:`trace_session` instead).
    """
    bus = BUS if bus is None else bus
    mode = os.environ.get("REPRO_TRACE", "").strip().lower()
    if mode in ("", "0", "off", "none", "false", "no"):
        bus.configure(None)
    elif mode == "ring":
        bus.configure(RingBufferSink())
    elif mode == "jsonl":
        directory = os.environ.get("REPRO_TRACE_DIR", "").strip() or "repro-trace"
        bus.configure(JsonlSink(directory=directory))
    else:
        raise ValueError(
            f"REPRO_TRACE must be one of '', 'off', 'ring', 'jsonl'; got {mode!r}"
        )
    return bus


@contextmanager
def trace_session(sink) -> Iterator:
    """Temporarily install ``sink`` on the global bus (flushes on exit).

    The test/benchmark harness: guarantees the previous sink (usually
    none) is restored even when the traced code raises, so one traced
    episode cannot leak tracing into the rest of a suite.
    """
    previous = BUS.sink
    BUS.sink = sink
    BUS.active = sink is not None
    BUS.episode = 0
    BUS.cycle = -1
    BUS.window = -1
    try:
        yield sink
    finally:
        if sink is not None:
            sink.flush()
        BUS.sink = previous
        BUS.active = previous is not None


configure_tracing_from_environment()
