"""Flight-recorder observability: structured tracing + a metrics registry.

The guard makes hundreds of consequential decisions per episode — evidence
accrual, convictions, engage/release probes, sanitizer clamps, fault
activations, detour discounting — and until this package the only record
was the terminal :class:`~repro.defense.report.DefenseReport`.  ``repro.obs``
adds the always-on telemetry substrate a runtime defense needs:

* :mod:`repro.obs.bus` — a structured **event-trace bus**: typed,
  schema-versioned events carrying (episode, cycle, window, node)
  coordinates, emitted from the guard, the evidence accumulator, the
  window sanitizer, fault activation and the monitor capture path, into a
  pluggable sink (in-memory ring buffer, JSONL file, or nothing).
  Selected via ``REPRO_TRACE`` / ``REPRO_TRACE_DIR``.
* :mod:`repro.obs.metrics` — a **metrics registry** (counters, gauges,
  histograms with label support) fed by both simulator backends (per-phase
  kernel timings), the parallel runner, the artifact cache and the NN
  forward path; exportable as Prometheus text format and merged into
  ``perf_summary.json``.  Selected via ``REPRO_METRICS``.
* :mod:`repro.obs.summarize` — a trace-summary CLI
  (``python -m repro.obs.summarize``) rendering per-episode decision
  timelines and cross-checking event counts against a ``DefenseReport``.

Two hard properties, pinned by tests:

* **zero-cost when off** — every emission site is behind a single
  attribute check (``BUS.active`` / ``METRICS.active``); nothing is
  allocated, formatted or timed while tracing/metrics are disabled;
* **determinism-neutral when on** — events are derived purely from the
  observed (fingerprint-identical) window stream, carry no wall-clock
  timestamps and touch no RNG, so behavior fingerprints and RNG streams
  are bit-identical with tracing enabled, and the JSONL event stream
  itself is byte-identical across the object, solo-SoA and batched-SoA
  backends.  Wall-clock *timings* therefore live exclusively in the
  metrics registry, never in the trace.
"""

from repro.obs.bus import (
    BUS,
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    configure_tracing_from_environment,
    trace_session,
)
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics_from_environment,
)

__all__ = [
    "BUS",
    "METRICS",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "TraceBus",
    "configure_metrics_from_environment",
    "configure_tracing_from_environment",
    "trace_session",
]
