"""Trace-summary CLI: decision timelines and report cross-checks.

Reads the JSONL event stream a traced run wrote (``REPRO_TRACE=jsonl``),
renders a per-episode decision timeline — every detection, conviction,
engagement, rollback, release, sanitizer intervention and fault activation
with its (cycle, window) coordinates — and optionally cross-checks the
trace against a :class:`~repro.defense.report.DefenseReport` serialization:
the event counts derived from the trace must match both the report's
``event_counts`` summary and its event log.  A mismatch means the flight
recorder and the report disagree about what the defense did, and the CLI
exits non-zero so CI can gate on it.

Usage::

    python -m repro.obs.summarize TRACE.jsonl [TRACE2.jsonl ...]
        [--report report.json] [--episode N] [--windows]

``TRACE`` arguments may also be directories, in which case every
``trace-*.jsonl`` inside is read (the per-pid files of a sweep).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["load_events", "trace_counts", "crosscheck_report", "main"]

#: Decision kinds shown on the default timeline (per-window "window"
#: summaries are opt-in via --windows; captures are transport noise).
TIMELINE_KINDS = (
    "detected",
    "convicted",
    "conviction_lapsed",
    "engaged",
    "rolled_back",
    "released",
    "window_sanitized",
    "detour_discount",
    "fault_activated",
)


def load_events(paths: list[str | Path]) -> list[dict]:
    """Parse events from JSONL files (directories expand to trace-*.jsonl)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.glob("trace-*.jsonl"))
            if not found:
                raise FileNotFoundError(f"no trace-*.jsonl files under {path}")
            files.extend(found)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(str(path))
    events: list[dict] = []
    for path in files:
        with open(path, encoding="utf-8") as stream:
            for lineno, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ValueError(f"{path}:{lineno}: not JSON ({error})") from None
                if not isinstance(event, dict) or "kind" not in event:
                    raise ValueError(f"{path}:{lineno}: not a trace event")
                events.append(event)
    return events


def episodes_of(events: list[dict]) -> list[int]:
    return sorted({int(event.get("episode", 0)) for event in events})


def trace_counts(events: list[dict]) -> dict[str, int]:
    """The report's ``event_counts`` summary, rederived from the trace.

    Definitions mirror the guard's bookkeeping exactly:

    * ``engagements`` / ``convictions`` — node totals of the ``engaged`` /
      ``convicted`` events;
    * ``releases`` — node total of ``rolled_back`` events plus one per
      staggered release probe (``released`` events carrying a
      ``clean_windows`` field; the full-rollback ``released`` marker
      restates nodes its ``rolled_back`` sibling already counted);
    * ``clamps`` — total cells the sanitizer imputed;
    * ``detour_discounts`` — node total of discounted detour carriers.
    """
    counts = {
        "engagements": 0,
        "releases": 0,
        "convictions": 0,
        "clamps": 0,
        "detour_discounts": 0,
    }
    for event in events:
        kind = event["kind"]
        if kind == "engaged":
            counts["engagements"] += len(event.get("nodes", ()))
        elif kind == "rolled_back":
            counts["releases"] += len(event.get("nodes", ()))
        elif kind == "released" and "clean_windows" in event:
            counts["releases"] += len(event.get("nodes", ()))
        elif kind == "convicted":
            counts["convictions"] += len(event.get("nodes", ()))
        elif kind == "window_sanitized":
            counts["clamps"] += int(event.get("imputed_cells", 0))
        elif kind == "detour_discount":
            counts["detour_discounts"] += len(event.get("nodes", ()))
    return counts


def _report_node_totals(report: dict) -> dict[str, int]:
    totals = {"engaged": 0, "rolled_back": 0, "convicted": 0}
    for event in report.get("events", ()):
        if event.get("kind") in totals:
            totals[event["kind"]] += len(event.get("nodes", ()))
    return totals


def crosscheck_report(events: list[dict], report: dict) -> list[str]:
    """Mismatches between a trace and a ``DefenseReport`` dict (empty = ok).

    ``report`` is either ``DefenseReport.as_dict()`` or ``to_payload()``
    output — both carry ``events`` and ``event_counts``.
    """
    problems: list[str] = []
    derived = trace_counts(events)
    recorded = report.get("event_counts") or {}
    for key, value in recorded.items():
        if derived.get(key, 0) != value:
            problems.append(
                f"event_counts[{key}]: report says {value}, trace says "
                f"{derived.get(key, 0)}"
            )
    trace_totals = {"engaged": 0, "rolled_back": 0, "convicted": 0}
    for event in events:
        if event["kind"] in trace_totals:
            trace_totals[event["kind"]] += len(event.get("nodes", ()))
    for kind, total in _report_node_totals(report).items():
        if trace_totals[kind] != total:
            problems.append(
                f"{kind} nodes: report events total {total}, trace total "
                f"{trace_totals[kind]}"
            )
    return problems


def _describe(event: dict) -> str:
    skip = ("schema", "kind", "episode", "cycle", "window")
    fields = []
    for key in sorted(event):
        if key in skip:
            continue
        value = event[key]
        if isinstance(value, float):
            value = f"{value:g}"
        fields.append(f"{key}={value}")
    return " ".join(fields)


def timeline_lines(
    events: list[dict], episode: int, include_windows: bool = False
) -> list[str]:
    """Human-readable decision timeline of one episode."""
    kinds = set(TIMELINE_KINDS)
    if include_windows:
        kinds.add("window")
    selected = [
        event
        for event in events
        if int(event.get("episode", 0)) == episode and event["kind"] in kinds
    ]
    lines = [f"episode {episode}: {len(selected)} decision events"]
    for event in selected:
        lines.append(
            f"  win {event.get('window', -1):>4}  cycle {event.get('cycle', -1):>7}"
            f"  {event['kind']:<18} {_describe(event)}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Render a trace's decision timeline; cross-check a report.",
    )
    parser.add_argument(
        "traces", nargs="+", help="trace .jsonl file(s) or directories of them"
    )
    parser.add_argument(
        "--report",
        help="DefenseReport JSON (as_dict/to_payload output) to cross-check",
    )
    parser.add_argument(
        "--episode", type=int, help="only render this episode's timeline"
    )
    parser.add_argument(
        "--windows",
        action="store_true",
        help="include per-window summary events in the timeline",
    )
    args = parser.parse_args(argv)

    try:
        events = load_events(args.traces)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    schemas = {event.get("schema") for event in events}
    print(
        f"{len(events)} events, episodes {episodes_of(events) or '-'}, "
        f"schema {sorted(schemas) if schemas else '-'}"
    )
    targets = (
        [args.episode] if args.episode is not None else episodes_of(events)
    )
    for episode in targets:
        for line in timeline_lines(events, episode, include_windows=args.windows):
            print(line)
    print("totals:", json.dumps(trace_counts(events), sort_keys=True))

    if args.report:
        try:
            report = json.loads(Path(args.report).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read report: {error}", file=sys.stderr)
            return 2
        problems = crosscheck_report(events, report)
        if problems:
            print("cross-check FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("cross-check ok: trace and report agree")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
