#!/usr/bin/env python3
"""Hardware-overhead analysis: why DL2Fence scales to large NoCs.

Reproduces Figure 5 and the Table 4 overhead comparison analytically:

* the DL2Fence accelerators are a *global* cost (two small CNN engines), so
  their overhead falls roughly quadratically as the mesh grows;
* distributed per-router schemes (Sniffer's perceptron, per-router SVMs) pay a
  constant fraction of every router, so their overhead never amortises.

Run with:  python examples/hardware_overhead_analysis.py
"""

from __future__ import annotations

from repro.core.config import DL2FenceConfig
from repro.experiments.tables import format_rows
from repro.hardware import (
    RELATED_WORKS,
    dl2fence_overhead,
    distributed_scheme_overhead,
    relative_saving,
)

PAPER = {4: 7.40, 8: 1.90, 16: 0.45, 32: 0.11}


def main() -> None:
    config = DL2FenceConfig.paper_default()
    sniffer = RELATED_WORKS["sniffer"].hardware_overhead_percent
    svm = RELATED_WORKS["svm_anomaly"].hardware_overhead_percent

    print("== DL2Fence hardware overhead versus NoC size (Figure 5) ==\n")
    rows = []
    reports = {}
    for size in (4, 8, 16, 32):
        report = dl2fence_overhead(size, config=config)
        reports[size] = report
        rows.append(
            {
                "mesh": f"{size}x{size}",
                "NoC_Mgates": report.noc_area_gates / 1e6,
                "detector_kgates": report.detector_area_gates / 1e3,
                "localizer_kgates": report.localizer_area_gates / 1e3,
                "DL2Fence_overhead_%": report.overhead_percent,
                "paper_%": PAPER[size],
                "Sniffer_per_router_%": sniffer,
                "per_router_SVM_%": svm,
            }
        )
    print(format_rows(rows))

    saving_scale = relative_saving(
        reports[16].overhead_fraction, reports[8].overhead_fraction
    )
    saving_sniffer = relative_saving(reports[8].overhead_fraction, sniffer / 100)
    print(f"\nOverhead decrease from 8x8 to 16x16: {saving_scale:.1%} (paper: 76.3%)")
    print(f"Hardware saving vs Sniffer at 8x8  : {saving_sniffer:.1%} (paper: 42.4%)")

    print("\n== Why the trend holds ==")
    print("The two CNN accelerators cost a few hundred kilogates regardless of the")
    print("mesh size (weights + a 3-kernel pipelined MAC array), while the NoC fabric")
    print("grows with the number of routers.  Distributed schemes instead replicate")
    print("their detector in every router:")
    rows = []
    for size in (8, 16, 32):
        rows.append(
            {
                "mesh": f"{size}x{size}",
                "DL2Fence_%": dl2fence_overhead(size, config=config).overhead_percent,
                "distributed_perceptron_%": 100
                * distributed_scheme_overhead(size, sniffer / 100),
            }
        )
    print(format_rows(rows))


if __name__ == "__main__":
    main()
