#!/usr/bin/env python3
"""Figure 4-style demo: reconstruct attacking routes and pinpoint attackers.

Reproduces the paper's two qualitative localization examples — a single
attacker flooding a corner victim and two attackers converging on a central
victim — and prints the fused victim masks, the per-node localization metrics
and the Table-Like-Method attacker estimates.

Run with:  python examples/attack_localization_demo.py [mesh_rows]
(mesh_rows defaults to 8; use 16 for the paper's exact node ids 104/192/15/85)
"""

from __future__ import annotations

import sys

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.localization_examples import (
    paper_example_scenarios,
    run_localization_examples,
)


def render_mask(mask: np.ndarray) -> str:
    """ASCII rendering of a victim mask (row 0 at the bottom, like the paper)."""
    lines = []
    for row in np.flipud(mask.astype(int)):
        lines.append(" ".join("#" if cell else "." for cell in row))
    return "\n".join(lines)


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    config = ExperimentConfig(rows=rows, scenarios_per_benchmark=2)

    print(f"== DL2Fence localization examples on a {rows}x{rows} mesh ==")
    for scenario in paper_example_scenarios(rows):
        print(f"  scenario: {scenario.describe()}")
    print("\nTraining the pipeline and running both scenarios "
          "(this simulates several runs)...\n")

    examples = run_localization_examples(config=config)
    for index, example in enumerate(examples, start=1):
        report = example.report
        print(f"--- Example {index}: {example.scenario.describe()} ---")
        print(f"localization accuracy={report.accuracy:.3f} "
              f"precision={report.precision:.3f} recall={report.recall:.3f}")
        print(f"true victims      : {example.true_victims}")
        print(f"predicted victims : {example.predicted_victims}")
        print(f"predicted attackers (TLM): {example.predicted_attackers} "
              f"(true: {list(example.scenario.attackers)})")
        mask = np.zeros((rows, rows))
        for node in example.predicted_victims:
            mask[node // rows, node % rows] = 1
        print("reconstructed attacking route ('#' = localized victim):")
        print(render_mask(mask))
        print()

    print("Paper reference (16x16): example 1 acc/prec/rec = 1/1/1, "
          "example 2 acc=0.96 prec=1 rec=0.96")


if __name__ == "__main__":
    main()
