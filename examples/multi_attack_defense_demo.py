#!/usr/bin/env python3
"""Multi-attack closed-loop defense at the paper's 16x16 scale.

Two attackers flood two disjoint victims at FIR 0.5 on a live 16x16 mesh —
the concurrent distributed-DoS shape the paper handles through iterative
sampling rounds (Figure 3's multi-attacker rules).  The demo:

1. trains the CNN detector and localizer at 16x16 scale on benign and
   attacked runs of uniform_random and x264 traffic;
2. measures the no-attack benign latency baseline of the PARSEC workload
   (x264) — light phased traffic over which the flood signature is most
   prominent, exactly the property the paper relies on;
3. replays the workload with both floods switching on mid-run while a
   :class:`~repro.defense.DL2FenceGuard` streams every monitor window
   through the trained pipeline online — after the loudest attacker is
   fenced the guard keeps re-running the Table-Like Method, so quieter
   attackers surface in later localization rounds;
4. prints the defense timeline with per-attacker detection latencies and
   the time-to-full-containment, and checks that *both* attackers end up
   fenced with benign latency back near the baseline.

Run with:  python examples/multi_attack_defense_demo.py
"""

from __future__ import annotations

from repro import MitigationPolicy
from repro.experiments import (
    ExperimentConfig,
    default_multi_scenario,
    run_defended_episode,
    train_defense_pipeline,
)

ROWS = 16
PERIOD = 256
FIR = 0.5
BENCHMARK = "x264"


def main() -> None:
    print(f"== Multi-attack closed-loop DL2Fence defense on a {ROWS}x{ROWS} mesh ==\n")
    config = ExperimentConfig(
        rows=ROWS,
        sample_period=PERIOD,
        samples_per_run=6,
        detector_epochs=40,
        localizer_epochs=50,
        seed=7,
    )
    print(f"Training the CNN detector + localizer (uniform_random + {BENCHMARK})...")
    fence, builder = train_defense_pipeline(
        config, benchmarks=("uniform_random", BENCHMARK)
    )

    scenario = default_multi_scenario(builder, num_flows=2, fir=FIR)
    print(f"Attack: {scenario.describe()} over {BENCHMARK}")

    policy = MitigationPolicy.quarantine(
        engage_after=2, release_after=6, flush_queue=True
    )
    print(f"Policy: {policy.name} (engage after {policy.engage_after} detections, "
          f"re-engage backoff x{policy.reengage_backoff:g})\n")

    report, baseline = run_defended_episode(
        fence,
        builder,
        policy,
        fir=FIR,
        benchmark=BENCHMARK,
        scenario=scenario,
    )
    print(f"No-attack baseline benign packet latency: {baseline:.1f} cycles\n")

    # -- report ---------------------------------------------------------------
    print(report.format_timeline())
    print()
    print(f"detection latency        : {report.detection_latency} cycles")
    print(f"per-attacker detection   : {report.per_attacker_detection_latency()}")
    print(f"per-attacker mitigation  : {report.per_attacker_time_to_mitigation()}")
    print(f"time to full containment : {report.time_to_full_containment} cycles")
    print(f"localization rounds      : {report.localization_rounds}")
    print(f"engaged nodes            : {sorted(report.engaged_nodes)}")
    print(f"collateral nodes         : {sorted(report.collateral_nodes)} "
          f"({report.collateral_node_windows} node-windows)")

    recovery = report.recovery_ratio(baseline)
    print(f"\nrecovery: mitigated latency is {recovery:.2f}x the no-attack baseline")
    truth = set(scenario.attackers)
    fenced = truth & report.engaged_nodes
    assert fenced == truth, (
        f"the guard fenced only {sorted(fenced)} of {sorted(truth)}"
    )
    assert report.time_to_full_containment is not None
    assert recovery <= 1.25, (
        f"post-mitigation latency did not recover to within 25% of baseline "
        f"({recovery:.2f}x)"
    )
    print("closed loop OK: both attackers fenced, benign latency recovered "
          "to within 25% of baseline")


if __name__ == "__main__":
    main()
