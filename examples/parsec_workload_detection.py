#!/usr/bin/env python3
"""Flooding detection under realistic (PARSEC-like) workloads.

The paper's Section 5 argues that DL2Fence shines on realistic workloads:
PARSEC applications exchange far less data than synthetic traffic patterns, so
a flooding attack stands out more clearly during the Region-of-Interest.  This
example:

1. characterises the three PARSEC-like workload models (blackscholes,
   bodytrack, x264) — average injection and hotspot behaviour;
2. shows how a flooding attack at FIR 0.8 degrades each workload's packet
   latency (the Figure 1 effect);
3. trains DL2Fence on the PARSEC workloads and reports per-workload detection
   and localization quality.

Run with:  python examples/parsec_workload_detection.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.detection import run_feature_experiment
from repro.experiments.latency_sweep import run_latency_sweep
from repro.experiments.tables import format_feature_table, format_rows
from repro.monitor.features import FeatureKind
from repro.noc.topology import MeshTopology
from repro.traffic.parsec import PARSEC_WORKLOADS, make_parsec_workload

PARSEC = ["blackscholes", "bodytrack", "x264"]


def characterise_workloads(rows: int) -> None:
    topology = MeshTopology(rows=rows)
    print("Workload characterisation (simulated communication profile):")
    table = []
    for name in PARSEC:
        workload = make_parsec_workload(name, topology, total_cycles=2000, seed=1)
        packets = [p for c in range(2000) for p in workload.packets_for_cycle(c)]
        hotspot = sum(p.destination in workload.memory_controllers for p in packets)
        table.append(
            {
                "workload": name,
                "phases": len(PARSEC_WORKLOADS[name]),
                "packets_per_kcycle": 1000 * len(packets) / 2000,
                "hotspot_traffic_%": 100 * hotspot / max(1, len(packets)),
                "memory_controllers": len(workload.memory_controllers),
            }
        )
    print(format_rows(table))
    print()


def attack_impact(config: ExperimentConfig) -> None:
    print("Impact of a 2-attacker flood (FIR sweep) on benign packet latency:")
    rows = []
    for name in PARSEC:
        points = run_latency_sweep(
            firs=(0.0, 0.4, 0.8), benchmark=name, config=config, num_attackers=2
        )
        rows.append(
            {
                "workload": name,
                "latency@FIR=0": points[0].packet_latency,
                "latency@FIR=0.4": points[1].packet_latency,
                "latency@FIR=0.8": points[2].packet_latency,
                "slowdown@0.8": points[2].packet_latency
                / max(points[0].packet_latency, 1e-9),
            }
        )
    print(format_rows(rows))
    print()


def detection_quality(config: ExperimentConfig) -> None:
    print("DL2Fence on PARSEC workloads (VCO detection | BOC localization):")
    result = run_feature_experiment(
        FeatureKind.VCO, FeatureKind.BOC, benchmarks=PARSEC, config=config
    )
    print(format_feature_table(result))
    average = result.average_detection(synthetic=False)
    print(f"\nPARSEC average detection accuracy: {average.accuracy:.3f} "
          f"(paper reports 0.93 on a 16x16 mesh)")


def main() -> None:
    config = ExperimentConfig(rows=8, scenarios_per_benchmark=2)
    print(f"== Flooding DoS under PARSEC-like workloads ({config.rows}x{config.rows}) ==\n")
    characterise_workloads(config.rows)
    attack_impact(config)
    detection_quality(config)


if __name__ == "__main__":
    main()
