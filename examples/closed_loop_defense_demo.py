#!/usr/bin/env python3
"""Closed-loop runtime defense: detect, localize, throttle, recover.

This demo takes DL2Fence from detection to *action*.  On a live 8x8 mesh it:

1. trains the CNN detector and localizer exactly like the quickstart;
2. measures the no-attack benign latency baseline of the workload;
3. replays the same workload with a refined flooding attack (FIR 0.5)
   switching on mid-run, while a :class:`~repro.defense.DL2FenceGuard`
   streams every monitor window through the trained pipeline online and
   throttles the injection bandwidth of every node the Table-Like Method
   localizes as an attacker (with hysteresis and automatic rollback);
4. prints the full per-window defense timeline and checks that benign
   latency under mitigation recovers to within 25% of the baseline.

Run with:  python examples/closed_loop_defense_demo.py
"""

from __future__ import annotations

from repro import (
    DL2Fence,
    DL2FenceConfig,
    DL2FenceGuard,
    DatasetBuilder,
    DatasetConfig,
    FloodingAttacker,
    FloodingConfig,
    MitigationPolicy,
    MonitorConfig,
    NoCSimulator,
    SimulationConfig,
)

ROWS = 8
PERIOD = 256
WARMUP = 64
PRE_ATTACK_WINDOWS = 4
ATTACK_WINDOWS = 10
POST_ATTACK_WINDOWS = 4
FIR = 0.5


def train_pipeline() -> tuple[DL2Fence, DatasetBuilder]:
    """Train detector + localizer on benign and attacked runs (as quickstart)."""
    config = DatasetConfig(rows=ROWS, sample_period=200, samples_per_run=6, seed=7)
    builder = DatasetBuilder(config)
    print("Simulating training runs (uniform_random + tornado)...")
    runs = builder.build_runs(
        benchmarks=["uniform_random", "tornado"], scenarios_per_benchmark=2
    )
    fence = DL2Fence(builder.topology, DL2FenceConfig.paper_default())
    print("Training the CNN detector (VCO) and localizer (BOC)...")
    summaries = fence.fit_from_runs(builder, runs)
    print(f"  detector : train accuracy {summaries['detector'].final_accuracy:.3f}")
    print(f"  localizer: train dice     {summaries['localizer'].final_dice:.3f}\n")
    return fence, builder


def make_live_simulator(
    builder: DatasetBuilder, attack: FloodingConfig | None
) -> NoCSimulator:
    """The live system under defense: benign workload, optionally attacked."""
    simulator = NoCSimulator(SimulationConfig(rows=ROWS, warmup_cycles=WARMUP, seed=3))
    simulator.add_source(builder.make_workload("uniform_random", seed=42))
    if attack is not None:
        simulator.add_source(FloodingAttacker(attack, builder.topology, seed=43))
    return simulator


def main() -> None:
    print(f"== Closed-loop DL2Fence defense on a {ROWS}x{ROWS} mesh ==\n")
    fence, builder = train_pipeline()
    topology = builder.topology

    total_windows = PRE_ATTACK_WINDOWS + ATTACK_WINDOWS + POST_ATTACK_WINDOWS
    total_cycles = WARMUP + total_windows * PERIOD + 1
    attack_start = WARMUP + PRE_ATTACK_WINDOWS * PERIOD
    attack_end = WARMUP + (PRE_ATTACK_WINDOWS + ATTACK_WINDOWS) * PERIOD

    # -- no-attack baseline ---------------------------------------------------
    baseline_sim = make_live_simulator(builder, attack=None)
    baseline_sim.run(total_cycles)
    baseline = baseline_sim.latency(benign_only=True).packet_latency
    print(f"No-attack baseline benign packet latency: {baseline:.1f} cycles\n")

    # -- defended run ---------------------------------------------------------
    attacker_node = topology.node_id(6, 6)
    victim_node = topology.node_id(1, 1)
    attack = FloodingConfig(
        attackers=(attacker_node,),
        victim=victim_node,
        fir=FIR,
        start_cycle=attack_start,
        end_cycle=attack_end,
    )
    policy = MitigationPolicy.throttle(
        0.1, engage_after=2, release_after=6, flush_queue=True
    )
    print(
        f"Attack: node {attacker_node} floods node {victim_node} at FIR {FIR} "
        f"from cycle {attack_start} to {attack_end}"
    )
    print(f"Policy: {policy.name} (engage after {policy.engage_after} detections, "
          f"release after {policy.release_after} clean windows)\n")

    simulator = make_live_simulator(builder, attack=attack)
    guard = DL2FenceGuard(
        fence,
        policy,
        attack_start=attack_start,
        attack_end=attack_end,
        true_attackers=(attacker_node,),
    )
    guard.attach(simulator, monitor_config=MonitorConfig(sample_period=PERIOD))
    simulator.run(total_cycles)

    # -- report ---------------------------------------------------------------
    report = guard.report
    print(report.format_timeline())
    print()
    print(f"detection latency   : {report.detection_latency} cycles")
    print(f"time to mitigation  : {report.time_to_mitigation} cycles")
    print(f"pre-attack latency  : {report.pre_attack_latency():.1f} cycles")
    print(f"attack latency      : {report.attack_latency():.1f} cycles")
    print(f"mitigated latency   : {report.post_mitigation_latency():.1f} cycles")
    print(f"engaged nodes       : {sorted(report.engaged_nodes)}")
    print(f"collateral nodes    : {sorted(report.collateral_nodes)} "
          f"({report.collateral_node_windows} node-windows)")

    recovery = report.recovery_ratio(baseline)
    print(f"\nrecovery: mitigated latency is {recovery:.2f}x the no-attack baseline")
    assert attacker_node in report.engaged_nodes, (
        "the guard failed to throttle the true attacker"
    )
    assert recovery <= 1.25, (
        f"post-mitigation latency did not recover to within 25% of baseline "
        f"({recovery:.2f}x)"
    )
    print("closed loop OK: true attacker throttled, benign latency recovered "
          "to within 25% of baseline")


if __name__ == "__main__":
    main()
