#!/usr/bin/env python3
"""Quickstart: train DL2Fence and detect a flooding attack end to end.

This walks the paper's full story on a small 8x8 mesh in about a minute:

1. simulate benign + attacked runs of a synthetic workload and collect
   VCO/BOC feature frames with the global performance monitor;
2. train the CNN detector (VCO) and CNN segmentation localizer (BOC);
3. run an unseen attack scenario through the online pipeline: detection,
   Multi-Frame Fusion victim localization, and Table-Like-Method attacker
   localization.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AttackScenario,
    DL2Fence,
    DL2FenceConfig,
    DatasetBuilder,
    DatasetConfig,
)


def main() -> None:
    rows = 8
    print(f"== DL2Fence quickstart on a {rows}x{rows} mesh ==\n")

    # 1. Dataset generation -------------------------------------------------
    config = DatasetConfig(rows=rows, sample_period=200, samples_per_run=6, seed=7)
    builder = DatasetBuilder(config)
    print("Simulating benign and attacked runs (uniform_random + tornado)...")
    runs = builder.build_runs(
        benchmarks=["uniform_random", "tornado"], scenarios_per_benchmark=2
    )
    attack_runs = sum(run.is_attack for run in runs)
    print(f"  {len(runs)} runs simulated ({attack_runs} attacked), "
          f"{sum(r.num_samples for r in runs)} feature samples collected\n")

    # 2. Training -----------------------------------------------------------
    fence = DL2Fence(builder.topology, DL2FenceConfig.paper_default())
    print("Training the CNN detector (VCO) and localizer (BOC)...")
    summaries = fence.fit_from_runs(builder, runs)
    print(f"  detector : {summaries['detector'].epochs} epochs, "
          f"train accuracy {summaries['detector'].final_accuracy:.3f}")
    print(f"  localizer: {summaries['localizer'].epochs} epochs, "
          f"train dice {summaries['localizer'].final_dice:.3f}\n")

    # 3. Online detection on an unseen scenario ------------------------------
    topology = builder.topology
    scenario = AttackScenario(
        attackers=(topology.node_id(6, 6),), victim=topology.node_id(1, 1), fir=0.8
    )
    print(f"Unseen attack scenario: {scenario.describe()}")
    print(f"  ground-truth victims (route): "
          f"{sorted(scenario.ground_truth_victims(topology))}\n")

    run = builder.run_benchmark("uniform_random", scenario=scenario, seed=99)
    for sample in run.samples:
        result = fence.process_sample(sample)
        status = "ATTACK" if result.detected else "benign"
        print(f"  cycle {sample.cycle:5d}: {status} "
              f"(p={result.detection_probability:.2f})  "
              f"victims={result.victims}  attackers={result.attackers}")

    last = fence.process_sample(run.samples[-1], force_localization=True)
    print("\nReconstructed attacking route (fused mask, 1 = victim):")
    print(np.flipud(last.fused_mask).astype(int))
    print(f"\nTable-Like-Method attacker estimate: {last.attackers} "
          f"(true attacker: {scenario.attackers[0]})")


if __name__ == "__main__":
    main()
