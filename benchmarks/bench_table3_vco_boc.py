"""Table 3: the chosen configuration — VCO detection, BOC localization.

This is DL2Fence's operating point: raw VCO frames (no normalization needed)
feed the detector, and only when an attack is flagged are the BOC frames
normalised and segmented.  Paper shape: detection accuracy 0.958 / precision
0.985 and localization accuracy 0.917 / precision 0.993 on the 16x16 STP
average; both tasks also work well on PARSEC.
"""

from bench_utils import run_once, write_result

from repro.experiments.detection import run_feature_experiment
from repro.experiments.tables import format_feature_table
from repro.monitor.features import FeatureKind


def test_table3_vco_detection_boc_localization(benchmark, experiment_config):
    result = run_once(
        benchmark,
        run_feature_experiment,
        detection_feature=FeatureKind.VCO,
        localization_feature=FeatureKind.BOC,
        config=experiment_config,
    )
    text = format_feature_table(
        result, title="Table 3 reproduction: VCO detection | BOC localization"
    )
    detection = result.average_detection(synthetic=True)
    localization = result.average_localization(synthetic=True)
    overall_detection = result.average_detection()
    overall_localization = result.average_localization()
    text += (
        f"\n\nSTP averages: detection acc={detection.accuracy:.3f} "
        f"prec={detection.precision:.3f} | localization acc={localization.accuracy:.3f} "
        f"prec={localization.precision:.3f}"
        f"\nAll-benchmark averages: detection acc={overall_detection.accuracy:.3f} | "
        f"localization acc={overall_localization.accuracy:.3f}"
        f"\npaper (16x16 STP): detection acc=0.958 prec=0.985 | "
        f"localization acc=0.917 prec=0.993"
    )
    write_result("table3_vco_boc", text)

    # Shape assertions for the headline configuration.
    assert detection.accuracy > 0.8
    assert detection.precision > 0.8
    assert localization.accuracy > 0.8
    assert localization.precision > 0.6
