"""Figure 6 at 32x32: the first two-attacker closed-loop sweep at this scale.

The SoA simulator backend makes a 32x32 mesh practical (the object backend
costs ~7 ms/cycle under flood here — a single defended episode alone would
take over a minute of pure stepping).  This bench trains a pipeline at
32x32, runs the deterministic row-disjoint two-attacker flood sweep under
the quarantine policy, and records the outcome plus the end-to-end
wall-clock in ``benchmarks/results/fig6_multi_attack_32x32.{txt,json}``.

The run takes several minutes, so it is gated behind ``REPRO_RUN_32X32=1``
(the nightly workflow's 32x32 smoke job sets it; the recorded artifacts are
committed so the numbers are always visible).
"""

import os
import time

import pytest

from repro.defense.policy import MitigationPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.mitigation import run_mitigation_sweep
from repro.experiments.tables import format_rows

from bench_utils import write_json_result, write_result

# 32x32 operating point: the benign rate and training-scenario spread come
# from the adaptive OPERATING_POINTS table (lower per-node rate, wider
# scenario spread at this scale — pinned by tests/experiments/test_config.py);
# only the sampling/epoch knobs specific to this bench stay explicit.
MESH_32_CONFIG = ExperimentConfig.for_mesh(
    32,
    sample_period=256,
    samples_per_run=6,
    detector_epochs=80,
    localizer_epochs=70,
    seed=7,
)
SWEEP_FIR = 0.5
POLICIES = (
    MitigationPolicy.quarantine(engage_after=2, release_after=6, flush_queue=True),
)


@pytest.mark.skipif(
    os.environ.get("REPRO_RUN_32X32", "") != "1",
    reason="32x32 sweep takes minutes; set REPRO_RUN_32X32=1 (nightly smoke job)",
)
def test_fig6_multi_attack_32x32():
    """Two concurrent FIR-0.5 floods on a 32x32 mesh, both fenced."""
    start = time.perf_counter()
    points = run_mitigation_sweep(
        firs=(SWEEP_FIR,),
        rows_values=(32,),
        policies=POLICIES,
        config=MESH_32_CONFIG,
        num_flows=2,
    )
    wall_clock = time.perf_counter() - start

    rows = [point.as_dict() for point in points]
    per_attacker = "\n".join(
        f"{point.policy}: per-attacker detection latency "
        f"{point.per_attacker_detection_latency}, "
        f"time-to-full-containment {point.time_to_full_containment} cycles, "
        f"{point.localization_rounds} round(s)"
        for point in points
    )
    summary = (
        f"\nmesh: 32x32, benign workload: uniform_random, 2 concurrent "
        f"attackers on disjoint victims @ FIR {SWEEP_FIR} "
        f"(REPRO_SIM_BACKEND={os.environ.get('REPRO_SIM_BACKEND', 'soa')})\n"
        + per_attacker
        + f"\nend-to-end sweep wall-clock: {wall_clock:8.1f} s"
    )
    write_result("fig6_multi_attack_32x32", format_rows(rows) + summary)
    write_json_result(
        "fig6_multi_attack_32x32",
        {
            "mesh_rows": 32,
            "fir": SWEEP_FIR,
            "num_flows": 2,
            "benchmark": "uniform_random",
            "wall_clock_seconds": wall_clock,
            "points": rows,
        },
    )

    for point in points:
        assert point.num_attackers == 2
        # Both attackers must end up fenced at the paper-beating scale.
        assert point.attackers_fenced == 2
        assert point.time_to_full_containment is not None
        assert point.mitigated_latency < point.unmitigated_latency
