"""Table 1: detection | localization with the VCO feature for both tasks.

Paper shape: detection on VCO is strong (avg accuracy 0.98 STP / 0.93 PARSEC)
but VCO-based localization on traffic-heavy synthetic benchmarks is poor
(avg localization accuracy 0.53 on STP) because the instantaneous occupancy
only exposes part of the attacking route.

Known deviation of this reproduction: VCO here is the Garnet-style
window-averaged occupancy (the instantaneous snapshot was not informative
enough on the simplified simulator), so a VCO frame observes the whole
sampling window and localizes far better than the paper's instantaneous VCO.
The bench therefore asserts the detection claim and records the localization
numbers for EXPERIMENTS.md without asserting the paper's degradation.
"""

from bench_utils import run_once, write_result

from repro.experiments.detection import run_feature_experiment
from repro.experiments.tables import format_feature_table
from repro.monitor.features import FeatureKind


def test_table1_vco_detection_and_localization(benchmark, experiment_config):
    result = run_once(
        benchmark,
        run_feature_experiment,
        detection_feature=FeatureKind.VCO,
        localization_feature=FeatureKind.VCO,
        config=experiment_config,
    )
    text = format_feature_table(
        result, title="Table 1 reproduction: VCO detection | VCO localization"
    )
    detection = result.average_detection(synthetic=True)
    localization = result.average_localization(synthetic=True)
    text += (
        f"\n\nSTP averages: detection acc={detection.accuracy:.3f} "
        f"prec={detection.precision:.3f} | localization acc={localization.accuracy:.3f} "
        f"recall={localization.recall:.3f}"
        f"\npaper (16x16): detection acc=0.98 prec=0.99 | localization acc=0.53"
    )
    write_result("table1_vco", text)

    # Shape assertions: VCO detection works well on synthetic traffic.
    assert detection.accuracy > 0.8
    assert detection.precision > 0.8
    assert localization.accuracy > 0.5
