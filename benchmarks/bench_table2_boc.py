"""Table 2: detection | localization with the BOC feature for both tasks.

Paper shape: BOC (normalised) is the strongest feature — detection accuracy
>= 0.99 with precision 1.0 on synthetic traffic, and localization accuracy
0.97, clearly better than VCO-based localization (Table 1).

Known deviation of this reproduction: BOC frames are normalised by their own
per-frame maximum before inference, which discards the absolute operation
count that separates attacked from benign windows; BOC *detection* is
therefore weaker here than in the paper, while BOC *localization* (which only
needs the route's relative shape) reproduces the paper's strong result and is
what the chosen Table 3 configuration actually uses BOC for.
"""

from bench_utils import run_once, write_result

from repro.experiments.detection import run_feature_experiment
from repro.experiments.tables import format_feature_table
from repro.monitor.features import FeatureKind


def test_table2_boc_detection_and_localization(benchmark, experiment_config):
    result = run_once(
        benchmark,
        run_feature_experiment,
        detection_feature=FeatureKind.BOC,
        localization_feature=FeatureKind.BOC,
        config=experiment_config,
    )
    text = format_feature_table(
        result, title="Table 2 reproduction: BOC detection | BOC localization"
    )
    detection = result.average_detection(synthetic=True)
    localization = result.average_localization(synthetic=True)
    text += (
        f"\n\nSTP averages: detection acc={detection.accuracy:.3f} "
        f"prec={detection.precision:.3f} | localization acc={localization.accuracy:.3f} "
        f"recall={localization.recall:.3f}"
        f"\npaper (16x16): detection acc=0.997 prec=1.000 | localization acc=0.973"
    )
    write_result("table2_boc", text)

    # Shape assertions: BOC localization — the job BOC has in the final
    # DL2Fence configuration — is strong; detection on per-frame-normalised
    # BOC still clears chance by a wide margin.
    assert localization.accuracy > 0.85
    assert localization.recall > 0.6
    assert detection.accuracy > 0.55
