"""Figure 5: hardware overhead decreasing with larger NoCs.

Paper values: 7.40% (4x4), 1.90% (8x8), 0.45% (16x16), 0.11% (32x32), a 76.3%
decrease from 8x8 to 16x16, and 42.4% less hardware than the distributed
perceptron scheme (Sniffer, 3.3%) at the 8x8 scale.
"""

from bench_utils import run_once, write_result

from repro.experiments.overhead_sweep import PAPER_OVERHEAD_PERCENT, run_overhead_sweep
from repro.experiments.tables import format_rows


def test_fig5_hardware_overhead_sweep(benchmark):
    summary = run_once(benchmark, run_overhead_sweep, sizes=(4, 8, 16, 32))

    rows = []
    for report in summary["reports"]:
        rows.append(
            {
                "mesh": f"{report.rows}x{report.rows}",
                "noc_kgates": report.noc_area_gates / 1e3,
                "accelerators_kgates": report.total_accelerator_gates / 1e3,
                "overhead_%": report.overhead_percent,
                "paper_%": PAPER_OVERHEAD_PERCENT[report.rows],
            }
        )
    text = format_rows(rows)
    text += (
        f"\n8x8 -> 16x16 overhead saving: {summary['saving_8_to_16']:.1%} "
        f"(paper: 76.3%)"
        f"\nsaving vs Sniffer at 8x8: {summary['saving_vs_sniffer_8x8']:.1%} "
        f"(paper: 42.4%)"
    )
    write_result("fig5_hardware_overhead", text)

    measured = summary["measured_percent"]
    # Shape: overhead decreases monotonically with mesh size.
    assert measured[4] > measured[8] > measured[16] > measured[32]
    # Each point is within a factor of two of the paper's synthesis result.
    for rows_, paper in PAPER_OVERHEAD_PERCENT.items():
        assert 0.5 * paper < measured[rows_] < 2.0 * paper
    # Headline claims hold to within a few points.
    assert 0.65 < summary["saving_8_to_16"] < 0.85
    assert 0.30 < summary["saving_vs_sniffer_8x8"] < 0.60
