"""Ablation benches for the design choices DESIGN.md calls out.

* **Localizer depth** — the paper notes that adding convolutional layers
  improves dice accuracy but inflates the hardware cost; this bench sweeps
  the depth and reports both sides of the trade-off.
* **VCE on/off** — the Victim Completing Enhancement is configurable; it
  should raise localization recall (it completes missed route nodes) at a
  possible small cost in precision.
"""

import numpy as np
from bench_utils import run_once, write_result

from repro.core.config import DL2FenceConfig
from repro.core.localizer import build_localizer_model
from repro.core.pipeline import DL2Fence
from repro.experiments.tables import format_rows
from repro.hardware.accelerator import CNNAcceleratorAreaModel
from repro.monitor.dataset import DatasetBuilder


def _training_material(experiment_config):
    builder = DatasetBuilder(experiment_config.dataset_config())
    runs = builder.build_runs(
        benchmarks=["uniform_random", "tornado", "blackscholes"],
        scenarios_per_benchmark=experiment_config.scenarios_per_benchmark,
        seed=experiment_config.seed,
    )
    return builder, runs


def test_ablation_localizer_depth(benchmark, experiment_config):
    def sweep():
        builder, runs = _training_material(experiment_config)
        dataset = builder.localization_dataset(runs)
        area_model = CNNAcceleratorAreaModel()
        rows = []
        for depth in (1, 2, 3):
            config = DL2FenceConfig(seed=experiment_config.seed, localizer_conv_layers=depth)
            fence = DL2Fence(builder.topology, config)
            fence.localizer.fit(dataset, epochs=experiment_config.localizer_epochs)
            report = fence.localizer.evaluate(dataset)
            rows.append(
                {
                    "conv_layers": depth,
                    "dice": report.extras["dice"],
                    "accuracy": report.accuracy,
                    "parameters": fence.localizer.num_parameters,
                    "accelerator_kgates": area_model.accelerator_area(
                        fence.localizer.num_parameters, experiment_config.rows - 1
                    )
                    / 1e3,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_rows(rows)
    text += "\npaper: deeper segmentation models buy marginal dice at a hardware cost"
    write_result("ablation_localizer_depth", text)

    by_depth = {row["conv_layers"]: row for row in rows}
    # Hardware cost grows strictly with depth; quality does not collapse.
    assert (
        by_depth[1]["accelerator_kgates"]
        < by_depth[2]["accelerator_kgates"]
        < by_depth[3]["accelerator_kgates"]
    )
    assert by_depth[2]["dice"] > 0.5


def test_ablation_vce_on_off(benchmark, experiment_config):
    def sweep():
        builder, runs = _training_material(experiment_config)
        attacked = [run for run in runs if run.is_attack]
        rows = []
        for enable_vce in (False, True):
            config = DL2FenceConfig(seed=experiment_config.seed, enable_vce=enable_vce)
            fence = DL2Fence(builder.topology, config)
            fence.fit_from_runs(
                builder,
                runs,
                detector_epochs=experiment_config.detector_epochs,
                localizer_epochs=experiment_config.localizer_epochs,
            )
            report = fence.evaluate_localization(attacked)
            rows.append(
                {
                    "vce": "on" if enable_vce else "off",
                    "accuracy": report.accuracy,
                    "precision": report.precision,
                    "recall": report.recall,
                    "f1": report.f1,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_rows(rows)
    text += "\npaper: VCE refines RPV localization when initial detection is accurate"
    write_result("ablation_vce", text)

    off, on = rows
    # VCE completes routes, so recall must not drop.
    assert on["recall"] >= off["recall"] - 0.05
