"""Observability overhead gate: tracing must be ~free off, cheap on.

Measures the per-cycle step cost of the monitored 16x16 flood workload in
three interleaved configurations:

* ``baseline`` — observability off (the tier-1 default);
* ``disabled`` — observability explicitly configured off through the env
  path (``REPRO_TRACE=off`` semantics).  Identical code path to baseline by
  design; the <1% gate is the regression tripwire that keeps it that way
  (an "off" mode that starts allocating, formatting or timing fails here);
* ``enabled`` — ring-buffer tracing plus the metrics registry, the nightly
  matrix configuration.  Gate: <5% overhead over baseline.

Rounds are interleaved and each mode keeps its best (min) per-cycle cost,
so machine noise hits all modes equally.  Results land in
``benchmarks/results/obs_overhead.{txt,json}`` and the repo-root
``BENCH_PR10.json`` trajectory.
"""

import json
import platform
import time
from os import cpu_count
from pathlib import Path

from bench_utils import write_json_result, write_result

from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.obs.bus import BUS, RingBufferSink, trace_session
from repro.obs.metrics import METRICS
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

ROWS = 16
CYCLES = 512
REPEATS = 7
ENABLED_GATE = 0.05
DISABLED_GATE = 0.01


def _monitored_simulator(rows=ROWS):
    sim = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=0, seed=0, backend="soa")
    )
    sim.add_source(UniformRandomTraffic(sim.topology, injection_rate=0.02, seed=0))
    sim.add_source(
        FloodingAttacker(
            FloodingConfig(attackers=(rows * rows - 1,), victim=0, fir=0.8),
            sim.topology,
            seed=1,
        )
    )
    GlobalPerformanceMonitor(MonitorConfig(sample_period=64)).attach(sim)
    sim.run(64)
    return sim


def _timed_run(cycles=CYCLES):
    sim = _monitored_simulator()
    start = time.perf_counter()
    sim.run(cycles)
    return (time.perf_counter() - start) * 1e3 / cycles


def _measure_modes():
    """Best-of per-cycle ms per mode, interleaved round-robin."""
    best = {"baseline": float("inf"), "disabled": float("inf"), "enabled": float("inf")}
    for _ in range(REPEATS):
        assert not BUS.active and not METRICS.active
        best["baseline"] = min(best["baseline"], _timed_run())

        BUS.disable()
        METRICS.disable()
        best["disabled"] = min(best["disabled"], _timed_run())

        with trace_session(RingBufferSink()):
            METRICS.enable()
            try:
                best["enabled"] = min(best["enabled"], _timed_run())
            finally:
                METRICS.disable()
                METRICS.reset()
    return best


def _write_bench_pr10(payload: dict) -> None:
    path = Path(__file__).resolve().parents[1] / "BENCH_PR10.json"
    document = {
        "pr": 10,
        "title": (
            "Flight-recorder observability: event-trace bus, metrics "
            "registry, and profiling hooks"
        ),
        "machine": {
            "cpu_count": cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "trajectory": {"obs_overhead_16x16_flood": payload},
    }
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")


def test_observability_overhead_gates():
    costs = _measure_modes()
    enabled_overhead = costs["enabled"] / costs["baseline"] - 1.0
    disabled_overhead = costs["disabled"] / costs["baseline"] - 1.0
    payload = {
        "baseline_ms_per_cycle": costs["baseline"],
        "disabled_ms_per_cycle": costs["disabled"],
        "enabled_ms_per_cycle": costs["enabled"],
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "gates": {"enabled_max": ENABLED_GATE, "disabled_max": DISABLED_GATE},
        "note": (
            f"{ROWS}x{ROWS} mesh, uniform_random 0.02 + FIR-0.8 flood, "
            f"sampled every 64 cycles, {CYCLES} cycles, best of {REPEATS} "
            "interleaved rounds.  'enabled' = ring tracing + metrics "
            "registry (the nightly matrix config); 'disabled' = explicit "
            "off, pinned identical to the untouched baseline."
        ),
    }
    write_json_result("obs_overhead", payload)
    write_result(
        "obs_overhead",
        f"{ROWS}x{ROWS} flood step cost, best of {REPEATS} (ms/cycle)\n"
        f"baseline (obs off) : {costs['baseline']:8.4f}\n"
        f"disabled (explicit): {costs['disabled']:8.4f}  "
        f"({disabled_overhead * 100:+5.2f}% vs baseline, gate <"
        f"{DISABLED_GATE * 100:.0f}%)\n"
        f"enabled (ring+prom): {costs['enabled']:8.4f}  "
        f"({enabled_overhead * 100:+5.2f}% vs baseline, gate <"
        f"{ENABLED_GATE * 100:.0f}%)",
    )
    _write_bench_pr10(payload)
    assert enabled_overhead < ENABLED_GATE, costs
    assert disabled_overhead < DISABLED_GATE, costs
