"""Micro-benchmarks of the substrate components (true pytest-benchmark timing).

These are not paper artefacts; they track the cost of the building blocks the
table/figure benches are built from (simulator cycles, frame extraction, CNN
inference/training steps), which is what determines how far the experiment
scale can be pushed.
"""

import time

import numpy as np
import pytest

from bench_utils import write_json_result, write_result

from repro.core.detector import build_detector_model
from repro.core.localizer import DoSProfileLocalizer, build_localizer_model
from repro.monitor.features import (
    FeatureKind,
    extract_feature_frame,
    extract_feature_frames,
)
from repro.noc.network import MeshNetwork
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic


def _loaded_simulator(rows=8, backend=""):
    sim = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=0, seed=0, backend=backend)
    )
    sim.add_source(UniformRandomTraffic(sim.topology, injection_rate=0.02, seed=0))
    sim.add_source(
        FloodingAttacker(
            FloodingConfig(attackers=(rows * rows - 1,), victim=0, fir=0.8),
            sim.topology,
            seed=1,
        )
    )
    sim.run(64)
    return sim


def _step_cost_ms(rows: int, backend: str, cycles: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` per-cycle wall-clock of the flood micro-workload."""
    best = float("inf")
    for _ in range(repeats):
        sim = _loaded_simulator(rows=rows, backend=backend)
        start = time.perf_counter()
        sim.run(cycles)
        best = min(best, (time.perf_counter() - start) * 1e3 / cycles)
    return best


def test_simulator_100_cycles_8x8(benchmark):
    sim = _loaded_simulator(rows=8)
    benchmark(lambda: sim.run(100))


def test_simulator_100_cycles_16x16(benchmark):
    sim = _loaded_simulator(rows=16)
    benchmark(lambda: sim.run(100))


def test_simulator_100_cycles_16x16_object_backend(benchmark):
    sim = _loaded_simulator(rows=16, backend="object")
    benchmark(lambda: sim.run(100))


def test_feature_frame_extraction_16x16(benchmark):
    sim = _loaded_simulator(rows=16)

    def extract():
        return [
            extract_feature_frame(sim.network, direction, kind)
            for direction in Direction.cardinal()
            for kind in FeatureKind
        ]

    frames = benchmark(extract)
    assert len(frames) == 8


def test_feature_frames_batched_16x16(benchmark):
    """Single-pass extraction of all four directional frames (monitor path)."""
    sim = _loaded_simulator(rows=16)

    def extract():
        return [extract_feature_frames(sim.network, kind) for kind in FeatureKind]

    vco, boc = benchmark(extract)
    for direction in Direction.cardinal():
        assert np.array_equal(
            vco[direction], extract_feature_frame(sim.network, direction, FeatureKind.VCO)
        )


def test_simulator_step_cost_recorded():
    """Per-cycle cost of the 16x16 simulator under flood, per backend.

    The tentpole hot path for the paper-scale mitigation sweep.  The object
    backend (router/VC/flit Python objects) went from ~14 ms to ~0.8 ms per
    cycle over PR 2's optimizations; the SoA backend (flat NumPy arrays +
    vectorized kernels, PR 4) is recorded next to it together with the
    measured speedup.
    """
    cycles = 400
    object_ms = _step_cost_ms(16, "object", cycles)
    soa_ms = _step_cost_ms(16, "soa", cycles)
    speedup = object_ms / soa_ms
    write_result(
        "micro_simulator_step_16x16",
        f"16x16 mesh, uniform_random 0.02 + FIR-0.8 flood, {cycles} cycles, "
        f"best of 3\n"
        f"object backend: {object_ms:8.3f} ms/cycle\n"
        f"soa backend   : {soa_ms:8.3f} ms/cycle\n"
        f"speedup       : {speedup:8.2f}x",
    )
    write_json_result(
        "micro_simulator_step_16x16",
        {
            "mesh_rows": 16,
            "workload": "uniform_random 0.02 + FIR-0.8 flood",
            "cycles": cycles,
            "ms_per_cycle": object_ms,  # object-backend baseline (history)
            "object_ms_per_cycle": object_ms,
            "soa_ms_per_cycle": soa_ms,
            "soa_speedup": speedup,
        },
    )
    # Regression gates, with slack for noisy shared runners: the SoA backend
    # must stay well ahead of the object model and under 0.5 ms/cycle.
    assert speedup > 2.0
    assert soa_ms < 0.5


def test_simulator_step_cost_32x32_recorded():
    """First recorded 32x32 step cost: where the SoA vectorization pays most.

    At 32x32 the object backend walks ~5000 ports per cycle while the SoA
    kernels touch the same state through a handful of NumPy ops, so the gap
    widens far beyond the 16x16 number.
    """
    cycles = 200
    object_ms = _step_cost_ms(32, "object", cycles, repeats=2)
    soa_ms = _step_cost_ms(32, "soa", cycles, repeats=2)
    speedup = object_ms / soa_ms
    write_result(
        "micro_simulator_step_32x32",
        f"32x32 mesh, uniform_random 0.02 + FIR-0.8 flood, {cycles} cycles, "
        f"best of 2\n"
        f"object backend: {object_ms:8.3f} ms/cycle\n"
        f"soa backend   : {soa_ms:8.3f} ms/cycle\n"
        f"speedup       : {speedup:8.2f}x",
    )
    write_json_result(
        "micro_simulator_step_32x32",
        {
            "mesh_rows": 32,
            "workload": "uniform_random 0.02 + FIR-0.8 flood",
            "cycles": cycles,
            "object_ms_per_cycle": object_ms,
            "soa_ms_per_cycle": soa_ms,
            "soa_speedup": speedup,
        },
    )
    assert speedup > 4.0
    assert soa_ms < 2.0


def test_detector_inference_16x16(benchmark):
    model = build_detector_model((16, 15, 4))
    batch = np.random.default_rng(0).random((32, 16, 15, 4))
    out = benchmark(lambda: model.predict(batch))
    assert out.shape == (32, 1)


def test_localizer_inference_16x16(benchmark):
    model = build_localizer_model((16, 15, 1))
    batch = np.random.default_rng(0).random((16, 16, 15, 1))
    out = benchmark(lambda: model.predict(batch))
    assert out.shape == (16, 16, 15, 1)


def _directional_frames(rows=16, seed=0):
    rng = np.random.default_rng(seed)
    frames = {}
    for direction in Direction.cardinal():
        shape = (
            (rows, rows - 1)
            if direction in (Direction.EAST, Direction.WEST)
            else (rows - 1, rows)
        )
        frames[direction] = rng.random(shape)
    return frames


def test_localizer_four_directions_loop_16x16(benchmark):
    localizer = DoSProfileLocalizer((16, 15, 1))
    frames = _directional_frames()
    benchmark(
        lambda: [
            localizer.segment_frame(frames[d], d) for d in Direction.cardinal()
        ]
    )


def test_localizer_four_directions_batched_16x16(benchmark):
    localizer = DoSProfileLocalizer((16, 15, 1))
    frames = _directional_frames()
    masks = benchmark(lambda: localizer.segment_frames(frames))
    assert set(masks) == set(Direction.cardinal())


def test_localizer_batching_speedup_recorded():
    """One batched forward pass must beat four per-direction calls.

    This is the online fast path of ``DL2Fence.process_sample``: the speedup
    is recorded so regressions in the batching path are visible.
    """
    localizer = DoSProfileLocalizer((16, 15, 1))
    frames = _directional_frames()
    rounds = 20
    start = time.perf_counter()
    for _ in range(rounds):
        loop_masks = {
            d: localizer.segment_frame(frames[d], d) for d in Direction.cardinal()
        }
    mid = time.perf_counter()
    for _ in range(rounds):
        batched_masks = localizer.segment_frames(frames)
    end = time.perf_counter()
    for direction in Direction.cardinal():
        assert np.allclose(loop_masks[direction], batched_masks[direction])
    loop_time, batched_time = mid - start, end - mid
    speedup = loop_time / max(batched_time, 1e-12)
    write_result(
        "micro_localizer_batching",
        f"16x16 localizer, 4 directional frames, {rounds} rounds\n"
        f"per-direction loop : {loop_time * 1e3 / rounds:8.3f} ms/sample\n"
        f"batched forward    : {batched_time * 1e3 / rounds:8.3f} ms/sample\n"
        f"speedup            : {speedup:8.2f}x",
    )
    write_json_result(
        "micro_localizer_batching",
        {
            "mesh_rows": 16,
            "rounds": rounds,
            "loop_ms_per_sample": loop_time * 1e3 / rounds,
            "batched_ms_per_sample": batched_time * 1e3 / rounds,
            "speedup": speedup,
        },
    )
    # No wall-clock assertion: timings on shared runners are too noisy to
    # gate on.  The recorded speedup makes regressions visible; the
    # equivalence assertions above are the correctness gate.


def test_nn_dtype_speedup_recorded():
    """float32 training steps must not be slower than float64, recorded.

    The engine's float32 fast path (dtype-parameterized layers + reused
    im2col GEMM buffers) is what makes retraining cheap at the 16x16 scale;
    this records the per-step cost under both dtypes so the speedup is
    tracked alongside the other micro numbers.
    """
    from repro.nn import Adam, BinaryCrossEntropy, use_dtype

    rng = np.random.default_rng(0)
    x = rng.random((64, 16, 15, 4))
    y = rng.integers(0, 2, size=(64, 1)).astype(float)
    steps = 30
    timings = {}
    for dtype in ("float64", "float32"):
        with use_dtype(dtype):
            model = build_detector_model((16, 15, 4))
        loss = BinaryCrossEntropy()
        optimizer = Adam(learning_rate=0.005)
        xt = x.astype(model.dtype)
        yt = y.astype(model.dtype)
        model.forward(xt, training=True)  # warm up buffers
        start = time.perf_counter()
        for _ in range(steps):
            predictions = model.forward(xt, training=True)
            loss.forward(predictions, yt)
            model.backward(loss.backward(predictions, yt))
            optimizer.step(model.layers)
        timings[dtype] = (time.perf_counter() - start) / steps
    speedup = timings["float64"] / max(timings["float32"], 1e-12)
    write_result(
        "micro_nn_dtype",
        f"16x16 detector, batch 64, {steps} training steps per dtype\n"
        f"float64 step: {timings['float64'] * 1e3:8.3f} ms\n"
        f"float32 step: {timings['float32'] * 1e3:8.3f} ms\n"
        f"speedup     : {speedup:8.2f}x",
    )
    write_json_result(
        "micro_nn_dtype",
        {
            "mesh_rows": 16,
            "batch": 64,
            "steps": steps,
            "float64_ms_per_step": timings["float64"] * 1e3,
            "float32_ms_per_step": timings["float32"] * 1e3,
            "speedup": speedup,
        },
    )
    # No wall-clock gate (shared runners are noisy); the recorded numbers
    # make a fast-path regression visible.


def test_detector_training_step_8x8(benchmark):
    from repro.nn import Adam, BinaryCrossEntropy

    model = build_detector_model((8, 7, 4))
    loss = BinaryCrossEntropy()
    optimizer = Adam(learning_rate=0.005)
    rng = np.random.default_rng(0)
    x = rng.random((32, 8, 7, 4))
    y = rng.integers(0, 2, size=(32, 1)).astype(float)

    def step():
        predictions = model.forward(x, training=True)
        value = loss.forward(predictions, y)
        model.backward(loss.backward(predictions, y))
        optimizer.step(model.layers)
        return value

    assert np.isfinite(benchmark(step))
