"""Figure 4: qualitative localization examples.

The paper visualises two scenarios on a 16x16 mesh running synthetic traffic:
a single attacker (node 104 -> victim 0) localized with accuracy/precision/
recall = 1/1/1, and a dual-attacker scenario (nodes 192 & 15 -> victim 85)
localized with accuracy 0.96, precision 1, recall 0.96.

The default benchmark scale maps those node ids onto the configured mesh size
(identical ids when REPRO_MESH_ROWS=16); the assertions check the shape —
near-perfect localization of the single-attacker route and high-precision
localization of the dual-attacker route.
"""

from bench_utils import run_once, write_result

from repro.experiments.localization_examples import run_localization_examples
from repro.experiments.tables import format_rows


def test_fig4_localization_examples(benchmark, experiment_config):
    config = experiment_config.scaled(scenarios_per_benchmark=2)
    examples = run_once(benchmark, run_localization_examples, config=config)

    rows = []
    for example in examples:
        rows.append(
            {
                "scenario": example.scenario.describe(),
                "accuracy": example.report.accuracy,
                "precision": example.report.precision,
                "recall": example.report.recall,
                "true_victims": len(example.true_victims),
                "found_victims": len(example.predicted_victims),
                "attackers_found": example.predicted_attackers,
            }
        )
    text = format_rows(rows)
    text += (
        "\npaper (16x16): single attacker acc/prec/rec = 1/1/1; "
        "two attackers acc=0.96 prec=1 rec=0.96"
    )
    write_result("fig4_localization_examples", text)

    single, double = examples
    assert single.scenario.num_attackers == 1
    assert double.scenario.num_attackers == 2
    # Shape: both examples localize the route with high per-node accuracy.
    assert single.report.accuracy > 0.85
    assert double.report.accuracy > 0.8
    # The single-attacker route is essentially fully recovered.
    assert single.report.recall > 0.5
    assert len(single.predicted_victims) > 0
