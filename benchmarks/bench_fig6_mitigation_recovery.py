"""Figure 6 (beyond the paper): closed-loop mitigation and recovery.

The paper stops at localization; this bench measures the fence it enables.
Expected shape: the guard detects within a couple of sampling windows, the
countermeasure engages shortly after, and benign latency under mitigation
lands far below the unmitigated attack latency — close to the no-attack
baseline — at every swept FIR and policy.

The second test runs the multi-attack sweep at the paper's 16x16 scale over
a PARSEC workload: two concurrent FIR-0.5 floods on disjoint victims, with
per-attacker detection latency and time-to-full-containment recorded across
the guard's iterative localization rounds.
"""

from repro.defense.policy import MitigationPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.mitigation import ASYMMETRIC_FLOW_FIRS, run_mitigation_sweep
from repro.experiments.tables import format_rows

from bench_utils import run_once, write_result

FIRS = (0.4, 0.8)

#: The paper-scale operating point of the multi-attack sweep.  1000-cycle
#: windows are reachable by raising REPRO_SAMPLE_PERIOD; the default keeps
#: the full 16x16 sweep inside CI-tolerable time.
PAPER_MESH_CONFIG = ExperimentConfig(
    rows=16,
    sample_period=256,
    samples_per_run=6,
    detector_epochs=40,
    localizer_epochs=50,
    seed=7,
)
MULTI_ATTACK_FIR = 0.5
MULTI_ATTACK_POLICIES = (
    MitigationPolicy.throttle(0.1, engage_after=2, release_after=6, flush_queue=True),
    MitigationPolicy.quarantine(engage_after=2, release_after=6, flush_queue=True),
)


def test_fig6_mitigation_recovery(benchmark, experiment_config):
    points = run_once(
        benchmark,
        run_mitigation_sweep,
        firs=FIRS,
        rows_values=(experiment_config.rows,),
        config=experiment_config,
    )

    rows = [point.as_dict() for point in points]
    text = format_rows(rows)
    worst = max(points, key=lambda p: p.recovery_ratio)
    detections = [p.detection_latency for p in points if p.detection_latency is not None]
    mitigations = [
        p.time_to_mitigation for p in points if p.time_to_mitigation is not None
    ]
    summary = (
        f"\nmesh: {experiment_config.rows}x{experiment_config.rows}, "
        f"benign workload: uniform_random, single attacker\n"
        f"worst recovery ratio {worst.recovery_ratio:.2f}x "
        f"(fir={worst.fir}, policy={worst.policy}); "
        f"detection within {max(detections, default='n/a')} cycles, "
        f"mitigation within {max(mitigations, default='n/a')} cycles"
    )
    write_result("fig6_mitigation_recovery", text + summary)

    for point in points:
        # The attack must be caught and acted upon at every operating point.
        assert point.detected
        assert point.detection_latency is not None
        assert point.time_to_mitigation is not None
        assert point.time_to_mitigation >= point.detection_latency
        # Mitigation must beat doing nothing and land near the baseline.
        assert point.mitigated_latency < point.unmitigated_latency
        assert point.recovery_ratio < 1.4
        if point.policy == "quarantine":
            assert point.recovery_ratio < 1.25


def test_fig6_asymmetric_multi_attack(benchmark, experiment_config):
    """Loud + quiet concurrent floods: per-flow FIRs 0.8 / 0.2.

    The asymmetric threat model the scenario objects always supported, now
    swept end to end: the loud flow dominates the congestion signature, so
    the guard must still fence it promptly, and a fence on the loud flow must
    translate into recovery even while the quiet flow keeps trickling.
    """
    points = run_once(
        benchmark,
        run_mitigation_sweep,
        firs=(0.8,),
        rows_values=(experiment_config.rows,),
        policies=MULTI_ATTACK_POLICIES,
        config=experiment_config,
        num_flows=2,
        flow_fir_profile=ASYMMETRIC_FLOW_FIRS,
    )

    rows = [point.as_dict() for point in points]
    per_attacker = "\n".join(
        f"{point.policy}: per-attacker detection latency "
        f"{point.per_attacker_detection_latency}, "
        f"fenced {point.attackers_fenced}/{point.num_attackers}, "
        f"recovery {point.recovery_ratio:.2f}x"
        for point in points
    )
    summary = (
        f"\nmesh: {experiment_config.rows}x{experiment_config.rows}, "
        f"benign workload: uniform_random, 2 concurrent attackers with "
        f"asymmetric FIRs {ASYMMETRIC_FLOW_FIRS[0]}/{ASYMMETRIC_FLOW_FIRS[1]}\n"
        + per_attacker
    )
    write_result("fig6_asymmetric_multi_attack", format_rows(rows) + summary)

    for point in points:
        assert point.flow_firs == ASYMMETRIC_FLOW_FIRS
        assert point.num_attackers == 2
        # The loud flow must be caught and fenced...
        assert point.detected
        assert point.attackers_fenced >= 1
        assert point.time_to_mitigation is not None
        # ...and fencing it must beat doing nothing.
        assert point.mitigated_latency < point.unmitigated_latency


def test_fig6_multi_attack_16x16_parsec(benchmark):
    """Two concurrent floods at the paper's 16x16 scale over PARSEC traffic."""
    points = run_once(
        benchmark,
        run_mitigation_sweep,
        firs=(MULTI_ATTACK_FIR,),
        rows_values=(16,),
        policies=MULTI_ATTACK_POLICIES,
        config=PAPER_MESH_CONFIG,
        benchmark="x264",
        num_flows=2,
        training_benchmarks=("uniform_random", "x264"),
    )

    rows = [point.as_dict() for point in points]
    per_attacker = "\n".join(
        f"{point.policy}: per-attacker detection latency "
        f"{point.per_attacker_detection_latency}, "
        f"time-to-full-containment {point.time_to_full_containment} cycles, "
        f"{point.localization_rounds} round(s), "
        f"{point.reengagements} re-engagement(s)"
        for point in points
    )
    summary = (
        "\nmesh: 16x16, benign workload: x264 (PARSEC), "
        f"2 concurrent attackers on disjoint victims @ FIR {MULTI_ATTACK_FIR}\n"
        + per_attacker
    )
    write_result("fig6_multi_attack_16x16", format_rows(rows) + summary)

    for point in points:
        assert point.num_attackers == 2
        # Both attackers must end up fenced, across iterative rounds if
        # needed, with every per-attacker latency on the record.
        assert point.attackers_fenced == 2
        assert point.time_to_full_containment is not None
        latencies = point.per_attacker_detection_latency
        assert len(latencies) == 2
        assert all(value is not None for value in latencies.values())
        assert point.time_to_full_containment >= max(latencies.values())
        # Containment must translate into recovery near the baseline.
        assert point.mitigated_latency < point.unmitigated_latency
        assert point.recovery_ratio < 1.25
