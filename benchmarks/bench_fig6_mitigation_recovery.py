"""Figure 6 (beyond the paper): closed-loop mitigation and recovery.

The paper stops at localization; this bench measures the fence it enables.
Expected shape: the guard detects within a couple of sampling windows, the
countermeasure engages shortly after, and benign latency under mitigation
lands far below the unmitigated attack latency — close to the no-attack
baseline — at every swept FIR and policy.
"""

from bench_utils import run_once, write_result

from repro.experiments.mitigation import run_mitigation_sweep
from repro.experiments.tables import format_rows

FIRS = (0.4, 0.8)


def test_fig6_mitigation_recovery(benchmark, experiment_config):
    points = run_once(
        benchmark,
        run_mitigation_sweep,
        firs=FIRS,
        rows_values=(experiment_config.rows,),
        config=experiment_config,
    )

    rows = [point.as_dict() for point in points]
    text = format_rows(rows)
    worst = max(points, key=lambda p: p.recovery_ratio)
    detections = [p.detection_latency for p in points if p.detection_latency is not None]
    mitigations = [
        p.time_to_mitigation for p in points if p.time_to_mitigation is not None
    ]
    summary = (
        f"\nmesh: {experiment_config.rows}x{experiment_config.rows}, "
        f"benign workload: uniform_random, single attacker\n"
        f"worst recovery ratio {worst.recovery_ratio:.2f}x "
        f"(fir={worst.fir}, policy={worst.policy}); "
        f"detection within {max(detections, default='n/a')} cycles, "
        f"mitigation within {max(mitigations, default='n/a')} cycles"
    )
    write_result("fig6_mitigation_recovery", text + summary)

    for point in points:
        # The attack must be caught and acted upon at every operating point.
        assert point.detected
        assert point.detection_latency is not None
        assert point.time_to_mitigation is not None
        assert point.time_to_mitigation >= point.detection_latency
        # Mitigation must beat doing nothing and land near the baseline.
        assert point.mitigated_latency < point.unmitigated_latency
        assert point.recovery_ratio < 1.4
        if point.policy == "quarantine":
            assert point.recovery_ratio < 1.25
