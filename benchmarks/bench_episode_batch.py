"""Episode-batched SoA simulation: dispatch-amortization win, recorded.

PR 4's BENCH trajectory showed the remaining 16x16 cost is numpy per-call
dispatch (~85 kernel ops per cycle); the batched backend amortizes that
fixed cost by advancing N independent meshes per kernel call
(:class:`repro.noc.soa_batch.BatchedSoAMeshNetwork`).  This benchmark
measures a 16-episode 16x16 batch against 16 sequential solo SoA runs on
three scenarios:

``attack_sweep``
    Flooding attackers only (FIR 0.8) — the attack-characterization runs
    of the Figure 1 sweep.  Tiny per-cycle candidate sets, so fixed
    dispatch dominates and the amortization win shows purest.
``dataset_benign`` / ``dataset_flood``
    The training-set generator's operating points (benign injection rate
    0.02, flood FIR 0.8 on top): per-episode RNG draws and per-element
    kernel work are shared by both sides, bounding the ratio lower.

Every scenario asserts per-episode delivered-packet equality between the
sequential and batched runs — the wall-clock numbers are only comparable
because the two paths simulate identical traffic.  Results land in
``benchmarks/results/episode_batch.{txt,json}``.
"""

import os
import time

from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.batch_sim import BatchedNoCSimulator
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

from bench_utils import run_once, write_json_result, write_result

ROWS = 16
EPISODES = int(os.environ.get("REPRO_EPISODE_BATCH", "") or 16)
CYCLES = 512
SAMPLE_PERIOD = 64
BASE_SEED = 1234
REPEATS = 3

#: (name, benign injection rate, flood FIR) — rate/fir of 0 disables the source.
SCENARIOS = (
    ("attack_sweep", 0.0, 0.8),
    ("dataset_benign", 0.02, 0.0),
    ("dataset_flood", 0.02, 0.8),
)


def _wire(sim, benign_rate: float, fir: float, seed: int) -> None:
    topology = sim.topology
    if benign_rate > 0.0:
        sim.add_source(
            UniformRandomTraffic(topology, injection_rate=benign_rate, seed=seed + 1)
        )
    if fir > 0.0:
        last = ROWS * ROWS - 1
        sim.add_source(
            FloodingAttacker(
                FloodingConfig(attackers=(last, 3), victim=1, fir=fir),
                topology,
                seed=seed + 2,
            )
        )
    GlobalPerformanceMonitor(MonitorConfig(sample_period=SAMPLE_PERIOD)).attach(sim)


def _sequential(benign_rate: float, fir: float) -> tuple[float, list[int]]:
    delivered = []
    start = time.perf_counter()
    for ep in range(EPISODES):
        sim = NoCSimulator(
            SimulationConfig(rows=ROWS, warmup_cycles=16, backend="soa")
        )
        _wire(sim, benign_rate, fir, BASE_SEED + ep)
        sim.run(CYCLES)
        delivered.append(sim.network.stats.packets_delivered)
    return time.perf_counter() - start, delivered


def _batched(benign_rate: float, fir: float) -> tuple[float, list[int]]:
    start = time.perf_counter()
    batch = BatchedNoCSimulator(
        SimulationConfig(rows=ROWS, warmup_cycles=16, backend="soa"),
        episodes=EPISODES,
    )
    for ep in range(EPISODES):
        _wire(batch.lane(ep), benign_rate, fir, BASE_SEED + ep)
    batch.run(CYCLES)
    delivered = [
        batch.lane(ep).stats.packets_delivered for ep in range(EPISODES)
    ]
    return time.perf_counter() - start, delivered


def _measure() -> dict:
    scenarios = {}
    for name, benign_rate, fir in SCENARIOS:
        seq_best = bat_best = None
        for _ in range(REPEATS):
            t_seq, d_seq = _sequential(benign_rate, fir)
            t_bat, d_bat = _batched(benign_rate, fir)
            assert d_seq == d_bat, (
                f"{name}: batched per-episode delivered diverged from solo"
            )
            seq_best = t_seq if seq_best is None else min(seq_best, t_seq)
            bat_best = t_bat if bat_best is None else min(bat_best, t_bat)
        scenarios[name] = {
            "benign_rate": benign_rate,
            "fir": fir,
            "sequential_seconds": seq_best,
            "batched_seconds": bat_best,
            "speedup": seq_best / bat_best,
        }
    return scenarios


def test_episode_batch(benchmark):
    scenarios = run_once(benchmark, _measure)

    lines = [
        f"{EPISODES}-episode {ROWS}x{ROWS} batch vs {EPISODES} sequential "
        f"solo SoA runs ({CYCLES} cycles, best of {REPEATS})"
    ]
    for name, row in scenarios.items():
        lines.append(
            f"{name:16s} rate={row['benign_rate']:<5g} fir={row['fir']:<4g} "
            f"sequential {row['sequential_seconds']:6.3f}s  "
            f"batched {row['batched_seconds']:6.3f}s  "
            f"speedup {row['speedup']:5.2f}x"
        )
    write_result("episode_batch", "\n".join(lines))
    write_json_result(
        "episode_batch",
        {
            "rows": ROWS,
            "episodes": EPISODES,
            "cycles": CYCLES,
            "repeats": REPEATS,
            "scenarios": scenarios,
        },
    )

    # The per-episode results are identical (asserted per repeat); batching
    # only amortizes dispatch, so the batch must never be slower than the
    # sequential runs, and the dispatch-dominated attack sweep must show a
    # substantial amortization win.
    for name, row in scenarios.items():
        assert row["speedup"] > 1.0, f"{name}: batching slower than sequential"
    assert scenarios["attack_sweep"]["speedup"] > 2.0
