"""Shared helpers for the reproduction benchmarks (imported by bench modules)."""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a rendered result table and echo it to stdout.

    Benchmarks write their measured tables here so the numbers survive
    pytest's output capture; EXPERIMENTS.md summarises them next to the
    paper's published values.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def write_json_result(name: str, payload: dict) -> Path:
    """Persist a machine-readable result next to its ``.txt`` rendering.

    Perf-tracking tooling (``run_perf_suite.py``, future BENCH trajectory
    jobs) consumes these instead of parsing the human-oriented tables.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(bench_fixture, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The first argument is pytest-benchmark's ``benchmark`` fixture; keeping
    its parameter name distinct lets callers forward a ``benchmark=...``
    keyword (a workload name) to ``func`` without a collision.
    """
    return bench_fixture.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)
