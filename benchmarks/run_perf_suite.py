"""End-to-end wall-clock harness for the figure/table experiment suite.

Runs the expensive experiment drivers (Tables 1-4, the Figure-1 latency
sweep and the Figure-6 mitigation sweep) under four engine modes and records
the timings in ``benchmarks/results/perf_summary.json`` (+ a rendered
``.txt``) so the suite's performance trajectory is machine-readable:

* ``baseline``       — the pre-engine behaviour: no cache, serial, float64 NN;
* ``cold_serial``    — float32 fast path + fresh cache, one worker;
* ``cold_parallel``  — float32 fast path + fresh cache, ``--workers`` workers;
* ``warm``           — same cache as ``cold_parallel``, everything memoised.

Within a *cold* run the cache already pays for itself: Tables 1-3 share their
simulated scenario runs (the monitor captures VCO and BOC in one pass), so
the suite simulates them once instead of three times.  A *warm* run is pure
artifact I/O — no simulation, no training.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_suite.py [--workers N] [--skip-baseline]

The experiment scale honours the usual ``REPRO_*`` environment variables
(defaults: 8x8 mesh, 200-cycle windows).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import RESULTS_DIR

from repro.defense.policy import MitigationPolicy
from repro.experiments.comparison import run_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.detection import run_feature_experiment
from repro.experiments.latency_sweep import run_latency_sweep
from repro.experiments.mitigation import run_mitigation_sweep
from repro.experiments.tables import format_rows
from repro.monitor.features import FeatureKind
from repro.nn.dtype import use_dtype
from repro.noc.backend import resolve_backend
from repro.obs.metrics import METRICS
from repro.runtime.cache import ArtifactCache
from repro.runtime.engine import ExperimentEngine
from repro.runtime.parallel import ParallelRunner

FIG1_FIRS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
FIG6_FIRS = (0.4, 0.8)


def suite(config: ExperimentConfig, engine: ExperimentEngine) -> dict[str, float]:
    """Run every suite experiment once; returns per-experiment seconds."""
    experiments = {
        "table1_vco": lambda: run_feature_experiment(
            FeatureKind.VCO, FeatureKind.VCO, config=config, engine=engine
        ),
        "table2_boc": lambda: run_feature_experiment(
            FeatureKind.BOC, FeatureKind.BOC, config=config, engine=engine
        ),
        "table3_vco_boc": lambda: run_feature_experiment(
            FeatureKind.VCO, FeatureKind.BOC, config=config, engine=engine
        ),
        "table4_comparison": lambda: run_comparison(config=config, engine=engine),
        "fig1_latency_sweep": lambda: run_latency_sweep(
            firs=FIG1_FIRS,
            benchmark="blackscholes",
            config=config.scaled(samples_per_run=4),
            num_attackers=2,
            engine=engine,
        ),
        "fig6_mitigation_sweep": lambda: run_mitigation_sweep(
            firs=FIG6_FIRS,
            rows_values=(config.rows,),
            config=config,
            engine=engine,
        ),
    }
    timings: dict[str, float] = {}
    for name, run in experiments.items():
        start = time.perf_counter()
        run()
        timings[name] = time.perf_counter() - start
        print(f"    {name:<22} {timings[name]:7.2f} s", flush=True)
    return timings


def run_modes(config: ExperimentConfig, workers: int, skip_baseline: bool) -> dict:
    modes: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as cache_root:
        plans: list[tuple[str, ExperimentEngine, str]] = []
        if not skip_baseline:
            plans.append(("baseline", ExperimentEngine.disabled(), "float64"))
        shared_root = Path(cache_root) / "parallel"
        plans.extend(
            [
                (
                    "cold_serial",
                    ExperimentEngine(
                        ArtifactCache(root=Path(cache_root) / "serial", enabled=True),
                        ParallelRunner(workers=1),
                    ),
                    "float32",
                ),
                (
                    "cold_parallel",
                    ExperimentEngine(
                        ArtifactCache(root=shared_root, enabled=True),
                        ParallelRunner(workers=workers),
                    ),
                    "float32",
                ),
                # Same cache *root* as cold_parallel but a fresh ArtifactCache
                # object, so the recorded cache_stats cover only this mode.
                (
                    "warm",
                    ExperimentEngine(
                        ArtifactCache(root=shared_root, enabled=True),
                        ParallelRunner(workers=workers),
                    ),
                    "float32",
                ),
            ]
        )
        for mode, engine, dtype in plans:
            print(f"== {mode} (dtype={dtype}, workers={engine.runner.workers}) ==")
            # Per-mode metrics window: kernel-phase, runner, cache and NN
            # instruments collect for this mode only, then fold into its
            # summary entry so perf_summary.json carries phase attribution.
            METRICS.reset()
            METRICS.enable()
            try:
                with use_dtype(dtype):
                    timings = suite(config, engine)
            finally:
                METRICS.disable()
            modes[mode] = {
                "dtype": dtype,
                "workers": engine.runner.workers,
                "cache_enabled": engine.cache.enabled,
                "experiments": timings,
                "total_seconds": sum(timings.values()),
                "cache_stats": engine.cache.stats.as_dict(),
                "metrics": METRICS.snapshot(),
            }
            METRICS.reset()
    return modes


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--skip-baseline",
        action="store_true",
        help="skip the slow pre-engine reference run",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig.from_environment()
    modes = run_modes(config, args.workers, args.skip_baseline)

    summary = {
        "config": {
            "rows": config.rows,
            "sample_period": config.sample_period,
            "samples_per_run": config.samples_per_run,
            "scenarios_per_benchmark": config.scenarios_per_benchmark,
            "detector_epochs": config.detector_epochs,
            "localizer_epochs": config.localizer_epochs,
            "seed": config.seed,
            "sim_backend": resolve_backend(),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "modes": modes,
    }
    if "baseline" in modes:
        baseline_total = modes["baseline"]["total_seconds"]
        summary["speedup_vs_baseline"] = {
            mode: baseline_total / data["total_seconds"]
            for mode, data in modes.items()
            if mode != "baseline"
        }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    json_path = RESULTS_DIR / "perf_summary.json"
    json_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    rows = [
        {
            "mode": mode,
            "dtype": data["dtype"],
            "workers": data["workers"],
            **{name: data["experiments"][name] for name in data["experiments"]},
            "total_s": data["total_seconds"],
            "speedup": summary.get("speedup_vs_baseline", {}).get(mode),
        }
        for mode, data in modes.items()
    ]
    text = (
        f"Figure/table suite wall-clock, {config.rows}x{config.rows} mesh, "
        f"sample_period={config.sample_period}\n" + format_rows(rows)
    )
    (RESULTS_DIR / "perf_summary.txt").write_text(text + "\n")
    print(f"\n{text}\nwritten: {json_path}")
    return summary


if __name__ == "__main__":
    main()
