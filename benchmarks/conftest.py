"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at a reduced
default scale (8x8 mesh instead of 16x16, shorter sampling windows) so the
whole suite completes in minutes.  Set ``REPRO_MESH_ROWS=16`` and
``REPRO_SAMPLE_PERIOD=1000`` to run at the paper's scale.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Benchmark-scale experiment configuration (env-var overridable)."""
    return ExperimentConfig.from_environment()
