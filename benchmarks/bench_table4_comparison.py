"""Table 4: comparison to related works.

Two views are produced: the published numbers the paper quotes for the
comparator schemes, and a measured comparison in which the reimplemented
baselines (perceptron / SVM / gradient boosting / threshold) and the DL2Fence
detector are trained on identical frame datasets from this reproduction's
simulator.

Paper shape: DL2Fence's detection precision (0.985) beats the comparators, its
accuracy is comparable (~0.96), and its hardware overhead at scale is far
below the distributed schemes (0.45% at 16x16 vs 3.3% / 9% per router).
"""

from bench_utils import run_once, write_result

from repro.experiments.comparison import run_comparison
from repro.experiments.tables import format_rows


def test_table4_comparison_to_related_works(benchmark, experiment_config):
    summary = run_once(benchmark, run_comparison, config=experiment_config)

    published_text = "Published numbers quoted by the paper (Table 4):\n" + format_rows(
        summary["published"]
    )
    measured_rows = [row.as_dict() for row in summary["measured"]]
    measured_text = (
        f"\n\nMeasured on this reproduction "
        f"({summary['rows']}x{summary['rows']} mesh, {summary['feature'].value.upper()} frames):\n"
        + format_rows(measured_rows)
    )
    write_result("table4_comparison", published_text + measured_text)

    by_name = {row.name: row for row in summary["measured"]}
    ours = by_name["dl2fence (this reproduction)"]
    # Shape: the CNN detector is competitive with every baseline...
    best_baseline_f1 = max(
        row.report.f1 for name, row in by_name.items() if name != ours.name
    )
    assert ours.report.f1 >= best_baseline_f1 - 0.15
    assert ours.report.accuracy > 0.8
    # ...and its (global) overhead is far below the distributed schemes.
    assert ours.overhead_percent is not None
    assert ours.overhead_percent < 3.3
