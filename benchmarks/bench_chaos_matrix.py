"""Chaos matrix: the defense under monitor faults, recorded.

The fault axis of the robustness matrix.  Every refined-DoS variant is
replayed at 8x8 and 16x16 with a fault scenario installed; the acceptance
gates are the ``dropout_silent`` scenario — >= 10% of monitor windows
dropped *plus* one completely silent monitor node — and the ``link_faults``
scenario — a mesh link killed mid-attack, forcing the data plane onto
west-first detour routes — both against the fault-free ``none`` comparator.

Three properties are gated per cell:

* the attack still ends **contained** (all true attackers simultaneously
  fenced, zero collateral);
* **no fault-only node is ever engaged or convicted** — a silent or stuck
  monitor is a hardware problem, and fencing its node would convert a
  telemetry fault into a self-inflicted denial of service;
* detection latency degrades by at most one sampling window relative to
  the fault-free run of the same attack.

Results land in ``benchmarks/results/chaos_matrix.{txt,json}``; the nightly
``chaos-matrix`` job regenerates and uploads them.
"""

import os
import time

from repro.experiments.robustness import (
    DEFAULT_ROBUSTNESS_POLICY,
    run_chaos_matrix,
)
from repro.experiments.tables import format_rows

from bench_utils import run_once, write_json_result, write_result


def _fault_scenarios() -> tuple[str, ...]:
    """Fault scenarios from ``REPRO_FAULTS`` (comma-separated names).

    Defaults to the fault-free comparator plus the acceptance-gate
    ``dropout_silent`` scenario; the nightly job widens this to the full
    suite (``REPRO_FAULTS=all``).
    """
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if not raw:
        return ("none", "dropout_silent", "link_faults")
    if raw.lower() == "all":
        return (
            "none",
            "dropout",
            "silent",
            "dropout_silent",
            "stuck",
            "corrupt",
            "delay",
            "link_faults",
        )
    scenarios = tuple(part.strip() for part in raw.split(",") if part.strip())
    return scenarios if "none" in scenarios else ("none",) + scenarios


def _rows_values() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_ROBUSTNESS_ROWS", "").strip()
    if not raw:
        return (8, 16)
    return tuple(int(part) for part in raw.split(","))


FAULT_SCENARIOS = _fault_scenarios()
ROWS_VALUES = _rows_values()

RESULT_NAME = (
    "chaos_matrix"
    if ROWS_VALUES == (8, 16)
    else "chaos_matrix_" + "_".join(f"{rows}x{rows}" for rows in ROWS_VALUES)
)


def test_chaos_matrix(benchmark):
    start = time.perf_counter()
    points = run_once(
        benchmark,
        run_chaos_matrix,
        rows_values=ROWS_VALUES,
        fault_scenarios=FAULT_SCENARIOS,
    )
    wall_clock = time.perf_counter() - start

    rows = [point.as_dict() for point in points]
    scenarios = "\n".join(
        f"{point.rows}x{point.rows} {point.attack} + {point.scenario}: "
        f"{point.description}"
        for point in points
        if point.scenario != "none"
    )
    summary = (
        f"\npolicy: {DEFAULT_ROBUSTNESS_POLICY.name} + evidence fusion + "
        "degraded-mode guard (DegradedModeConfig defaults)\n"
        f"fault scenarios: {', '.join(FAULT_SCENARIOS)}\n" + scenarios +
        f"\n(REPRO_SIM_BACKEND={os.environ.get('REPRO_SIM_BACKEND', 'soa')}) "
        f"end-to-end wall-clock: {wall_clock:8.1f} s"
    )
    write_result(RESULT_NAME, format_rows(rows) + summary)
    write_json_result(
        RESULT_NAME,
        {
            "rows_values": list(ROWS_VALUES),
            "fault_scenarios": list(FAULT_SCENARIOS),
            "policy": DEFAULT_ROBUSTNESS_POLICY.name,
            "wall_clock_seconds": wall_clock,
            "points": rows,
        },
    )

    fault_free = {
        (point.attack, point.rows): point
        for point in points
        if point.scenario == "none"
    }
    for point in points:
        where = f"{point.attack} + {point.scenario} at {point.rows}x{point.rows}"
        # Containment must survive every fault scenario.
        assert point.detected, f"{where}: undetected"
        assert point.contained, (
            f"{where}: uncontained — fenced {point.attackers_fenced}/"
            f"{point.num_attackers}, collateral {point.collateral_nodes}"
        )
        assert point.attackers_fenced == point.num_attackers
        # A faulty node is never a fence target.
        assert point.fault_node_engagements == 0, (
            f"{where}: engaged a fault-only node"
        )
        assert point.fault_node_convictions == 0, (
            f"{where}: convicted a fault-only node"
        )
        # Faults may cost at most one sampling window of detection latency.
        reference = fault_free[(point.attack, point.rows)]
        assert point.detection_latency is not None
        assert reference.detection_latency is not None
        assert (
            point.detection_latency
            <= reference.detection_latency + point.sample_period
        ), (
            f"{where}: detection latency {point.detection_latency} vs "
            f"fault-free {reference.detection_latency} "
            f"(period {point.sample_period})"
        )
