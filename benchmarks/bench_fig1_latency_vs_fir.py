"""Figure 1 (right): benign-traffic latency versus Flooding Injection Rate.

Paper shape: latency rises slowly at low FIR, grows steeply as the NoC
approaches saturation, and the system effectively crashes (delivery collapses,
latency explodes) at FIR = 1.  The increment from FIR 0.1 to 0.9 spans roughly
one to tens of times the no-attack latency.
"""

from bench_utils import run_once, write_result

from repro.experiments.latency_sweep import run_latency_sweep
from repro.experiments.tables import format_rows

FIRS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_fig1_latency_vs_fir(benchmark, experiment_config):
    config = experiment_config.scaled(samples_per_run=4)
    points = run_once(
        benchmark,
        run_latency_sweep,
        firs=FIRS,
        benchmark="blackscholes",
        config=config,
        num_attackers=2,
    )

    rows = [point.as_dict() for point in points]
    text = format_rows(rows)
    baseline = points[0].packet_latency
    attacked = {point.fir: point.packet_latency for point in points}
    summary = (
        f"\nmesh: {config.rows}x{config.rows}, benign workload: blackscholes, "
        f"2 attackers\n"
        f"packet latency at FIR 0.0 = {baseline:.1f} cycles, "
        f"FIR 0.9 = {attacked[0.9]:.1f} cycles "
        f"({attacked[0.9] / max(baseline, 1e-9):.1f}x), "
        f"delivery ratio at FIR 1.0 = {points[-1].delivery_ratio:.2f}"
    )
    write_result("fig1_latency_vs_fir", text + summary)

    # Shape assertions: latency grows with FIR; saturation hurts the system.
    assert attacked[0.9] > baseline
    high_fir_stress = (
        attacked[0.9] > 2.0 * baseline or points[-1].delivery_ratio < 0.95
    )
    assert high_fir_stress
