"""Property-based sweep of the Table-Like Method.

For every attacker x victim placement the abnormal-frame pattern is derived
*geometrically* from XY routing (no simulation, no CNN): a direction's
victim set is exactly the set of routers whose input port of that direction
carries the attack flow.  On this perfect evidence the TLM must recover a
candidate superset that

* contains the true attacker,
* never names the target victim, and
* never names a route turning point (any Routing-Path Victim).

The sweep is exhaustive over all placements on 4x4 through 8x8 meshes —
a parametrized brute-force enumeration, no hypothesis dependency needed.
Multi-attacker scenarios are exercised through the paper's iterative
sampling rounds: quarantining every recovered attacker must surface the
remaining ones within a bounded number of rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tlm import TableLikeMethod, estimate_attacker_count
from repro.monitor.labeling import attack_port_loads
from repro.noc.routing import xy_route_victims
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario, MultiAttackScenario


def geometric_direction_victims(
    topology: MeshTopology, flows: list[AttackScenario]
) -> dict[Direction, set[int]]:
    """Per-direction victim node sets implied by the flows' XY routes."""
    victims: dict[Direction, set[int]] = {d: set() for d in Direction.cardinal()}
    for flow in flows:
        loads = attack_port_loads(topology, flow)
        for direction in Direction.cardinal():
            ys, xs = np.nonzero(loads[direction])
            victims[direction].update(
                topology.node_id(int(x), int(y)) for y, x in zip(ys, xs)
            )
    return victims


def fused_ground_truth(topology: MeshTopology, flows: list[AttackScenario]) -> set[int]:
    union: set[int] = set()
    for flow in flows:
        union.update(flow.ground_truth_victims(topology))
    return union


@pytest.mark.parametrize("rows", [4, 5, 6, 7, 8])
def test_single_attacker_superset_exhaustive(rows):
    """Every (attacker, victim) placement: superset holds, no false roles."""
    topology = MeshTopology(rows=rows)
    tlm = TableLikeMethod(topology)
    for attacker in topology.nodes():
        for victim in topology.nodes():
            if attacker == victim:
                continue
            flow = AttackScenario(attackers=(attacker,), victim=victim)
            direction_victims = geometric_direction_victims(topology, [flow])
            fused = fused_ground_truth(topology, [flow])
            recovered = tlm.localize_attackers(direction_victims, fused_victims=fused)
            route = set(xy_route_victims(topology, attacker, victim))
            context = f"{rows}x{rows}: attacker {attacker} -> victim {victim}"
            assert attacker in recovered, f"attacker missed ({context})"
            assert victim not in recovered, f"victim accused ({context})"
            assert not route.intersection(recovered), (
                f"route turning point accused ({context})"
            )
            assert estimate_attacker_count(topology, direction_victims) >= 1


@pytest.mark.parametrize("rows", [4, 6, 8])
def test_multi_attacker_iterative_rounds(rows):
    """Quarantine-and-resample recovers every attacker of disjoint floods.

    A single round may legitimately surface only a subset (one attacker can
    shadow another's evidence), but the paper's iterative procedure —
    quarantine what was localized, re-derive the frames from the remaining
    flows — must terminate with every attacker found, and must never accuse
    a victim or a route node of the still-active flows.
    """
    topology = MeshTopology(rows=rows)
    tlm = TableLikeMethod(topology)
    from repro.traffic.scenario import ScenarioGenerator

    generator = ScenarioGenerator(topology, seed=rows)
    for _ in range(25):
        scenario = generator.random_multi_scenario(
            num_flows=2, min_victim_separation=2
        )
        remaining = list(scenario.flows)
        recovered_total: set[int] = set()
        for _round in range(len(remaining) + 2):
            if not remaining:
                break
            direction_victims = geometric_direction_victims(topology, remaining)
            fused = fused_ground_truth(topology, remaining)
            recovered = set(
                tlm.localize_attackers(direction_victims, fused_victims=fused)
            )
            victims = {flow.victim for flow in remaining}
            assert not victims.intersection(recovered), scenario.describe()
            newly_found = {
                a for flow in remaining for a in flow.attackers if a in recovered
            }
            assert newly_found, (
                f"round recovered no active attacker: {scenario.describe()}"
            )
            recovered_total.update(newly_found)
            remaining = [
                flow
                for flow in remaining
                if not set(flow.attackers).issubset(recovered_total)
            ]
        assert not remaining, (
            f"iterative rounds failed to surface every attacker: "
            f"{scenario.describe()} (found {sorted(recovered_total)})"
        )
        assert set(scenario.attackers).issubset(recovered_total)
