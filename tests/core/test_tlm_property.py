"""Property-based sweep of the Table-Like Method.

For every attacker x victim placement the abnormal-frame pattern is derived
*geometrically* from XY routing (no simulation, no CNN): a direction's
victim set is exactly the set of routers whose input port of that direction
carries the attack flow.  On this perfect evidence the TLM must recover a
candidate superset that

* contains the true attacker,
* never names the target victim, and
* never names a route turning point (any Routing-Path Victim).

The sweep is exhaustive over all placements on 4x4 through 8x8 meshes —
a parametrized brute-force enumeration, no hypothesis dependency needed.
Multi-attacker scenarios are exercised through the paper's iterative
sampling rounds: quarantining every recovered attacker must surface the
remaining ones within a bounded number of rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tlm import TableLikeMethod, estimate_attacker_count
from repro.monitor.labeling import attack_port_loads
from repro.noc.route_provider import RouteProvider
from repro.noc.routing import UnroutableError, xy_route_path, xy_route_victims
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario, MultiAttackScenario


def geometric_direction_victims(
    topology: MeshTopology, flows: list[AttackScenario]
) -> dict[Direction, set[int]]:
    """Per-direction victim node sets implied by the flows' XY routes."""
    victims: dict[Direction, set[int]] = {d: set() for d in Direction.cardinal()}
    for flow in flows:
        loads = attack_port_loads(topology, flow)
        for direction in Direction.cardinal():
            ys, xs = np.nonzero(loads[direction])
            victims[direction].update(
                topology.node_id(int(x), int(y)) for y, x in zip(ys, xs)
            )
    return victims


def fused_ground_truth(topology: MeshTopology, flows: list[AttackScenario]) -> set[int]:
    union: set[int] = set()
    for flow in flows:
        union.update(flow.ground_truth_victims(topology))
    return union


@pytest.mark.parametrize("rows", [4, 5, 6, 7, 8])
def test_single_attacker_superset_exhaustive(rows):
    """Every (attacker, victim) placement: superset holds, no false roles."""
    topology = MeshTopology(rows=rows)
    tlm = TableLikeMethod(topology)
    for attacker in topology.nodes():
        for victim in topology.nodes():
            if attacker == victim:
                continue
            flow = AttackScenario(attackers=(attacker,), victim=victim)
            direction_victims = geometric_direction_victims(topology, [flow])
            fused = fused_ground_truth(topology, [flow])
            recovered = tlm.localize_attackers(direction_victims, fused_victims=fused)
            route = set(xy_route_victims(topology, attacker, victim))
            context = f"{rows}x{rows}: attacker {attacker} -> victim {victim}"
            assert attacker in recovered, f"attacker missed ({context})"
            assert victim not in recovered, f"victim accused ({context})"
            assert not route.intersection(recovered), (
                f"route turning point accused ({context})"
            )
            assert estimate_attacker_count(topology, direction_victims) >= 1


@pytest.mark.parametrize("rows", [4, 6, 8])
def test_multi_attacker_iterative_rounds(rows):
    """Quarantine-and-resample recovers every attacker of disjoint floods.

    A single round may legitimately surface only a subset (one attacker can
    shadow another's evidence), but the paper's iterative procedure —
    quarantine what was localized, re-derive the frames from the remaining
    flows — must terminate with every attacker found, and must never accuse
    a victim or a route node of the still-active flows.
    """
    topology = MeshTopology(rows=rows)
    tlm = TableLikeMethod(topology)
    from repro.traffic.scenario import ScenarioGenerator

    generator = ScenarioGenerator(topology, seed=rows)
    for _ in range(25):
        scenario = generator.random_multi_scenario(
            num_flows=2, min_victim_separation=2
        )
        remaining = list(scenario.flows)
        recovered_total: set[int] = set()
        for _round in range(len(remaining) + 2):
            if not remaining:
                break
            direction_victims = geometric_direction_victims(topology, remaining)
            fused = fused_ground_truth(topology, remaining)
            recovered = set(
                tlm.localize_attackers(direction_victims, fused_victims=fused)
            )
            victims = {flow.victim for flow in remaining}
            assert not victims.intersection(recovered), scenario.describe()
            newly_found = {
                a for flow in remaining for a in flow.attackers if a in recovered
            }
            assert newly_found, (
                f"round recovered no active attacker: {scenario.describe()}"
            )
            recovered_total.update(newly_found)
            remaining = [
                flow
                for flow in remaining
                if not set(flow.attackers).issubset(recovered_total)
            ]
        assert not remaining, (
            f"iterative rounds failed to surface every attacker: "
            f"{scenario.describe()} (found {sorted(recovered_total)})"
        )
        assert set(scenario.attackers).issubset(recovered_total)


# -- faulty-link axis ---------------------------------------------------------
#
# When the data plane detours around dead links/routers the attack flow no
# longer follows XY, so the geometric evidence must be derived from the live
# route provider — and the TLM, walking the same provider, must keep its
# properties on the *detoured* route.


def _hop_direction(topology, a, b):
    ax, ay = topology.coordinates(a)
    bx, by = topology.coordinates(b)
    if bx == ax + 1:
        return Direction.EAST
    if bx == ax - 1:
        return Direction.WEST
    if by == ay + 1:
        return Direction.NORTH
    return Direction.SOUTH


def _provider_direction_victims(topology, provider, path):
    """Per-direction victim sets implied by one flow's *live* route.

    A flit travelling in direction ``d`` into node ``b`` occupies ``b``'s
    input port on the opposite side — the side the abnormal frame names.
    """
    victims: dict[Direction, set[int]] = {d: set() for d in Direction.cardinal()}
    for a, b in zip(path, path[1:]):
        travel = _hop_direction(topology, a, b)
        victims[travel.opposite].add(b)
    return victims


def _fault_axes(rows):
    topology = MeshTopology(rows=rows)
    node = topology.node_id(2, min(2, rows - 2))
    yield topology, RouteProvider(topology, dead_links=((node, Direction.NORTH),))
    if rows == 5:
        yield topology, RouteProvider(topology, dead_routers=(12,))


@pytest.mark.parametrize("rows", [4, 5, 6])
def test_single_attacker_superset_under_faults(rows):
    """The TLM keeps its role guarantees on every detoured placement.

    Exhaustive over all routable (attacker, victim) pairs under the
    canonical dead link (and a dead router on the 5x5): the attacker is
    always recovered, the victim never accused, every accusation stays
    within one hop of the live route, and placements whose detour happens
    to coincide with XY accuse no route node at all (the fault-free
    guarantee degrades only where the geometry actually changed).
    """
    for topology, provider in _fault_axes(rows):
        tlm = TableLikeMethod(topology, route_provider=provider)
        for attacker in topology.nodes():
            for victim in topology.nodes():
                if attacker == victim:
                    continue
                try:
                    path = provider.route_path(attacker, victim)
                except UnroutableError:
                    continue  # west-first strands the pair; no flow exists
                direction_victims = _provider_direction_victims(
                    topology, provider, path
                )
                fused = set(path) - {attacker}
                recovered = set(
                    tlm.localize_attackers(direction_victims, fused_victims=fused)
                )
                context = (
                    f"{rows}x{rows} {provider.describe()}: "
                    f"attacker {attacker} -> victim {victim}"
                )
                assert attacker in recovered, f"attacker missed ({context})"
                assert victim not in recovered, f"victim accused ({context})"
                near_route = set(path)
                for node in path:
                    for direction in Direction.cardinal():
                        neighbor = topology.neighbor(node, direction)
                        if neighbor is not None:
                            near_route.add(neighbor)
                assert recovered <= near_route, (
                    f"accusation beyond one hop of the live route ({context})"
                )
                if path == xy_route_path(topology, attacker, victim):
                    assert not fused.intersection(recovered), (
                        f"route node accused on an XY-identical pair ({context})"
                    )


def test_dead_link_prunes_impossible_candidates():
    """A candidate whose egress link is dead cannot be the sender.

    The EAST abnormal frame names a node whose east input port carries the
    flow; the one-hop candidate east of it only qualifies if its WEST
    egress link is alive.  Killing that link must remove the candidate —
    while the true attacker (whose egress the flow demonstrably crossed)
    is never filtered.
    """
    topology = MeshTopology(rows=4)
    victim = topology.node_id(1, 1)
    candidate = topology.node_id(2, 1)
    direction_victims = {d: set() for d in Direction.cardinal()}
    direction_victims[Direction.EAST] = {victim}

    live = TableLikeMethod(topology, route_provider=RouteProvider(topology))
    assert candidate in live.localize_attackers(
        direction_victims, fused_victims={victim}
    )

    dead = RouteProvider(
        topology, dead_links=((candidate, Direction.WEST),)
    )
    pruned = TableLikeMethod(topology, route_provider=dead)
    assert candidate not in pruned.localize_attackers(
        direction_victims, fused_victims={victim}
    )
