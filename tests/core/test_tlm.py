"""Unit and property-based tests for the Table-Like Method."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tlm import TableLikeMethod, estimate_attacker_count
from repro.monitor.labeling import attack_port_loads
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario

TOPO = MeshTopology(rows=6)
TLM = TableLikeMethod(TOPO)


def direction_victims_for(scenario: AttackScenario, topology=TOPO):
    """Exact per-direction victim node sets from the scenario geometry."""
    loads = attack_port_loads(topology, scenario)
    out = {}
    for direction, grid in loads.items():
        nodes = set()
        rows, cols = grid.shape
        for y in range(rows):
            for x in range(cols):
                if grid[y, x] > 0:
                    nodes.add(topology.node_id(x, y))
        out[direction] = nodes
    return out


class TestSingleAttackerCases:
    def test_east_attacker_same_row(self):
        # Figure 3, one abnormal frame (E): attacker = Max(E) + 1.
        scenario = AttackScenario(attackers=(5,), victim=0)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert attackers == [5]

    def test_west_attacker_same_row(self):
        scenario = AttackScenario(attackers=(0,), victim=5)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert attackers == [0]

    def test_north_attacker_same_column(self):
        scenario = AttackScenario(attackers=(30,), victim=0)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert attackers == [30]

    def test_south_attacker_same_column(self):
        scenario = AttackScenario(attackers=(0,), victim=30)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert attackers == [0]

    def test_dogleg_attacker_two_abnormal_frames(self):
        # Figure 3, two abnormal frames (E & N): single attacker at Max(E)+1;
        # the N candidate is the route turning point and must be discarded.
        scenario = AttackScenario(attackers=(28,), victim=7)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert attackers == [28]

    @given(attacker=st.integers(0, 35), victim=st.integers(0, 35))
    @settings(max_examples=80, deadline=None)
    def test_any_single_attacker_is_recovered(self, attacker, victim):
        if attacker == victim:
            return
        scenario = AttackScenario(attackers=(attacker,), victim=victim)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert attacker in attackers
        # No false attacker is ever reported inside the victim route.
        assert not set(attackers) & scenario.ground_truth_victims(TOPO)


class TestMultiAttackerCases:
    def test_east_and_west_attackers(self):
        # Figure 3: 'E & W' combination -> two attackers Max(E)+1 and Min(W)-1.
        scenario = AttackScenario(attackers=(5, 0), victim=3)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert set(attackers) == {5, 0}

    def test_north_and_south_attackers(self):
        scenario = AttackScenario(attackers=(30, 0), victim=12)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert set(attackers) == {30, 0}

    def test_east_and_north_attackers(self):
        # One attacker east in the victim's row, one directly north.
        scenario = AttackScenario(attackers=(5, 31), victim=1)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert set(attackers) == {5, 31}

    def test_parallel_rows_two_attackers(self):
        # Two attackers flooding the same victim from different rows.
        scenario = AttackScenario(attackers=(11, 23), victim=6)
        attackers = TLM.localize_attackers(direction_victims_for(scenario))
        assert 11 in attackers or 23 in attackers


class TestAttackerCountEstimate:
    def test_zero_when_no_abnormal_frames(self):
        assert estimate_attacker_count(TOPO, {}) == 0
        assert estimate_attacker_count(TOPO, {Direction.EAST: set()}) == 0

    def test_single_attacker(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        assert estimate_attacker_count(TOPO, direction_victims_for(scenario)) == 1

    def test_opposite_frames_imply_two(self):
        scenario = AttackScenario(attackers=(5, 0), victim=3)
        assert estimate_attacker_count(TOPO, direction_victims_for(scenario)) >= 2

    def test_multi_row_east_leg_implies_two(self):
        scenario = AttackScenario(attackers=(11, 23), victim=6)
        assert estimate_attacker_count(TOPO, direction_victims_for(scenario)) >= 2


class TestEvidence:
    def test_results_carry_direction_and_evidence(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        results = TLM.localize(direction_victims_for(scenario))
        assert len(results) == 1
        assert results[0].direction is Direction.EAST
        assert results[0].attacker == 5
        assert set(results[0].evidence) == {0, 1, 2, 3, 4}

    def test_duplicate_candidates_reported_once(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        victims = direction_victims_for(scenario)
        # Duplicate the same evidence under a second direction artificially.
        results = TLM.localize(victims)
        assert len({r.attacker for r in results}) == len(results)
