"""Integration tests for the end-to-end DL2Fence pipeline."""

import numpy as np
import pytest

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.monitor.labeling import victim_mask
from repro.noc.topology import MeshTopology


class TestConstruction:
    def test_requires_square_mesh(self):
        with pytest.raises(ValueError):
            DL2Fence(MeshTopology(rows=4, columns=6))

    def test_default_models_match_mesh(self, small_topology):
        fence = DL2Fence(small_topology)
        assert fence.detector.input_shape == (6, 5, 4)
        assert fence.localizer.input_shape == (6, 5, 1)

    def test_repr_mentions_features(self, small_topology):
        text = repr(DL2Fence(small_topology))
        assert "vco" in text and "boc" in text


class TestTraining:
    def test_fit_from_runs_returns_summaries(self, small_builder, small_runs):
        fence = DL2Fence(small_builder.topology, DL2FenceConfig(seed=5))
        summaries = fence.fit_from_runs(
            small_builder, small_runs, detector_epochs=10, localizer_epochs=10
        )
        assert summaries["detector"].epochs == 10
        assert summaries["localizer"].epochs == 10


class TestProcessing:
    def test_benign_sample_usually_not_localized(self, trained_pipeline, small_runs):
        benign_run = next(run for run in small_runs if not run.is_attack)
        result = trained_pipeline.process_sample(benign_run.samples[-1])
        if not result.detected:
            assert result.victims == []
            assert result.attackers == []

    def test_attack_sample_produces_localization(self, trained_pipeline, small_runs):
        attack_run = next(run for run in small_runs if run.is_attack)
        result = trained_pipeline.process_sample(
            attack_run.samples[-1], force_localization=True
        )
        assert result.fused_mask is not None
        assert result.fused_mask.shape == (6, 6)
        assert len(result.direction_masks) == 4
        assert result.estimated_attacker_count >= 0

    def test_localization_overlaps_ground_truth(self, trained_pipeline, small_runs):
        attack_run = next(run for run in small_runs if run.is_attack)
        truth = set(attack_run.scenario.ground_truth_victims(attack_run.topology))
        found = set()
        for sample in attack_run.samples:
            result = trained_pipeline.process_sample(sample, force_localization=True)
            found.update(result.victims)
        assert len(found & truth) >= len(truth) // 2

    def test_result_counts_match_lists(self, trained_pipeline, small_runs):
        attack_run = next(run for run in small_runs if run.is_attack)
        result = trained_pipeline.process_sample(
            attack_run.samples[-1], force_localization=True
        )
        assert result.num_victims == len(result.victims)
        assert result.num_attackers == len(result.attackers)


class TestEvaluation:
    def test_detection_evaluation(self, trained_pipeline, small_builder, small_runs):
        dataset = small_builder.detection_dataset(small_runs)
        report = trained_pipeline.evaluate_detection(dataset)
        assert report.accuracy > 0.7
        assert report.support == dataset.num_samples

    def test_localization_evaluation(self, trained_pipeline, small_runs):
        attacked = [run for run in small_runs if run.is_attack]
        report = trained_pipeline.evaluate_localization(attacked)
        assert report.accuracy > 0.8
        assert report.support == sum(
            36 * sum(1 for s in run.samples if s.attack_active) for run in attacked
        )

    def test_attacker_evaluation_keys(self, trained_pipeline, small_runs):
        attacked = [run for run in small_runs if run.is_attack]
        metrics = trained_pipeline.evaluate_attacker_localization(attacked)
        assert set(metrics) == {
            "attacker_recall",
            "attacker_precision",
            "exact_match_rate",
            "samples",
        }
        assert 0.0 <= metrics["attacker_recall"] <= 1.0
        assert metrics["samples"] > 0

    def test_localization_requires_attacked_runs(self, trained_pipeline, small_runs):
        benign = [run for run in small_runs if not run.is_attack]
        with pytest.raises(ValueError):
            trained_pipeline.evaluate_localization(benign)
        with pytest.raises(ValueError):
            trained_pipeline.evaluate_attacker_localization(benign)


class TestVCEIntegration:
    def test_vce_never_reduces_recall(self, small_builder, small_runs):
        """Enabling VCE can only add route nodes, so recall cannot drop."""
        config_off = DL2FenceConfig(seed=9, enable_vce=False)
        config_on = DL2FenceConfig(seed=9, enable_vce=True)
        fence_off = DL2Fence(small_builder.topology, config_off)
        fence_off.fit_from_runs(
            small_builder, small_runs, detector_epochs=15, localizer_epochs=30
        )
        fence_on = DL2Fence(small_builder.topology, config_on)
        fence_on.fit_from_runs(
            small_builder, small_runs, detector_epochs=15, localizer_epochs=30
        )
        attacked = [run for run in small_runs if run.is_attack]
        recall_off = fence_off.evaluate_localization(attacked).recall
        recall_on = fence_on.evaluate_localization(attacked).recall
        assert recall_on >= recall_off - 0.05
