"""Unit tests for the CNN DoS detector."""

import numpy as np
import pytest

from repro.core.config import DL2FenceConfig
from repro.core.detector import DoSDetector, build_detector_model, effective_pool_size
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.activations import ReLU, Sigmoid


class TestModelArchitecture:
    def test_paper_layer_sequence(self):
        model = build_detector_model((8, 7, 4))
        layer_types = [type(layer) for layer in model.layers]
        assert layer_types == [Conv2D, ReLU, MaxPool2D, Flatten, Dense, Sigmoid]

    def test_eight_kernels_by_default(self):
        model = build_detector_model((8, 7, 4))
        assert model.layers[0].filters == 8

    def test_single_probability_output(self):
        model = build_detector_model((8, 7, 4))
        out = model.forward(np.zeros((3, 8, 7, 4)))
        assert out.shape == (3, 1)
        assert np.all((out > 0) & (out < 1))

    def test_small_mesh_shrinks_pool(self):
        assert effective_pool_size((4, 3, 4), kernel_size=3, pool_size=2) == 1
        model = build_detector_model((4, 3, 4))
        assert model.output_shape == (1,)

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            effective_pool_size((2, 2, 4), kernel_size=3, pool_size=2)

    def test_invalid_input_shape(self):
        with pytest.raises(ValueError):
            build_detector_model((8, 7))


class TestDetectorTraining:
    def test_learns_to_separate(self, small_builder, small_detection_dataset):
        detector = DoSDetector(
            small_detection_dataset.inputs.shape[1:], config=DL2FenceConfig(seed=1)
        )
        summary = detector.fit(small_detection_dataset, epochs=40)
        assert detector.trained
        assert summary.final_accuracy > 0.7
        report = detector.evaluate(small_detection_dataset)
        assert report.accuracy > 0.7

    def test_predictions_shapes(self, small_detection_dataset):
        detector = DoSDetector(small_detection_dataset.inputs.shape[1:])
        proba = detector.predict_proba(small_detection_dataset.inputs)
        assert proba.shape == (small_detection_dataset.num_samples,)
        single = detector.predict_proba(small_detection_dataset.inputs[0])
        assert single.shape == (1,)
        hard = detector.predict(small_detection_dataset.inputs)
        assert set(np.unique(hard)) <= {0, 1}

    def test_detect_on_frame_set(self, trained_pipeline, small_runs):
        attack_run = next(run for run in small_runs if run.is_attack)
        benign_run = next(run for run in small_runs if not run.is_attack)
        detected_attack, p_attack = trained_pipeline.detector.detect(
            attack_run.samples[-1].vco
        )
        _, p_benign = trained_pipeline.detector.detect(benign_run.samples[-1].vco)
        assert 0.0 <= p_attack <= 1.0
        assert p_attack > p_benign

    def test_num_parameters_positive(self, small_detection_dataset):
        detector = DoSDetector(small_detection_dataset.inputs.shape[1:])
        assert detector.num_parameters > 0


class TestDetectorPersistence:
    def test_save_and_load_round_trip(self, tmp_path, small_detection_dataset):
        detector = DoSDetector(
            small_detection_dataset.inputs.shape[1:], config=DL2FenceConfig(seed=2)
        )
        detector.fit(small_detection_dataset, epochs=10)
        path = detector.save(tmp_path / "detector.npz")
        restored = DoSDetector.load(path)
        assert restored.trained
        assert np.allclose(
            restored.predict_proba(small_detection_dataset.inputs),
            detector.predict_proba(small_detection_dataset.inputs),
        )
