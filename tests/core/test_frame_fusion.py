"""Unit and property-based tests for binarization and Multi-Frame Fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame_fusion import (
    binarize_frame,
    fuse_direction_masks,
    multi_frame_fusion,
    victims_from_mask,
)
from repro.monitor.features import frame_shape
from repro.monitor.frames import to_canonical
from repro.monitor.labeling import attack_direction_masks, victim_mask
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario

TOPO = MeshTopology(rows=6)


class TestBinarization:
    def test_thresholding(self):
        frame = np.array([[0.2, 0.6], [0.5, 0.49]])
        assert np.allclose(binarize_frame(frame, 0.5), [[0, 1], [1, 0]])

    def test_output_is_binary(self):
        rng = np.random.default_rng(0)
        out = binarize_frame(rng.random((5, 5)), 0.3)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            binarize_frame(np.zeros((2, 2)), 0.0)

    @given(threshold=st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_threshold(self, threshold):
        rng = np.random.default_rng(1)
        frame = rng.random((4, 4))
        low = binarize_frame(frame, threshold)
        high = binarize_frame(frame, min(0.99, threshold + 0.04))
        # Raising the threshold can only turn pixels off.
        assert np.all(high <= low)


class TestMultiFrameFusion:
    def test_union_mode(self):
        a = np.array([[1.0, 0.0], [0.0, 0.0]])
        b = np.array([[1.0, 1.0], [0.0, 0.0]])
        fused = multi_frame_fusion([a, b], mode="union")
        assert np.allclose(fused, [[1, 1], [0, 0]])

    def test_exact_mode_drops_double_counted(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        fused = multi_frame_fusion([a, b], mode="exact")
        assert np.allclose(fused, [[0, 1]])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            multi_frame_fusion([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_frame_fusion([np.zeros((2, 2)), np.zeros((3, 3))])

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            multi_frame_fusion([np.zeros((2, 2))], mode="votes")


class TestVictimsFromMask:
    def test_node_id_mapping(self):
        mask = np.zeros((6, 6))
        mask[0, 3] = 1.0  # node 3
        mask[2, 1] = 1.0  # node 13
        assert victims_from_mask(mask, TOPO) == [3, 13]

    def test_empty_mask(self):
        assert victims_from_mask(np.zeros((6, 6)), TOPO) == []

    def test_shape_check(self):
        with pytest.raises(ValueError):
            victims_from_mask(np.zeros((5, 6)), TOPO)


class TestFuseDirectionMasks:
    @given(
        attacker=st.integers(0, 35),
        victim=st.integers(0, 35),
        threshold=st.floats(0.1, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_perfect_masks_recover_ground_truth(self, attacker, victim, threshold):
        """Fusing the exact ground-truth direction masks yields the victim mask.

        This is the core invariant of Algorithm 1, and it holds for any
        binarization threshold because the masks are already binary.
        """
        if attacker == victim:
            return
        scenario = AttackScenario(attackers=(attacker,), victim=victim)
        truth_masks = attack_direction_masks(TOPO, scenario)
        canonical = {
            d: to_canonical(m, d) for d, m in truth_masks.items() if m.any()
        }
        fused = fuse_direction_masks(canonical, TOPO, threshold=threshold)
        assert np.allclose(fused, victim_mask(TOPO, scenario))

    def test_accepts_channel_dimension(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        truth_masks = attack_direction_masks(TOPO, scenario)
        canonical = {
            Direction.EAST: to_canonical(truth_masks[Direction.EAST], Direction.EAST)[
                ..., None
            ]
        }
        fused = fuse_direction_masks(canonical, TOPO)
        assert np.allclose(fused, victim_mask(TOPO, scenario))

    def test_natural_orientation_masks(self):
        scenario = AttackScenario(attackers=(28,), victim=7)
        truth_masks = attack_direction_masks(TOPO, scenario)
        fused = fuse_direction_masks(
            {d: m for d, m in truth_masks.items() if m.any()},
            TOPO,
            canonical=False,
        )
        assert np.allclose(fused, victim_mask(TOPO, scenario))

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            fuse_direction_masks({}, TOPO)

    def test_two_attacker_union(self):
        scenario = AttackScenario(attackers=(5, 30), victim=0)
        truth_masks = attack_direction_masks(TOPO, scenario)
        canonical = {d: to_canonical(m, d) for d, m in truth_masks.items() if m.any()}
        fused = fuse_direction_masks(canonical, TOPO, mode="union")
        assert np.allclose(fused, victim_mask(TOPO, scenario))
