"""Unit tests for the DL2Fence configuration object."""

import pytest

from repro.core.config import DL2FenceConfig
from repro.monitor.features import FeatureKind


class TestDefaults:
    def test_paper_default_feature_split(self):
        config = DL2FenceConfig.paper_default()
        assert config.detection_feature is FeatureKind.VCO
        assert config.localization_feature is FeatureKind.BOC
        assert config.detection_normalization == "none"
        assert config.localization_normalization == "max"

    def test_paper_model_capacity(self):
        config = DL2FenceConfig()
        assert config.detector_filters == 8
        assert config.localizer_filters == 8
        assert config.localizer_conv_layers == 2

    def test_vce_disabled_by_default(self):
        assert not DL2FenceConfig().enable_vce


class TestValidation:
    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DL2FenceConfig(detection_threshold=0.0)
        with pytest.raises(ValueError):
            DL2FenceConfig(segmentation_threshold=1.0)
        with pytest.raises(ValueError):
            DL2FenceConfig(binarization_threshold=-0.2)

    def test_invalid_fusion_mode(self):
        with pytest.raises(ValueError):
            DL2FenceConfig(fusion_mode="intersection")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DL2FenceConfig(detector_filters=0)
        with pytest.raises(ValueError):
            DL2FenceConfig(localizer_conv_layers=0)
        with pytest.raises(ValueError):
            DL2FenceConfig(abnormal_frame_threshold=0)


class TestWithFeatures:
    def test_vco_vco(self):
        config = DL2FenceConfig().with_features(FeatureKind.VCO, FeatureKind.VCO)
        assert config.localization_feature is FeatureKind.VCO
        assert config.localization_normalization == "none"

    def test_boc_boc(self):
        config = DL2FenceConfig().with_features(FeatureKind.BOC, FeatureKind.BOC)
        assert config.detection_normalization == "max"
        assert config.localization_normalization == "max"

    def test_original_unchanged(self):
        original = DL2FenceConfig()
        original.with_features(FeatureKind.BOC, FeatureKind.BOC)
        assert original.detection_feature is FeatureKind.VCO
