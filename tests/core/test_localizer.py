"""Unit tests for the CNN DoS profile localizer."""

import numpy as np
import pytest

from repro.core.config import DL2FenceConfig
from repro.core.localizer import DoSProfileLocalizer, build_localizer_model
from repro.nn.layers import Conv2D
from repro.noc.topology import Direction


class TestModelArchitecture:
    def test_output_keeps_frame_geometry(self):
        model = build_localizer_model((8, 7, 1))
        out = model.forward(np.zeros((2, 8, 7, 1)))
        assert out.shape == (2, 8, 7, 1)

    def test_paper_depth_two_conv_layers(self):
        model = build_localizer_model((8, 7, 1), conv_layers=2)
        conv_layers = [l for l in model.layers if isinstance(l, Conv2D)]
        # Two hidden conv layers plus the 1-channel output convolution.
        assert len(conv_layers) == 3
        assert conv_layers[0].filters == 8
        assert conv_layers[-1].filters == 1

    def test_configurable_depth_changes_parameters(self):
        shallow = build_localizer_model((8, 7, 1), conv_layers=1)
        deep = build_localizer_model((8, 7, 1), conv_layers=3)
        assert deep.num_parameters > shallow.num_parameters

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            build_localizer_model((8, 7, 1), conv_layers=0)

    def test_invalid_input_shape(self):
        with pytest.raises(ValueError):
            build_localizer_model((8, 7))


class TestLocalizerTraining:
    def test_learns_route_masks(self, small_localization_dataset):
        localizer = DoSProfileLocalizer(
            small_localization_dataset.inputs.shape[1:], config=DL2FenceConfig(seed=1)
        )
        summary = localizer.fit(small_localization_dataset, epochs=60)
        assert localizer.trained
        assert summary.final_dice > 0.6
        report = localizer.evaluate(small_localization_dataset)
        assert report.accuracy > 0.8
        assert "dice" in report.extras

    def test_predict_masks_shape_and_range(self, small_localization_dataset):
        localizer = DoSProfileLocalizer(small_localization_dataset.inputs.shape[1:])
        masks = localizer.predict_masks(small_localization_dataset.inputs[:3])
        assert masks.shape == (3,) + small_localization_dataset.inputs.shape[1:]
        assert np.all((masks > 0) & (masks < 1))

    def test_segment_frame_handles_natural_orientation(self, trained_pipeline, small_runs):
        attack_run = next(run for run in small_runs if run.is_attack)
        sample = attack_run.samples[-1]
        for direction in Direction.cardinal():
            frame = sample.boc[direction].normalized("max").values
            mask = trained_pipeline.localizer.segment_frame(frame, direction)
            # Output is in canonical orientation: (rows, rows-1).
            assert mask.shape == (6, 5)

    def test_dice_helper(self, small_localization_dataset, trained_pipeline):
        dice = trained_pipeline.localizer.dice(small_localization_dataset)
        assert 0.0 <= dice <= 1.0

    def test_batched_segmentation_matches_per_direction(
        self, trained_pipeline, small_runs
    ):
        """The online fast path must produce the exact per-direction masks."""
        attack_run = next(run for run in small_runs if run.is_attack)
        sample = attack_run.samples[-1]
        frames = {
            direction: sample.boc[direction].normalized("max").values
            for direction in Direction.cardinal()
        }
        batched = trained_pipeline.localizer.segment_frames(frames)
        for direction in Direction.cardinal():
            single = trained_pipeline.localizer.segment_frame(
                frames[direction], direction
            )
            assert np.allclose(batched[direction], single)

    def test_batched_segmentation_empty_input(self, trained_pipeline):
        assert trained_pipeline.localizer.segment_frames({}) == {}


class TestLocalizerPersistence:
    def test_save_and_load_round_trip(self, tmp_path, small_localization_dataset):
        localizer = DoSProfileLocalizer(
            small_localization_dataset.inputs.shape[1:], config=DL2FenceConfig(seed=2)
        )
        localizer.fit(small_localization_dataset, epochs=10)
        path = localizer.save(tmp_path / "localizer.npz")
        restored = DoSProfileLocalizer.load(path)
        assert np.allclose(
            restored.predict_masks(small_localization_dataset.inputs[:2]),
            localizer.predict_masks(small_localization_dataset.inputs[:2]),
        )
