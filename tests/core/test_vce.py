"""Unit tests for the Victim Completing Enhancement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vce import estimate_flow_endpoints, victim_completing_enhancement
from repro.monitor.labeling import attack_port_loads
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario

TOPO = MeshTopology(rows=6)


def direction_victims_for(scenario: AttackScenario):
    loads = attack_port_loads(TOPO, scenario)
    out = {}
    for direction, grid in loads.items():
        nodes = set()
        for y in range(grid.shape[0]):
            for x in range(grid.shape[1]):
                if grid[y, x] > 0:
                    nodes.add(TOPO.node_id(x, y))
        out[direction] = nodes
    return out


class TestEndpointEstimation:
    def test_pure_east_flow(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        pairs = estimate_flow_endpoints(TOPO, direction_victims_for(scenario))
        assert pairs == [(4, 0)]

    def test_dogleg_flow(self):
        scenario = AttackScenario(attackers=(28,), victim=7)
        pairs = estimate_flow_endpoints(TOPO, direction_victims_for(scenario))
        # Pseudo source: route node adjacent to the attacker (27);
        # target: end of the Y leg (victim 7).
        assert pairs == [(27, 7)]

    def test_pure_north_flow(self):
        scenario = AttackScenario(attackers=(30,), victim=0)
        pairs = estimate_flow_endpoints(TOPO, direction_victims_for(scenario))
        assert pairs == [(24, 0)]

    def test_empty_input(self):
        assert estimate_flow_endpoints(TOPO, {}) == []


class TestCompletion:
    def test_completes_missing_route_nodes(self):
        """VCE fills gaps in an incomplete fused victim set."""
        scenario = AttackScenario(attackers=(28,), victim=7)
        truth = scenario.ground_truth_victims(TOPO)
        direction_victims = direction_victims_for(scenario)
        # Simulate a segmentation miss: drop one interior route node.
        incomplete = set(truth) - {19}
        completed = victim_completing_enhancement(TOPO, incomplete, direction_victims)
        assert truth <= completed

    def test_no_op_when_already_complete(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        truth = scenario.ground_truth_victims(TOPO)
        completed = victim_completing_enhancement(
            TOPO, set(truth), direction_victims_for(scenario)
        )
        assert truth <= completed

    @given(attacker=st.integers(0, 35), victim=st.integers(0, 35))
    @settings(max_examples=50, deadline=None)
    def test_single_attacker_route_always_recovered(self, attacker, victim):
        """With exact per-direction evidence, VCE recovers the full route."""
        if attacker == victim:
            return
        scenario = AttackScenario(attackers=(attacker,), victim=victim)
        truth = scenario.ground_truth_victims(TOPO)
        completed = victim_completing_enhancement(
            TOPO, set(), direction_victims_for(scenario)
        )
        assert truth <= completed
        # VCE never invents nodes outside the mesh.
        assert all(node in TOPO for node in completed)
