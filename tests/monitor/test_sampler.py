"""Unit tests for the global performance monitor."""

import numpy as np
import pytest

from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic


def make_simulator(with_attack=False, rows=6, warmup=16, seed=0):
    sim = NoCSimulator(SimulationConfig(rows=rows, warmup_cycles=warmup, seed=seed))
    sim.add_source(UniformRandomTraffic(sim.topology, injection_rate=0.03, seed=seed))
    if with_attack:
        attacker = FloodingAttacker(
            FloodingConfig(attackers=(rows * rows - 1,), victim=0, fir=0.9),
            sim.topology,
            seed=seed + 1,
        )
        sim.add_source(attacker)
    return sim


class TestMonitorConfig:
    def test_invalid_period(self):
        with pytest.raises(ValueError):
            MonitorConfig(sample_period=0)


class TestStreaming:
    def test_listeners_receive_each_sample_live(self):
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        received = []
        monitor.add_listener(
            lambda sample, simulator: received.append((sample.cycle, simulator))
        )
        sim.run(16 + 50 * 3 + 1)
        assert [cycle for cycle, _ in received] == [s.cycle for s in monitor.samples]
        assert all(simulator is sim for _, simulator in received)

    def test_listener_sees_sample_after_it_is_recorded(self):
        """A listener can correlate the new sample with the monitor history."""
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        counts = []
        monitor.add_listener(lambda sample, _: counts.append(monitor.num_samples))
        sim.run(16 + 50 * 2 + 1)
        assert counts == [1, 2]


class TestListenerIsolation:
    def test_poison_listener_does_not_abort_capture(self):
        """A raising listener is isolated with a warning; sampling continues."""
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        received = []

        def poison(sample, simulator):
            raise RuntimeError("boom")

        monitor.add_listener(poison)
        monitor.add_listener(lambda sample, _: received.append(sample.cycle))
        with pytest.warns(RuntimeWarning, match="boom"):
            sim.run(16 + 50 * 3 + 1)
        # Every window was still captured and delivered to the healthy listener.
        assert monitor.num_samples == 3
        assert received == [s.cycle for s in monitor.samples]

    def test_critical_listener_still_fails_fast(self):
        """The guard's listener keeps its fail-fast contract via critical=True."""
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)

        def poison(sample, simulator):
            raise RuntimeError("guard failure must propagate")

        monitor.add_listener(poison, critical=True)
        with pytest.raises(RuntimeError, match="must propagate"):
            sim.run(16 + 50 + 1)


class TestSampling:
    def test_collects_expected_number_of_samples(self):
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        sim.run(16 + 50 * 3 + 1)
        assert monitor.num_samples == 3

    def test_sample_contains_both_features_and_all_directions(self):
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=40)).attach(sim)
        sim.run(100)
        sample = monitor.samples[0]
        for direction in Direction.cardinal():
            assert sample.vco[direction].values.shape == (6, 5) or sample.vco[
                direction
            ].values.shape == (5, 6)
            assert sample.boc[direction].values.shape == sample.vco[direction].values.shape

    def test_boc_reset_between_windows(self):
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=60)).attach(sim)
        sim.run(16 + 60 * 2 + 1)
        first, second = monitor.samples[:2]
        # BOC accumulates per window, so the second window's counts are not a
        # strict superset of the first (they were reset in between).
        total_first = sum(first.boc[d].values.sum() for d in Direction.cardinal())
        total_second = sum(second.boc[d].values.sum() for d in Direction.cardinal())
        assert total_first > 0
        assert total_second < 2.5 * total_first

    def test_no_reset_option_accumulates(self):
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(
            MonitorConfig(sample_period=60, reset_boc_after_sample=False)
        ).attach(sim)
        sim.run(16 + 60 * 2 + 1)
        first, second = monitor.samples[:2]
        total_first = sum(first.boc[d].values.sum() for d in Direction.cardinal())
        total_second = sum(second.boc[d].values.sum() for d in Direction.cardinal())
        assert total_second > total_first

    def test_attack_flag_tracks_attacker(self):
        sim = make_simulator(with_attack=True)
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        sim.run(200)
        assert monitor.num_samples > 0
        assert all(s.attack_active for s in monitor.samples)
        assert monitor.attack_samples() == monitor.samples
        assert monitor.benign_samples() == []

    def test_benign_simulation_flags_no_attack(self):
        sim = make_simulator(with_attack=False)
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        sim.run(200)
        assert all(not s.attack_active for s in monitor.samples)

    def test_clear(self):
        sim = make_simulator()
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=50)).attach(sim)
        sim.run(120)
        monitor.clear()
        assert monitor.num_samples == 0

    def test_attack_frames_show_higher_route_activity(self):
        benign_sim = make_simulator(with_attack=False, seed=3)
        benign_monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=100)).attach(
            benign_sim
        )
        benign_sim.run(250)
        attack_sim = make_simulator(with_attack=True, seed=3)
        attack_monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=100)).attach(
            attack_sim
        )
        attack_sim.run(250)
        benign_boc = max(
            s.boc[d].values.max()
            for s in benign_monitor.samples
            for d in Direction.cardinal()
        )
        attack_boc = max(
            s.boc[d].values.max()
            for s in attack_monitor.samples
            for d in Direction.cardinal()
        )
        assert attack_boc > benign_boc
