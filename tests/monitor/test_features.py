"""Unit tests for VCO/BOC feature extraction."""

import numpy as np
import pytest

from repro.monitor.features import (
    FeatureKind,
    extract_feature_frame,
    frame_shape,
    normalize_frame,
)
from repro.noc.network import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.topology import Direction, MeshTopology

TOPO = MeshTopology(rows=6)


class TestFrameShape:
    def test_east_west_shapes(self):
        assert frame_shape(TOPO, Direction.EAST) == (6, 5)
        assert frame_shape(TOPO, Direction.WEST) == (6, 5)

    def test_north_south_shapes(self):
        assert frame_shape(TOPO, Direction.NORTH) == (5, 6)
        assert frame_shape(TOPO, Direction.SOUTH) == (5, 6)

    def test_local_rejected(self):
        with pytest.raises(ValueError):
            frame_shape(TOPO, Direction.LOCAL)

    def test_paper_shape_16x16(self):
        # The paper: "the feature frame always forms an R x (R-1) matrix".
        topo16 = MeshTopology(rows=16)
        assert frame_shape(topo16, Direction.EAST) == (16, 15)


class TestExtraction:
    def _network_with_flow(self):
        network = MeshNetwork(TOPO)
        # A flow from node 5 (east end of row 0) to node 0 crosses EAST ports.
        packet = Packet(source=5, destination=0, size_flits=4, created_cycle=0)
        network.enqueue_packet(packet)
        for cycle in range(12):
            network.step(cycle)
        return network

    def test_boc_frame_nonzero_on_route(self):
        network = self._network_with_flow()
        frame = extract_feature_frame(network, Direction.EAST, FeatureKind.BOC)
        assert frame.shape == (6, 5)
        # Router 4 receives from router 5 on its EAST port -> column 4, row 0.
        assert frame[0, 4] > 0
        # A router far away from the route saw nothing.
        assert frame[5, 0] == 0

    def test_vco_frame_in_unit_range(self):
        network = self._network_with_flow()
        frame = extract_feature_frame(network, Direction.EAST, FeatureKind.VCO)
        assert np.all(frame >= 0.0)
        assert np.all(frame <= 1.0)

    def test_empty_network_frames_are_zero(self):
        network = MeshNetwork(TOPO)
        for direction in Direction.cardinal():
            for kind in FeatureKind:
                assert extract_feature_frame(network, direction, kind).sum() == 0.0


class TestNormalization:
    def test_max_normalization(self):
        frame = np.array([[2.0, 4.0], [0.0, 8.0]])
        out = normalize_frame(frame, "max")
        assert out.max() == 1.0
        assert np.allclose(out, frame / 8.0)

    def test_minmax_normalization(self):
        frame = np.array([[2.0, 4.0], [6.0, 10.0]])
        out = normalize_frame(frame, "minmax")
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_none_returns_copy(self):
        frame = np.array([[1.0, 2.0]])
        out = normalize_frame(frame, "none")
        assert np.allclose(out, frame)
        out[0, 0] = 99.0
        assert frame[0, 0] == 1.0

    def test_all_zero_frame_unchanged(self):
        frame = np.zeros((3, 3))
        assert normalize_frame(frame, "max").sum() == 0.0
        assert normalize_frame(frame, "minmax").sum() == 0.0

    def test_constant_frame_minmax_is_zero(self):
        frame = np.full((2, 2), 5.0)
        assert normalize_frame(frame, "minmax").sum() == 0.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            normalize_frame(np.zeros((2, 2)), "zscore")
