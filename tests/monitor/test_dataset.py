"""Unit tests for dataset generation."""

import numpy as np
import pytest

from repro.monitor.dataset import DatasetBuilder, DatasetConfig
from repro.monitor.features import FeatureKind
from repro.noc.topology import Direction


class TestDatasetConfig:
    def test_defaults_valid(self):
        config = DatasetConfig()
        assert config.run_cycles > config.warmup_cycles

    def test_invalid(self):
        with pytest.raises(ValueError):
            DatasetConfig(rows=2)
        with pytest.raises(ValueError):
            DatasetConfig(samples_per_run=0)
        with pytest.raises(ValueError):
            DatasetConfig(fir=1.2)


class TestWorkloadFactory:
    def test_synthetic_and_parsec(self, small_builder):
        assert small_builder.make_workload("tornado").name == "tornado"
        assert small_builder.make_workload("x264").name == "x264"

    def test_unknown_benchmark(self, small_builder):
        with pytest.raises(KeyError):
            small_builder.make_workload("not_a_benchmark")


class TestRuns:
    def test_run_benchmark_benign(self, small_builder, small_dataset_config):
        run = small_builder.run_benchmark("uniform_random")
        assert not run.is_attack
        assert run.num_samples == small_dataset_config.samples_per_run
        assert all(not s.attack_active for s in run.samples)

    def test_run_benchmark_attacked(self, small_builder, example_scenario):
        run = small_builder.run_benchmark("uniform_random", scenario=example_scenario)
        assert run.is_attack
        assert all(s.attack_active for s in run.samples)

    def test_build_runs_structure(self, small_runs, small_dataset_config):
        # 2 benchmarks x (1 benign + 2 attacked).
        assert len(small_runs) == 6
        attack_runs = [r for r in small_runs if r.is_attack]
        assert len(attack_runs) == 4
        attacker_counts = sorted(r.scenario.num_attackers for r in attack_runs)
        assert attacker_counts == [1, 1, 2, 2]


class TestDetectionDataset:
    def test_shapes_and_labels(self, small_builder, small_runs, small_dataset_config):
        dataset = small_builder.detection_dataset(small_runs)
        rows = small_dataset_config.rows
        assert dataset.inputs.shape[1:] == (rows, rows - 1, 4)
        assert dataset.labels.shape == (dataset.num_samples, 1)
        assert set(np.unique(dataset.labels)) <= {0.0, 1.0}
        assert 0.0 < dataset.positive_fraction < 1.0

    def test_benchmark_metadata(self, small_builder, small_runs):
        dataset = small_builder.detection_dataset(small_runs)
        assert len(dataset.benchmarks) == dataset.num_samples
        assert set(dataset.benchmarks) == {"uniform_random", "blackscholes"}

    def test_boc_feature_is_normalized(self, small_builder, small_runs):
        dataset = small_builder.detection_dataset(small_runs, feature=FeatureKind.BOC)
        assert dataset.inputs.max() <= 1.0

    def test_subset(self, small_builder, small_runs):
        dataset = small_builder.detection_dataset(small_runs)
        subset = dataset.subset(np.array([0, 1, 2]))
        assert subset.num_samples == 3

    def test_empty_runs_rejected(self, small_builder):
        with pytest.raises(ValueError):
            small_builder.detection_dataset([])


class TestLocalizationDataset:
    def test_shapes(self, small_builder, small_runs, small_dataset_config):
        dataset = small_builder.localization_dataset(small_runs)
        rows = small_dataset_config.rows
        assert dataset.inputs.shape[1:] == (rows, rows - 1, 1)
        assert dataset.masks.shape == dataset.inputs.shape
        assert set(np.unique(dataset.masks)) <= {0.0, 1.0}

    def test_masks_match_directions(self, small_builder, small_runs):
        dataset = small_builder.localization_dataset(small_runs, include_normal_fraction=0.0)
        assert dataset.num_samples > 0
        assert all(isinstance(d, Direction) for d in dataset.directions)
        # With normal frames excluded, every mask has at least one victim pixel.
        assert all(dataset.masks[i].sum() > 0 for i in range(dataset.num_samples))

    def test_normal_fraction_adds_clean_frames(self, small_builder, small_runs):
        without = small_builder.localization_dataset(
            small_runs, include_normal_fraction=0.0
        )
        with_normals = small_builder.localization_dataset(
            small_runs, include_normal_fraction=1.0
        )
        assert with_normals.num_samples > without.num_samples

    def test_inputs_normalized_for_boc(self, small_builder, small_runs):
        dataset = small_builder.localization_dataset(small_runs, feature=FeatureKind.BOC)
        assert dataset.inputs.max() <= 1.0

    def test_benign_only_runs_rejected(self, small_builder):
        benign_run = small_builder.run_benchmark("uniform_random")
        with pytest.raises(ValueError):
            small_builder.localization_dataset([benign_run])

    def test_subset(self, small_builder, small_runs):
        dataset = small_builder.localization_dataset(small_runs)
        subset = dataset.subset(np.arange(min(4, dataset.num_samples)))
        assert subset.num_samples <= 4
